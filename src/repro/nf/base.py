"""Network-function base class and shared helpers.

Every NF in this package follows the same contract so that
:meth:`repro.core.manager.SwiShmemDeployment.install_nf` can deploy it
on every switch:

* ``build_specs(**kwargs)`` (classmethod) — declare the NF's shared
  register groups.  Called once per deployment; the returned specs are
  shared by all per-switch instances.
* ``__init__(manager, handles, **kwargs)`` — one instance per switch;
  ``handles`` maps spec name -> :class:`~repro.core.registers.RegisterHandle`.
* ``process(ctx) -> Decision`` — the packet handler, written against
  the one-big-switch model: it reads/writes shared registers and never
  references the underlying topology.

NFs keep *local* (unshared) state as plain attributes — mirroring
per-switch state a P4 program would keep without SwiShmem (port pools,
window baselines) — and *shared* state exclusively in registers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.core.manager import Decision, PacketContext
from repro.core.registers import RegisterHandle, RegisterSpec
from repro.net.headers import FiveTuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemManager

__all__ = ["NetworkFunction", "NfStats"]


class NfStats:
    """Packet-disposition counters common to all NFs."""

    __slots__ = ("processed", "forwarded", "dropped", "state_hits", "state_misses")

    def __init__(self) -> None:
        self.processed = 0
        self.forwarded = 0
        self.dropped = 0
        self.state_hits = 0
        self.state_misses = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class NetworkFunction:
    """Base class: plumbing shared by the six Table 1 NFs."""

    #: Human-readable name, for reports.
    NAME = "nf"

    def __init__(self, manager: "SwiShmemManager", handles: Dict[str, RegisterHandle], **kwargs: Any) -> None:
        self.manager = manager
        self.handles = handles
        self.stats = NfStats()
        # Attribute this NF's register groups to it in the access
        # profiler (repro.obs.accessprof), so advisory reports can say
        # *whose* state a group is without hand-maintained tables.
        # Idempotent across the per-switch instances install_nf builds.
        profiler = manager.deployment.access_profiler
        if profiler.enabled:
            for handle in handles.values():
                profiler.note_nf(handle.spec.group_id, self.NAME)

    @classmethod
    def build_specs(cls, **kwargs: Any) -> List[RegisterSpec]:
        raise NotImplementedError

    def process(self, ctx: PacketContext) -> Decision:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def flow_of(ctx: PacketContext) -> Optional[FiveTuple]:
        return ctx.packet.five_tuple()

    def forward(self, decision: Decision = None) -> Decision:
        self.stats.forwarded += 1
        return decision if decision is not None else Decision.forward()

    def drop(self) -> Decision:
        self.stats.dropped += 1
        return Decision.drop()
