"""Last-writer-wins register.

Paper section 6.2: "In LWW, each register is associated with a version
number.  The merge function accepts an update from another switch only
for the version numbers larger than the local one."

The version is a :class:`~repro.crdt.clock.Timestamp`, totally ordered
by (time, logical, switch-id) — the switch id being the paper's tie
breaker.  LWW provides eventual consistency but, as the paper notes,
"until it converges there may be inconsistent behavior"; the EWO
experiments measure exactly that window.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.crdt.clock import Timestamp

__all__ = ["LwwRegister"]

_ZERO = Timestamp(float("-inf"), 0, -1)


class LwwRegister:
    """A single last-writer-wins cell: (value, version)."""

    __slots__ = ("_value", "_version")

    def __init__(self, initial: Any = None) -> None:
        self._value = initial
        self._version: Timestamp = _ZERO

    @property
    def value(self) -> Any:
        return self._value

    @property
    def version(self) -> Timestamp:
        return self._version

    def write(self, value: Any, version: Timestamp) -> None:
        """Local write: the caller supplies a fresh clock stamp."""
        if not version > self._version:
            raise ValueError(
                f"local write version {version} does not advance past {self._version}; "
                "the clock must be strictly monotone"
            )
        self._value = value
        self._version = version

    def merge(self, value: Any, version: Timestamp) -> bool:
        """Remote merge: accept newer versions; break value ties on equal
        versions deterministically.

        Returns True when the remote write won.  Equal versions are
        impossible across distinct switches under correct operation
        (node id is part of the order), so idempotent re-delivery of our
        own write is a no-op — but a *corrupted* replica can hold a
        different value under the same stamp (a register bit-flip leaves
        the version intact).  Convergence must still be guaranteed, so
        an equal-version value conflict resolves to the larger
        ``repr``: every replica picks the same winner, and the
        anti-entropy scrubber's forced sync round heals the divergence
        instead of gossiping it forever.
        """
        if version > self._version:
            self._value = value
            self._version = version
            return True
        if version == self._version and value != self._value:
            if repr(value) > repr(self._value):
                self._value = value
                return True
        return False

    def state(self) -> Tuple[Any, Timestamp]:
        return (self._value, self._version)

    def __repr__(self) -> str:
        return f"<LwwRegister {self._value!r} @ {self._version}>"
