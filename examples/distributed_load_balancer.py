#!/usr/bin/env python
"""Distributed L4 load balancer on an NF cluster (paper sections 3-4).

Deploys the SilkRoad-style load balancer across a 3-switch NF
accelerator cluster fronted by an ingress switch (the paper's second
deployment scenario).  Client flows hit a virtual IP; the first packet
of each connection picks a backend (DIP) and installs the mapping
through the SRO chain, so every switch — and any switch that survives a
failure — forwards the rest of the connection to the same backend.

The script opens a batch of connections, kills one NF switch mid-run,
keeps the connections talking, and prints the per-connection
consistency audit plus the replication work the chain performed.

Run:  python examples/distributed_load_balancer.py
"""

import os
import sys
from collections import defaultdict

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.nf.loadbalancer import LoadBalancerNF

from repro.testing import build_nf_world

VIP = "100.0.0.100"
CONNECTIONS = 30


def main() -> None:
    world = build_nf_world(seed=2024, cluster_size=3, clients=4, servers=4)
    world.book.register(VIP, "egress")
    balancers = world.deployment.install_nf(
        LoadBalancerNF, vip=VIP, dips=world.server_ips()
    )
    sim = world.sim

    # open connections: SYNs from rotating clients
    for i in range(CONNECTIONS):
        client = world.clients[i % len(world.clients)]
        sim.schedule(
            i * 250e-6,
            lambda c=client, p=5000 + i: c.inject(
                make_tcp_packet(c.ip, VIP, p, 80, flags=TcpFlags.SYN)
            ),
        )
    sim.run(until=0.02)

    spec = world.deployment.spec_by_name("lb_connections")
    print(f"opened {sum(b.new_connections for b in balancers)} connections")
    print(f"mapping table replicas: "
          f"{[len(s) for s in world.deployment.sro_stores(spec)]} entries each")

    # kill an NF switch mid-service
    victim = world.cluster[1].name
    world.deployment.controller.note_failure_time(victim)
    world.deployment.fail_switch(victim)
    sim.run(until=0.03)
    event = world.deployment.controller.last_failure()
    print(f"\nkilled {victim}: detected in "
          f"{event.detection_latency * 1e6:.0f} us, "
          f"chain repaired to {world.deployment.chains[spec.group_id].members}")

    # keep every connection talking across the failure
    for i in range(CONNECTIONS):
        client = world.clients[i % len(world.clients)]
        for j in range(3):
            sim.schedule_at(
                sim.now + i * 50e-6 + j * 2e-3,
                lambda c=client, p=5000 + i: c.inject(
                    make_tcp_packet(c.ip, VIP, p, 80, payload_size=200)
                ),
            )
    sim.run(until=0.1)

    # audit per-connection consistency at the backends
    assignments = defaultdict(set)
    for server in world.servers:
        for record in server.received:
            tup = record.packet.five_tuple()
            if tup is not None:
                assignments[(tup.src_ip, tup.src_port)].add(server.ip)
    violations = sum(1 for dips in assignments.values() if len(dips) > 1)
    spread = defaultdict(int)
    for dips in assignments.values():
        spread[next(iter(dips))] += 1

    print(f"\nper-connection consistency: "
          f"{violations} violations across {len(assignments)} connections")
    print("backend spread:")
    for dip in sorted(spread):
        print(f"  {dip}: {spread[dip]} connections")
    stats = world.deployment.manager("ingress").sro.stats_for(spec.group_id)
    print(f"\ningress chain stats: {stats.writes_committed} writes committed, "
          f"mean commit latency {stats.mean_write_latency * 1e6:.0f} us, "
          f"{stats.forwarded_reads} reads forwarded to the tail")


if __name__ == "__main__":
    main()
