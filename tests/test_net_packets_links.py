"""Tests for packets, headers, links, and loss/bandwidth accounting."""

from __future__ import annotations

import pytest

from repro.net.headers import FiveTuple, PROTO_TCP, PROTO_UDP, SwiShmemHeader, TcpFlags
from repro.net.link import Link, Node
from repro.net.packet import Packet, make_tcp_packet, make_udp_packet
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng


class Sink(Node):
    """Records everything delivered to it."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.received = []

    def handle_packet(self, packet, from_node):
        self.received.append((packet, from_node))


class TestFiveTuple:
    def test_reverse_swaps_endpoints(self):
        tup = FiveTuple("1.1.1.1", "2.2.2.2", 10, 20, PROTO_TCP)
        rev = tup.reverse()
        assert rev.src_ip == "2.2.2.2" and rev.dst_ip == "1.1.1.1"
        assert rev.src_port == 20 and rev.dst_port == 10
        assert rev.reverse() == tup

    def test_hashable_and_equal(self):
        a = FiveTuple("1.1.1.1", "2.2.2.2", 10, 20)
        b = FiveTuple("1.1.1.1", "2.2.2.2", 10, 20)
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_str_readable(self):
        assert "tcp" in str(FiveTuple("1.1.1.1", "2.2.2.2", 1, 2, PROTO_TCP))
        assert "udp" in str(FiveTuple("1.1.1.1", "2.2.2.2", 1, 2, PROTO_UDP))


class TestPacket:
    def test_tcp_packet_wire_size(self):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload_size=100)
        # Ethernet 14 + IPv4 20 + TCP 20 + payload 100
        assert packet.wire_size == 154

    def test_udp_packet_wire_size(self):
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload_size=100)
        assert packet.wire_size == 14 + 20 + 8 + 100

    def test_five_tuple_extraction(self):
        tcp = make_tcp_packet("1.1.1.1", "2.2.2.2", 5, 6)
        assert tcp.five_tuple() == FiveTuple("1.1.1.1", "2.2.2.2", 5, 6, PROTO_TCP)
        udp = make_udp_packet("1.1.1.1", "2.2.2.2", 5, 6)
        assert udp.five_tuple().protocol == PROTO_UDP
        assert Packet().five_tuple() is None

    def test_clone_is_independent(self):
        original = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        copy = original.clone()
        assert copy.uid != original.uid
        copy.ipv4.dst = "9.9.9.9"
        assert original.ipv4.dst == "2.2.2.2"

    def test_uids_unique(self):
        packets = [Packet() for _ in range(100)]
        assert len({p.uid for p in packets}) == 100

    def test_swishmem_header_adds_size(self):
        bare = Packet()
        tagged = Packet(swishmem=SwiShmemHeader())
        assert tagged.wire_size == bare.wire_size + 12

    def test_str_mentions_flow(self):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert "1.1.1.1" in str(packet)


class TestLink:
    def _pair(self, sim, **kwargs):
        a, b = Sink("a"), Sink("b")
        link = Link(sim, a, b, rng=SeededRng(1), **kwargs)
        return a, b, link

    def test_delivery_after_latency_and_serialization(self):
        sim = Simulator()
        a, b, link = self._pair(sim, latency=1e-3, bandwidth_bps=8e6)
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload_size=958)
        # wire 1000 B -> 8000 bits / 8e6 bps = 1 ms serialization + 1 ms prop
        a.send(packet, "b")
        sim.run()
        assert len(b.received) == 1
        assert sim.now == pytest.approx(2e-3)

    def test_fifo_serialization_queues_back_to_back(self):
        sim = Simulator()
        a, b, link = self._pair(sim, latency=0.0, bandwidth_bps=8e6)
        for _ in range(3):
            a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload_size=958), "b")
        sim.run()
        times = [sim.now]  # final time is the last delivery
        assert sim.now == pytest.approx(3e-3)
        assert len(b.received) == 3

    def test_loss_rate_zero_no_drops(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        for _ in range(200):
            a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b")
        sim.run()
        assert len(b.received) == 200
        assert link.ab.stats.packets_dropped == 0

    def test_loss_rate_drops_fraction(self):
        sim = Simulator()
        a, b, link = self._pair(sim, loss_rate=0.3)
        for _ in range(2000):
            a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b")
        sim.run()
        drop_fraction = link.ab.stats.packets_dropped / 2000
        assert 0.25 < drop_fraction < 0.35
        assert len(b.received) == 2000 - link.ab.stats.packets_dropped

    def test_loss_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator()
            a, b = Sink("a"), Sink("b")
            Link(sim, a, b, loss_rate=0.5, rng=SeededRng(seed))
            for _ in range(100):
                a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b")
            sim.run()
            return len(b.received)

        assert run(3) == run(3)

    def test_down_link_drops_everything(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        link.set_up(False)
        a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b")
        sim.run()
        assert b.received == []
        assert link.ab.stats.packets_dropped == 1

    def test_failed_receiver_drops_silently(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        b.fail()
        a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b")
        sim.run()
        assert b.received == []

    def test_failed_sender_sends_nothing(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        a.fail()
        assert a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b") is False
        sim.run()
        assert b.received == []

    def test_bytes_accounted(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        packet = make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2, payload_size=100)
        size = packet.wire_size
        a.send(packet, "b")
        sim.run()
        assert link.ab.stats.bytes_sent == size
        assert link.ba.stats.bytes_sent == 0

    def test_bidirectional(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b")
        b.send(make_udp_packet("2.2.2.2", "1.1.1.1", 2, 1), "a")
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_send_to_unknown_neighbor_returns_false(self):
        # Regression: Node.send's contract is "False if this node has
        # failed or has no such link"; it used to raise KeyError for the
        # missing-link half, contradicting its own docstring.
        sim = Simulator()
        a, b, link = self._pair(sim)
        assert a.send(Packet(), "nosuch") is False
        sim.run()
        assert b.received == []  # nothing was transmitted anywhere
        assert link.ab.stats.packets_sent == 0

    def test_send_to_known_neighbor_returns_true(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        assert a.send(make_udp_packet("1.1.1.1", "2.2.2.2", 1, 2), "b") is True

    def test_channel_parameter_validation(self):
        sim = Simulator()
        a, b = Sink("a"), Sink("b")
        with pytest.raises(ValueError):
            Link(sim, a, b, latency=-1.0)
        a2, b2 = Sink("a2"), Sink("b2")
        with pytest.raises(ValueError):
            Link(sim, a2, b2, bandwidth_bps=0.0)
        a3, b3 = Sink("a3"), Sink("b3")
        with pytest.raises(ValueError):
            Link(sim, a3, b3, loss_rate=1.0)

    def test_other_end_and_channel_from(self):
        sim = Simulator()
        a, b, link = self._pair(sim)
        assert link.other_end("a") is b
        assert link.channel_from("b") is link.ba
        with pytest.raises(ValueError):
            link.other_end("zzz")
