"""Tests for the SwiShmem manager, deployment facade, and NF integration."""

from __future__ import annotations

import pytest

from repro.core.manager import Decision, SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, ReadForwarded, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_tcp_packet
from repro.net.topology import Topology, build_full_mesh
from repro.nf.base import NetworkFunction
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


class EchoNF(NetworkFunction):
    """Test NF: counts packets in an EWO counter and forwards."""

    @classmethod
    def build_specs(cls, **kwargs):
        return [
            RegisterSpec(
                "echo_count", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=128
            )
        ]

    def process(self, ctx):
        self.handles["echo_count"].increment("packets")
        return Decision.forward()


class DropAllNF(NetworkFunction):
    @classmethod
    def build_specs(cls, **kwargs):
        return []

    def process(self, ctx):
        return Decision.drop()


class StrongWriterNF(NetworkFunction):
    """Writes every packet's flow into an SRO table, then forwards."""

    SPEC_KWARGS = {}

    @classmethod
    def build_specs(cls, **kwargs):
        return [RegisterSpec("seen_flows", Consistency.SRO, capacity=256, **cls.SPEC_KWARGS)]

    def process(self, ctx):
        flow = ctx.packet.five_tuple()
        handle = self.handles["seen_flows"]
        if flow is not None and handle.read(flow.as_tuple()) is None:
            handle.write(flow.as_tuple(), True)
        return Decision.forward()


class StrongTableWriterNF(StrongWriterNF):
    """Same, but the store is a control-plane table: each chain hop
    costs a CPU op, widening the pending window (used to exercise the
    read-forward path deterministically)."""

    SPEC_KWARGS = {"control_plane_state": True}


def build_world(n=3, control_op_latency=20e-6, **dep_kwargs):
    sim = Simulator()
    rng = SeededRng(77)
    topo = Topology(sim, rng)
    book = AddressBook()
    switches = build_full_mesh(
        topo,
        lambda name: PisaSwitch(name, sim, control_op_latency=control_op_latency),
        n,
    )
    src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
    topo.connect("src", "s0")
    topo.connect("dst", f"s{n-1}")
    deployment = SwiShmemDeployment(sim, topo, switches, address_book=book, **dep_kwargs)
    return sim, deployment, src, dst


class TestDeploymentSetup:
    def test_requires_switches(self):
        sim = Simulator()
        topo = Topology(sim, SeededRng(1))
        with pytest.raises(ValueError):
            SwiShmemDeployment(sim, topo, [])

    def test_duplicate_group_name_rejected(self, deployment):
        deployment.declare(RegisterSpec("x", Consistency.SRO))
        with pytest.raises(ValueError):
            deployment.declare(RegisterSpec("x", Consistency.EWO))

    def test_group_ids_unique_and_resolvable(self, deployment):
        a = deployment.declare(RegisterSpec("a", Consistency.SRO))
        b = deployment.declare(RegisterSpec("b", Consistency.EWO))
        assert a.group_id != b.group_id
        assert deployment.spec_by_name("a") is a

    def test_node_ids_stable(self, deployment):
        assert deployment.node_id("s0") == 0
        assert deployment.node_id("s2") == 2

    def test_clock_offsets_bounded_by_skew(self, make_deployment):
        dep, _, _ = make_deployment(3, clock_skew=50e-9)
        for name in dep.switch_names:
            assert abs(dep.clock_offset(name)) <= 50e-9

    def test_chain_covers_all_switches(self, deployment):
        spec = deployment.declare(RegisterSpec("r", Consistency.SRO))
        assert tuple(deployment.chains[spec.group_id].members) == ("s0", "s1", "s2")

    def test_multicast_group_covers_all_switches(self, deployment):
        spec = deployment.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        assert deployment.multicast.get(spec.group_id).members == ["s0", "s1", "s2"]

    def test_handles_per_switch(self, deployment):
        spec = deployment.declare(RegisterSpec("r", Consistency.SRO))
        h0 = deployment.handle("s0", spec)
        h1 = deployment.handle("s1", spec)
        assert h0 is not h1
        assert h0.spec is h1.spec


class TestNfIntegration:
    def test_nf_installed_on_every_switch(self):
        sim, dep, src, dst = build_world()
        instances = dep.install_nf(EchoNF)
        assert len(instances) == 3

    def test_packets_counted_once_per_switch_pass(self):
        sim, dep, src, dst = build_world()
        dep.install_nf(EchoNF)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run(until=0.05)
        spec = dep.spec_by_name("echo_count")
        # the packet crossed s0 and s2 (mesh shortest path src->dst)
        total = dep.manager("s0").ewo.local_state(spec.group_id)["packets"]
        assert total == 2
        assert len(dst.received) == 1

    def test_drop_decision_stops_packet(self):
        sim, dep, src, dst = build_world()
        dep.install_nf(DropAllNF)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run(until=0.05)
        assert dst.received == []

    def test_strong_write_buffers_output_until_commit(self):
        sim, dep, src, dst = build_world()
        dep.install_nf(StrongWriterNF)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run(until=10e-6)  # packet reached s0, chain still in progress
        assert dst.received == []
        buffered = dep.manager("s0").switch.control.buffered_count
        assert buffered == 1
        sim.run(until=0.05)
        assert len(dst.received) == 1
        assert dep.manager("s0").switch.control.buffered_count == 0

    def test_write_set_applied_before_release(self):
        sim, dep, src, dst = build_world()
        dep.install_nf(StrongWriterNF)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run(until=0.05)
        spec = dep.spec_by_name("seen_flows")
        stores = dep.sro_stores(spec)
        assert all(len(store) == 1 for store in stores)

    def test_second_packet_reads_locally_everywhere(self):
        sim, dep, src, dst = build_world()
        dep.install_nf(StrongWriterNF)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run(until=0.05)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run(until=0.1)
        assert len(dst.received) == 2
        spec = dep.spec_by_name("seen_flows")
        stats = dep.manager("s0").sro.stats_for(spec.group_id)
        assert stats.writes_initiated == 1  # only the first packet wrote

    def test_read_forward_reprocesses_at_tail(self):
        sim, dep, src, dst = build_world(control_op_latency=500e-6)
        dep.install_nf(StrongTableWriterNF)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        # while the write is pending at s0 (the table chain needs a CPU
        # op per member, so commit takes >1.5 ms), a second packet of the
        # same flow arrives: its read hits the pending bit and forwards
        sim.schedule(700e-6, lambda: src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)))
        sim.run(until=0.1)
        spec = dep.spec_by_name("seen_flows")
        forwarded = sum(
            dep.manager(n).sro.stats_for(spec.group_id).forwarded_reads
            for n in dep.switch_names
        )
        tail_reads = dep.manager("s2").sro.stats_for(spec.group_id).tail_reads
        assert forwarded >= 1
        assert tail_reads >= 1
        assert len(dst.received) == 2  # both packets ultimately delivered


class TestControlPlaneWrites:
    def test_write_without_packet_context(self, deployment):
        spec = deployment.declare(RegisterSpec("cfg", Consistency.SRO))
        deployment.manager("s0").register_write(spec, "key", "value")
        deployment.sim.run(until=0.05)
        assert all(s.get("key") == "value" for s in deployment.sro_stores(spec))

    def test_peek_never_forwards(self, make_deployment):
        dep, _, _ = make_deployment(3, control_op_latency=500e-6)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        # mid-write peek on another switch: no exception, no forwarding
        handle = dep.handle("s1", spec)
        assert handle.peek("k", "absent") == "absent"
        dep.sim.run(until=0.1)
        assert handle.peek("k") == 1


class TestHistoryRecording:
    def test_disabled_by_default(self, make_deployment):
        dep, _, _ = make_deployment(2)
        assert dep.history is None
        spec = dep.declare(RegisterSpec("r", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        dep.manager("s0").register_increment(spec, "k", 1)  # must not crash

    def test_ewo_ops_recorded_as_instants(self, deployment):
        spec = deployment.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        deployment.manager("s0").register_increment(spec, "k", 1)
        deployment.manager("s1").register_read(spec, "k", None)
        ops = deployment.history.operations()
        assert len(ops) == 2
        assert all(op.invoked_at == op.completed_at for op in ops)


class TestDecision:
    def test_factories(self):
        assert Decision.forward().kind == Decision.FORWARD_IP
        assert Decision.forward_to("s1").dst_node == "s1"
        assert Decision.drop().kind == Decision.DROP
        assert Decision.consume().kind == Decision.CONSUME
