"""Shared fixtures for the test suite.

Most fixtures build small deployments; tests that need special
parameters (loss, sync periods, pending-slot sharing) construct their
own via the ``make_deployment`` factory fixture.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import pytest

from repro.core.manager import SwiShmemDeployment
from repro.net.endhost import AddressBook, EndHost
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(seed=1234)


@pytest.fixture
def make_deployment(sim: Simulator, rng: SeededRng) -> Callable:
    """Factory: build an n-switch full-mesh deployment.

    Returns ``(deployment, topology, switches)``.  Keyword arguments are
    forwarded to :class:`SwiShmemDeployment`, plus ``loss_rate`` and
    ``latency`` for the mesh links and ``memory_bytes`` /
    ``control_op_latency`` for the switches.
    """

    def build(
        n: int = 3,
        loss_rate: float = 0.0,
        latency: float = 5e-6,
        memory_bytes: int = 10 * 1024 * 1024,
        control_op_latency: float = 20e-6,
        **kwargs,
    ) -> Tuple[SwiShmemDeployment, Topology, List[PisaSwitch]]:
        topo = Topology(sim, rng)
        switches = build_full_mesh(
            topo,
            lambda name: PisaSwitch(
                name,
                sim,
                memory_bytes=memory_bytes,
                control_op_latency=control_op_latency,
            ),
            n,
            loss_rate=loss_rate,
            latency=latency,
        )
        deployment = SwiShmemDeployment(sim, topo, switches, **kwargs)
        return deployment, topo, switches

    return build


@pytest.fixture
def deployment(make_deployment) -> SwiShmemDeployment:
    """A plain three-switch deployment with history recording."""
    dep, _, _ = make_deployment(3, record_history=True)
    return dep
