"""Determinism lint: forbid unseeded ``random`` usage and CWD-relative
``sys.path`` hacks.

Every chaos run, benchmark, and failover test in this repo promises
byte-identical replays for a given seed.  One stray call into the
process-global :mod:`random` generator (``random.random()``,
``random.shuffle(...)``, ``from random import randint``) silently
breaks that promise — the global generator is shared, unseeded by
default, and perturbed by import order.

Similarly, ``sys.path.insert(0, ".")`` makes a script importable only
when launched from the repo root: results then depend on the caller's
working directory, the repro-killing cousin of wall-clock nondeterminism.
Paths must be derived from ``__file__`` (see ``benchmarks/common.py``).

This lint walks the AST of every Python file and flags:

* any attribute access on the ``random`` module (under any import
  alias) other than ``random.Random`` — constructing an explicitly
  seeded instance is the one sanctioned use;
* any ``from random import X`` where ``X`` is not ``Random``;
* any ``random.Random(<literal>)`` construction — a hard-coded seed
  (``random.Random(0)``) correlates supposedly independent streams and
  hides from the experiment-seed sweep; seeds must be derived, e.g.
  ``random.Random(derive_seed(root, name))`` or ``SeededRng.stream()``;
* any ``sys.path.insert(...)`` / ``sys.path.append(...)`` whose path
  argument is a *relative* string literal (``"."``, ``""``, ``".."``,
  ``"src"``...) — ``__file__``-derived expressions are fine.

* inside ``src/repro/obs/`` only: any wall-clock read — ``time.time()``
  / ``time.time_ns()`` (under any import alias or ``from time import``)
  and ``datetime.now()`` / ``utcnow()`` / ``today()``.  The
  observability layer feeds replay digests and committed benchmark
  sidecars, so its outputs must be pure functions of sim time carried
  by the caller.  ``time.perf_counter`` stays allowed: it is the sim
  profiler's host-cost clock, measuring the harness rather than the
  simulation.

* also inside ``src/repro/obs/`` only: float accumulation via ``sum()``
  over unordered dict iteration — ``sum(d.values())``,
  ``sum(v for v in d.values())``, ``sum(c for k, c in d.items())``.
  Float addition is not associative, so the result depends on dict
  iteration order; committed sidecars compare these values exactly
  across interpreter builds.  Wrapping the iterable in ``sorted(...)``
  pins the order and is the sanctioned escape hatch.

``src/repro/sim/random.py`` is exempt: it is the module that wraps the
stdlib generator behind :class:`SeededRng`, the seam everything else
must go through.

Run from the repo root (CI does)::

    python tools/lint_determinism.py [paths...]

Exits non-zero and prints ``path:line: message`` for each violation.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import List, Tuple

#: Paths (relative to the repo root) scanned when none are given.
DEFAULT_ROOTS = ("src", "benchmarks", "tests", "tools", "examples")

#: The one module allowed to touch stdlib ``random`` directly.
EXEMPT_SUFFIX = os.path.join("repro", "sim", "random.py")

#: The one attribute of the ``random`` module code may use: the
#: explicitly seeded generator class.
ALLOWED_ATTR = "Random"

#: Wall-clock reads are forbidden under this path fragment (the
#: observability layer, whose exports feed replay digests).
WALLCLOCK_SCOPE = os.path.join("repro", "obs") + os.sep

#: Wall-clock attributes of the ``time`` module (``perf_counter`` and
#: friends stay allowed — they time the harness, not the simulation).
WALLCLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})

#: Wall-clock constructors on ``datetime``/``date`` classes.
WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

Violation = Tuple[str, int, str]


class _RandomUseVisitor(ast.NodeVisitor):
    def __init__(self, path: str, check_wallclock: bool = False) -> None:
        self.path = path
        # One flag gates both obs-scope checks: wall-clock reads and
        # float sums over unordered dict iteration.
        self.check_wallclock = check_wallclock
        self.aliases: set = set()
        self.random_class_aliases: set = set()
        self.sys_aliases: set = set()
        self.time_aliases: set = set()
        self.datetime_aliases: set = set()
        self.datetime_classes: set = set()
        self.violations: List[Violation] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.aliases.add(alias.asname or alias.name)
            if alias.name == "sys":
                self.sys_aliases.add(alias.asname or alias.name)
            if alias.name == "time":
                self.time_aliases.add(alias.asname or alias.name)
            if alias.name == "datetime":
                self.datetime_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # sys.path.insert(0, "<relative>") / sys.path.append("<relative>")
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("insert", "append")
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "path"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self.sys_aliases
        ):
            path_arg = node.args[-1] if node.args else None
            if (
                isinstance(path_arg, ast.Constant)
                and isinstance(path_arg.value, str)
                and not os.path.isabs(path_arg.value)
            ):
                self.violations.append((
                    self.path,
                    node.lineno,
                    f"sys.path.{func.attr} of relative path "
                    f"{path_arg.value!r} depends on the caller's CWD; "
                    f"derive the path from __file__ instead "
                    f"(see benchmarks/common.py)",
                ))
        self._check_literal_seed(node)
        if self.check_wallclock:
            self._check_unordered_sum(node)
        self.generic_visit(node)

    def _check_literal_seed(self, node: ast.Call) -> None:
        """Flag ``random.Random(<literal>)`` under any import alias.

        A hard-coded seed silently correlates streams (two components
        seeded with 0 produce identical draws) and pins the component
        outside the experiment seed sweep.  Seeds must be derived:
        ``random.Random(derive_seed(root, name))`` or
        ``SeededRng.stream(name)`` (see src/repro/sim/random.py).
        """
        func = node.func
        is_random_ctor = (
            isinstance(func, ast.Attribute)
            and func.attr == ALLOWED_ATTR
            and isinstance(func.value, ast.Name)
            and func.value.id in self.aliases
        ) or (
            isinstance(func, ast.Name) and func.id in self.random_class_aliases
        )
        if not is_random_ctor or not node.args:
            return
        seed_arg = node.args[0]
        if isinstance(seed_arg, ast.Constant):
            self.violations.append((
                self.path,
                node.lineno,
                f"random.Random({seed_arg.value!r}) with a literal seed "
                f"correlates independent streams; derive the seed instead "
                f"(repro.sim.random.derive_seed / SeededRng.stream)",
            ))

    @staticmethod
    def _unordered_dict_iter(expr: ast.expr) -> str:
        """Return ``values``/``items`` when ``expr`` is a bare
        ``X.values()`` / ``X.items()`` call, else an empty string."""
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("values", "items")
            and not expr.args
            and not expr.keywords
        ):
            return expr.func.attr
        return ""

    def _check_unordered_sum(self, node: ast.Call) -> None:
        """Flag ``sum()`` whose iterable walks a dict in hash order.

        Float addition is order-sensitive; committed sidecars compare
        these aggregates exactly.  ``sorted(...)`` around the iterable
        pins the order and escapes the lint.
        """
        if not (isinstance(node.func, ast.Name) and node.func.id == "sum" and node.args):
            return
        arg = node.args[0]
        method = self._unordered_dict_iter(arg)
        if not method and isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for comp in arg.generators:
                method = self._unordered_dict_iter(comp.iter)
                if method:
                    break
        if method:
            self.violations.append((
                self.path,
                node.lineno,
                f"sum() over unordered dict iteration (.{method}()) "
                f"inside the observability layer; float accumulation "
                f"order must be pinned — wrap the iterable in "
                f"sorted(...)",
            ))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            for alias in node.names:
                if alias.name == ALLOWED_ATTR:
                    self.random_class_aliases.add(alias.asname or alias.name)
                else:
                    self.violations.append((
                        self.path,
                        node.lineno,
                        f"'from random import {alias.name}' pulls from the "
                        f"unseeded process-global generator; use "
                        f"repro.sim.random.SeededRng (or random.Random)",
                    ))
        if node.module == "datetime" and node.level == 0:
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(alias.asname or alias.name)
        if self.check_wallclock and node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in WALLCLOCK_TIME_ATTRS:
                    self.violations.append((
                        self.path,
                        node.lineno,
                        f"'from time import {alias.name}' reads the wall "
                        f"clock inside the observability layer; take sim "
                        f"time from the caller instead",
                    ))
        self.generic_visit(node)

    def _is_datetime_class(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Name):
            return value.id in self.datetime_classes
        return (
            isinstance(value, ast.Attribute)
            and value.attr in ("datetime", "date")
            and isinstance(value.value, ast.Name)
            and value.value.id in self.datetime_aliases
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self.aliases
            and node.attr != ALLOWED_ATTR
        ):
            self.violations.append((
                self.path,
                node.lineno,
                f"'{node.value.id}.{node.attr}' uses the unseeded "
                f"process-global generator; use repro.sim.random.SeededRng "
                f"(or construct a seeded random.Random)",
            ))
        if self.check_wallclock:
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in self.time_aliases
                and node.attr in WALLCLOCK_TIME_ATTRS
            ):
                self.violations.append((
                    self.path,
                    node.lineno,
                    f"'{node.value.id}.{node.attr}' reads the wall clock "
                    f"inside the observability layer (its exports feed "
                    f"replay digests); take sim time from the caller "
                    f"instead",
                ))
            elif node.attr in WALLCLOCK_DATETIME_ATTRS and self._is_datetime_class(node.value):
                self.violations.append((
                    self.path,
                    node.lineno,
                    f"'datetime.{node.attr}' reads the wall clock inside "
                    f"the observability layer (its exports feed replay "
                    f"digests); take sim time from the caller instead",
                ))
        self.generic_visit(node)


def lint_file(path: str) -> List[Violation]:
    if path.endswith(EXEMPT_SUFFIX):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    check_wallclock = WALLCLOCK_SCOPE in os.path.normpath(os.path.abspath(path))
    visitor = _RandomUseVisitor(path, check_wallclock=check_wallclock)
    visitor.visit(tree)
    return visitor.violations


def lint_paths(paths: List[str]) -> List[Violation]:
    violations: List[Violation] = []
    for root in paths:
        if os.path.isfile(root):
            violations.extend(lint_file(root))
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [
                d for d in dirnames
                if d not in ("__pycache__",) and not d.endswith(".egg-info")
            ]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    violations.extend(lint_file(os.path.join(dirpath, name)))
    return violations


def main(argv: List[str]) -> int:
    roots = argv or [r for r in DEFAULT_ROOTS if os.path.isdir(r)]
    violations = lint_paths(roots)
    for path, line, message in violations:
        print(f"{path}:{line}: {message}")
    if violations:
        print(f"determinism lint: {len(violations)} violation(s)")
        return 1
    print("determinism lint: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
