"""Tests for topology builders, routing/ECMP, multicast, end hosts."""

from __future__ import annotations

import pytest

from repro.net.endhost import AddressBook, EndHost
from repro.net.link import Node
from repro.net.multicast import MulticastGroup, MulticastRegistry
from repro.net.packet import make_tcp_packet
from repro.net.routing import RoutingTable, ecmp_hash, shortest_paths
from repro.net.topology import (
    Topology,
    build_chain,
    build_full_mesh,
    build_leaf_spine,
    build_nf_cluster,
)
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng


class Dummy(Node):
    def handle_packet(self, packet, from_node):
        pass


def make_topo():
    sim = Simulator()
    return sim, Topology(sim, SeededRng(2))


class TestTopology:
    def test_duplicate_node_rejected(self):
        _, topo = make_topo()
        topo.add_node(Dummy("x"))
        with pytest.raises(ValueError):
            topo.add_node(Dummy("x"))

    def test_chain_builder(self):
        _, topo = make_topo()
        switches = build_chain(topo, Dummy, 4)
        assert [s.name for s in switches] == ["s0", "s1", "s2", "s3"]
        adj = topo.adjacency()
        assert adj["s0"] == ["s1"]
        assert adj["s1"] == ["s0", "s2"]
        assert len(topo.links) == 3

    def test_mesh_builder_all_pairs(self):
        _, topo = make_topo()
        build_full_mesh(topo, Dummy, 4)
        assert len(topo.links) == 6
        adj = topo.adjacency()
        assert all(len(peers) == 3 for peers in adj.values())

    def test_leaf_spine_builder(self):
        _, topo = make_topo()
        leaves, spines, hosts = build_leaf_spine(topo, Dummy, Dummy, leaves=3, spines=2, hosts_per_leaf=2)
        assert len(leaves) == 3 and len(spines) == 2 and len(hosts) == 6
        adj = topo.adjacency()
        for leaf in leaves:
            for spine in spines:
                assert spine.name in adj[leaf.name]

    def test_nf_cluster_builder(self):
        _, topo = make_topo()
        cluster, clients, servers, ingress, egress = build_nf_cluster(
            topo, Dummy, Dummy, cluster_size=3, clients=2, servers=2
        )
        adj = topo.adjacency()
        for nf in cluster:
            assert "ingress" in adj[nf.name] and "egress" in adj[nf.name]
        # cluster forms a mesh among itself
        assert "nf1" in adj["nf0"] and "nf2" in adj["nf0"]

    def test_adjacency_excludes_failed_and_down(self):
        _, topo = make_topo()
        build_chain(topo, Dummy, 3)
        topo.fail_node("s1")
        adj = topo.adjacency()
        assert adj["s0"] == [] and adj["s2"] == []
        topo.recover_node("s1")
        topo.link_between("s0", "s1").set_up(False)
        adj = topo.adjacency()
        assert adj["s0"] == []
        assert adj["s1"] == ["s2"]

    def test_builders_validate_sizes(self):
        _, topo = make_topo()
        with pytest.raises(ValueError):
            build_chain(topo, Dummy, 0)
        with pytest.raises(ValueError):
            build_full_mesh(topo, Dummy, 0)


class TestShortestPaths:
    def test_line_graph(self):
        adj = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
        hops = shortest_paths(adj, "a")
        assert hops == {"b": ["b"], "c": ["b"]}

    def test_ecmp_set_on_diamond(self):
        adj = {
            "a": ["b", "c"],
            "b": ["a", "d"],
            "c": ["a", "d"],
            "d": ["b", "c"],
        }
        hops = shortest_paths(adj, "a")
        assert hops["d"] == ["b", "c"]  # two equal-cost first hops

    def test_unreachable_not_listed(self):
        adj = {"a": ["b"], "b": ["a"], "z": []}
        assert "z" not in shortest_paths(adj, "a")


class TestRoutingTable:
    def _diamond(self):
        sim, topo = make_topo()
        for name in "abcd":
            topo.add_node(Dummy(name))
        topo.connect("a", "b")
        topo.connect("a", "c")
        topo.connect("b", "d")
        topo.connect("c", "d")
        return sim, topo, RoutingTable(topo)

    def test_next_hop_direct(self):
        _, _, routing = self._diamond()
        assert routing.next_hop("a", "b") == "b"

    def test_ecmp_stable_per_flow(self):
        _, _, routing = self._diamond()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 100, 200)
        hop1 = routing.next_hop("a", "d", packet)
        hop2 = routing.next_hop("a", "d", packet)
        assert hop1 == hop2

    def test_ecmp_spreads_flows(self):
        _, _, routing = self._diamond()
        hops = {
            routing.next_hop(
                "a", "d", make_tcp_packet("1.1.1.1", "2.2.2.2", port, 80)
            )
            for port in range(100)
        }
        assert hops == {"b", "c"}

    def test_salt_change_can_move_flows(self):
        _, _, routing = self._diamond()
        packets = [make_tcp_packet("1.1.1.1", "2.2.2.2", p, 80) for p in range(50)]
        before = [routing.next_hop("a", "d", pkt) for pkt in packets]
        routing.set_salt(12345)
        after = [routing.next_hop("a", "d", pkt) for pkt in packets]
        assert before != after  # at least one flow re-assigned

    def test_recompute_after_failure(self):
        _, topo, routing = self._diamond()
        topo.fail_node("b")
        routing.recompute()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert routing.next_hop("a", "d", packet) == "c"

    def test_unreachable_returns_none(self):
        _, topo, routing = self._diamond()
        topo.fail_node("b")
        topo.fail_node("c")
        routing.recompute()
        assert routing.next_hop("a", "d") is None

    def test_full_path(self):
        _, _, routing = self._diamond()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        path = routing.path("a", "d", packet)
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_ecmp_hash_deterministic(self):
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert ecmp_hash(packet, 0) == ecmp_hash(packet, 0)
        assert ecmp_hash(packet, 0) != ecmp_hash(packet, 1)


class TestMulticast:
    def test_group_membership(self):
        group = MulticastGroup(1, ["a", "b", "c"])
        assert group.members == ["a", "b", "c"]
        assert group.others("a") == ["b", "c"]
        assert "a" in group and "z" not in group
        assert len(group) == 3

    def test_remove_idempotent(self):
        group = MulticastGroup(1, ["a", "b"])
        group.remove("a")
        group.remove("a")
        assert group.members == ["b"]

    def test_registry(self):
        registry = MulticastRegistry()
        registry.create(1, ["a", "b"])
        registry.create(2, ["a", "c"])
        with pytest.raises(ValueError):
            registry.create(1, [])
        touched = registry.remove_member_everywhere("a")
        assert touched == 2
        assert registry.get(1).members == ["b"]
        assert [g.group_id for g in registry.groups()] == [1, 2]


class TestEndHost:
    def _host_pair(self):
        sim, topo = make_topo()
        book = AddressBook()
        client = topo.add_node(EndHost("client", sim, "10.0.0.1", book))
        server = topo.add_node(EndHost("server", sim, "10.0.0.2", book, responder=True))
        topo.connect("client", "server")
        return sim, client, server, book

    def test_address_book_registration(self):
        _, _, _, book = self._host_pair()
        assert book.lookup("10.0.0.1") == "client"
        assert book.lookup("9.9.9.9") is None
        assert book.ips() == ["10.0.0.1", "10.0.0.2"]

    def test_conflicting_registration_rejected(self):
        book = AddressBook()
        book.register("1.1.1.1", "a")
        book.register("1.1.1.1", "a")  # same mapping is fine
        with pytest.raises(ValueError):
            book.register("1.1.1.1", "b")

    def test_inject_and_receive(self):
        sim, client, server, _ = self._host_pair()
        from repro.net.headers import TcpFlags

        client.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1000, 80, flags=TcpFlags.SYN))
        sim.run()
        assert len(server.received) == 1
        # responder answered the SYN with SYN|ACK
        assert len(client.received) == 1
        reply = client.received[0].packet
        assert reply.tcp.flags & TcpFlags.SYN and reply.tcp.flags & TcpFlags.ACK

    def test_latency_measured(self):
        sim, client, server, _ = self._host_pair()
        client.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80))
        sim.run()
        assert server.received[0].latency > 0.0

    def test_responder_ignores_pure_ack_and_rst(self):
        sim, client, server, _ = self._host_pair()
        from repro.net.headers import TcpFlags

        client.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80, flags=TcpFlags.ACK))
        client.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80, flags=TcpFlags.RST))
        sim.run()
        assert client.received == []

    def test_uplink_required_single(self):
        sim, topo = make_topo()
        host = topo.add_node(EndHost("h", sim, "1.1.1.1"))
        with pytest.raises(RuntimeError):
            host.uplink_neighbor()

    def test_packets_from_filter(self):
        sim, client, server, _ = self._host_pair()
        client.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 80, payload_size=10))
        sim.run()
        assert len(server.packets_from("10.0.0.1")) == 1
        assert server.packets_from("9.9.9.9") == []
