"""The central controller: failure detection, chain repair, recovery.

Paper section 6.3 assumes "a central controller can detect which
switches have failed" and sketches the two phases we implement:

**Failover** (automatic, driven by the detector):

* SRO — "we regain connectivity by reprogramming the routing of the
  failed switch neighbors" and repair the chain by excising the failed
  member.  In-flight writes time out at their writers' control planes
  and are retried against the repaired chain.
* EWO — "other than removing the failed switch from the multicast
  group, no explicit failover protocol is needed."

**Recovery** (operator-initiated via :meth:`recover_switch`):

* The switch restarts with volatile data-plane memory wiped.
* EWO — re-join the multicast groups and wait for periodic sync; CRDT
  state (including the rejoining switch's own counter slots) flows back
  from the other replicas.
* SRO — append to the chain in *catch-up* mode (gap-tolerant apply),
  wait a drain delay so in-flight old-chain writes settle, transfer a
  snapshot from a live chain member, and finally promote the new member
  to read tail.

**Failure detection** (``detection="heartbeat"``, the default) is real:
every switch's packet generator emits a :class:`Heartbeat` packet each
``heartbeat_period`` toward the controller's *host switch* — the switch
whose management port the controller hangs off.  Heartbeats ride the
data plane, so loss, partitions, and nemesis interference affect them
like any other packet; a switch whose beacons stop for longer than
``heartbeat_timeout`` is declared failed.  Detection latency is bounded
by ``heartbeat_period + heartbeat_timeout`` (one period of beacon
spacing plus the timeout; the detector sweep adds a quarter period,
covered by the beacon-spacing term as long as in-network delay stays
under ~3/4 period).  Because the detector is no longer an oracle, it
can be *wrong*: a partitioned-but-alive switch is excised (split-brain),
and its stale in-flight chain updates are rejected by epoch fencing
(see ``ChainUpdate.epoch``).  When beacons from a suspected switch
resume, the controller counts a false positive and re-admits it through
the catch-up + snapshot path.

Two narrow out-of-band assumptions remain, both documented properties
of a separate management network: configuration pushes (chain
descriptors, multicast membership) reach live switches directly, and
the controller notices its *own* host switch dying via the management
port (it then re-homes to the next live switch).

``detection="oracle"`` restores the seed behaviour — periodic liveness
polling of the fail-stop flag with period ``detect_period`` — for
experiments that want detection latency out of the picture.
Configuration pushes to switch control planes pay ``config_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.protocols.messages import Heartbeat
from repro.sim.engine import Process
from repro.switch.pktgen import PacketGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment

__all__ = ["CentralController", "FailureEvent", "RecoveryEvent"]

DEFAULT_DETECT_PERIOD = 500e-6
#: Heartbeat emission period per switch (heartbeat detection mode).
DEFAULT_HEARTBEAT_PERIOD = 200e-6
#: Declare a switch failed after this long without a beacon.
DEFAULT_HEARTBEAT_TIMEOUT = 600e-6
#: Latency for the controller to push one config update to one switch.
DEFAULT_CONFIG_LATENCY = 100e-6
#: Wait for in-flight old-chain writes to settle before snapshotting.
DEFAULT_DRAIN_DELAY = 5e-3
#: Give up a recovery after this many snapshot-transfer attempts.
MAX_TRANSFER_ATTEMPTS = 3


@dataclass
class FailureEvent:
    """Bookkeeping for one detected switch failure."""

    switch: str
    failed_at: float
    detected_at: float
    chains_repaired: List[int] = field(default_factory=list)
    multicast_groups_updated: int = 0
    #: True when the suspected switch was actually alive at detection
    #: time (heartbeat loss / partition, not a crash).
    false_positive: bool = False

    @property
    def detection_latency(self) -> float:
        return self.detected_at - self.failed_at


@dataclass
class RecoveryEvent:
    """Bookkeeping for one switch recovery (or false-positive re-admission)."""

    switch: str
    started_at: float
    ewo_rejoined_at: Optional[float] = None
    promoted_at: Dict[int, float] = field(default_factory=dict)
    #: True when this is a re-admission of a suspected-but-alive switch.
    readmission: bool = False
    #: Snapshot-transfer attempts per group (retries via on_failure).
    transfer_attempts: Dict[int, int] = field(default_factory=dict)

    def sro_recovery_time(self, group_id: int) -> Optional[float]:
        promoted = self.promoted_at.get(group_id)
        if promoted is None:
            return None
        return promoted - self.started_at


class CentralController:
    """Deployment-wide failure detector and reconfiguration engine."""

    def __init__(
        self,
        deployment: "SwiShmemDeployment",
        detect_period: float = DEFAULT_DETECT_PERIOD,
        config_latency: float = DEFAULT_CONFIG_LATENCY,
        drain_delay: float = DEFAULT_DRAIN_DELAY,
        detection: str = "heartbeat",
        heartbeat_period: float = DEFAULT_HEARTBEAT_PERIOD,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
    ) -> None:
        if detection not in ("heartbeat", "oracle"):
            raise ValueError(f"unknown detection mode {detection!r}")
        self.deployment = deployment
        self.sim = deployment.sim
        self.detect_period = detect_period
        self.config_latency = config_latency
        self.drain_delay = drain_delay
        self.detection = detection
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self._known_failed: Set[str] = set()
        self._fail_times: Dict[str, float] = {}
        self._known_down_links: Set[frozenset] = set()
        self.link_events = 0
        self.failures: List[FailureEvent] = []
        self.recoveries: List[RecoveryEvent] = []
        #: Recoveries abandoned after MAX_TRANSFER_ATTEMPTS: (group, target, time).
        self.aborted_recoveries: List[Tuple[int, str, float]] = []
        #: (group, target) -> recovery generation.  Bumped every time a
        #: fresh catch-up is initiated, so snapshot events scheduled by a
        #: superseded recovery (the member was excised and readmitted in
        #: between) are ignored when they fire.
        self._recovery_gen: Dict[Tuple[int, str], int] = {}
        #: Heartbeat bookkeeping (heartbeat mode only).
        self.host: str = deployment.switch_names[0]
        self.heartbeats_received = 0
        self.false_positives = 0
        self.rehomes = 0
        self._last_heard: Dict[str, float] = {}
        #: All deadlines are measured from max(last beacon, this base);
        #: reset on (re-)homing so everyone gets a fresh grace window.
        self._deadline_base = self.sim.now
        self._hb_seq = 0
        # Live telemetry (repro.obs).  The detection-latency histogram
        # only sees real failures — false positives have no meaningful
        # failed_at, so they get a counter instead.
        metrics = deployment.metrics
        self._m_heartbeats = metrics.counter("controller.heartbeats", "controller")
        self._m_failures = metrics.counter("controller.failures_detected", "controller")
        self._m_false_positives = metrics.counter(
            "controller.false_positives", "controller"
        )
        self._m_recoveries = metrics.counter("controller.recoveries", "controller")
        self._m_detection_latency = metrics.histogram(
            "controller.detection_latency_seconds", "controller"
        )
        self._hb_generators: Dict[str, PacketGenerator] = {}
        if detection == "heartbeat":
            for switch in deployment.switches:
                self._start_heartbeat_for(switch.name)
            self._detector = Process(
                self.sim,
                heartbeat_period / 4,
                self._check_liveness,
                name="controller:detect",
            ).start()
        else:
            self._detector = Process(
                self.sim, detect_period, self._poll, name="controller:detect"
            ).start()

    @property
    def detection_bound(self) -> float:
        """Worst-case detection latency for a clean fail-stop."""
        if self.detection == "heartbeat":
            return self.heartbeat_period + self.heartbeat_timeout
        return self.detect_period

    # ------------------------------------------------------------------
    # Failure detection
    # ------------------------------------------------------------------
    def note_failure_time(self, switch_name: str) -> None:
        """Experiments call this when injecting a fault, so detection
        latency can be measured.  Optional."""
        self._fail_times.setdefault(switch_name, self.sim.now)

    def _poll(self) -> None:
        """Oracle detection: read the fail-stop flag directly."""
        for switch in self.deployment.switches:
            if switch.failed and switch.name not in self._known_failed:
                self._on_failure_detected(switch.name)
        self._poll_links()

    def _start_heartbeat_for(self, name: str) -> None:
        """(Re)start the heartbeat packet generator on one switch."""
        old = self._hb_generators.pop(name, None)
        if old is not None:
            old.stop()
        switch = self.deployment.manager(name).switch
        phase_stream = self.deployment.rng.stream(f"heartbeat-phase:{name}")
        generator = PacketGenerator(
            switch,
            period=self.heartbeat_period,
            body=lambda s=switch: self._emit_heartbeat(s),
            name="heartbeat",
            phase=phase_stream.uniform(0.1, 1.0) * self.heartbeat_period,
        )
        generator.start()
        self._hb_generators[name] = generator

    def _emit_heartbeat(self, switch) -> None:
        if switch.failed:
            return
        self._hb_seq += 1
        beacon = Heartbeat(origin=switch.name, seq=self._hb_seq, sent_at=self.sim.now)
        if switch.name == self.host:
            # The host's beacon reaches the controller over its own
            # management port — no network hop to lose.
            self.on_heartbeat(beacon)
            return
        packet = Packet(
            swishmem=SwiShmemHeader(op=SwiShmemOp.HEARTBEAT, dst_node=self.host),
            swishmem_payload=beacon,
        )
        switch.generate_packet(packet, self.host)

    def on_heartbeat(self, beacon: Heartbeat) -> None:
        """A beacon reached the host switch (dispatched by its manager)."""
        self.heartbeats_received += 1
        self._m_heartbeats.inc()
        self._last_heard[beacon.origin] = self.sim.now
        if beacon.origin in self._known_failed:
            if self.deployment.manager(beacon.origin).switch.failed:
                # A stale beacon (delayed in flight) from a switch that
                # really is down — not evidence of life.
                return
            self.false_positives += 1
            self._m_false_positives.inc()
            self._readmit(beacon.origin)

    def _check_liveness(self) -> None:
        """Periodic detector sweep over heartbeat deadlines."""
        host_switch = self.deployment.manager(self.host).switch
        if host_switch.failed:
            # Management port went dark: the host itself died.
            if self.host not in self._known_failed:
                self._on_failure_detected(self.host)  # re-homes as a side effect
            if self.deployment.manager(self.host).switch.failed:
                self._rehome()  # earlier re-home found no live switch; retry
        now = self.sim.now
        for name in self.deployment.switch_names:
            if name in self._known_failed:
                continue
            last = max(self._last_heard.get(name, 0.0), self._deadline_base)
            if now - last > self.heartbeat_timeout:
                self._on_failure_detected(name)
        self._poll_links()

    def _rehome(self) -> None:
        """Move the controller's management attachment to a live switch."""
        for name in self.deployment.switch_names:
            manager = self.deployment.manager(name)
            if not manager.switch.failed and name not in self._known_failed:
                self.host = name
                self.rehomes += 1
                # Fresh grace window: beacons in flight toward the old
                # host are gone; don't declare everyone dead at once.
                self._deadline_base = self.sim.now
                return
        # No live switch left — nothing to attach to (detector keeps
        # sweeping; recovery will re-home via recover_switch).

    def _poll_links(self) -> None:
        """Link failures only require re-routing (paper 6.3: 'links …
        may fail'; the replication protocols themselves retry/resync
        over whatever paths remain)."""
        down_now = {
            frozenset((link.a.name, link.b.name))
            for link in self.deployment.topo.links
            if not link.up
        }
        if down_now != self._known_down_links:
            self._known_down_links = down_now
            self.link_events += 1
            self.deployment.routing.recompute()

    def _on_failure_detected(self, name: str) -> None:
        self._known_failed.add(name)
        event = FailureEvent(
            switch=name,
            failed_at=self._fail_times.get(name, self.sim.now),
            detected_at=self.sim.now,
            false_positive=not self.deployment.manager(name).switch.failed,
        )
        self.failures.append(event)
        self._m_failures.inc()
        if not event.false_positive:
            self._m_detection_latency.observe(event.detection_latency)
        # "First, we regain connectivity by reprogramming the routing of
        # the failed switch neighbors."
        self.deployment.routing.recompute()
        # SRO: excise the member from every chain it belongs to.  The
        # bumped descriptor version doubles as the fencing epoch: updates
        # sequenced under the old configuration are rejected by members
        # that installed this one.
        for group_id, chain in list(self.deployment.chains.items()):
            if name in chain:
                repaired = chain.without(name)
                self._push_chain(repaired)
                event.chains_repaired.append(group_id)
        # EWO: drop from every multicast group; nothing else needed.
        event.multicast_groups_updated = (
            self.deployment.multicast.remove_member_everywhere(name)
        )
        # Snapshot transfers sourced at the dead switch can't finish —
        # abandon them now so their on_failure callbacks pick a new
        # source (the dead CPU would otherwise swallow its own timers).
        self.deployment.failover.fail_transfers_from(name)
        if name == self.host and self.detection == "heartbeat":
            self._rehome()

    def _push_chain(self, chain) -> None:
        """Distribute a descriptor to all live switches' control planes."""
        self.deployment.chains[chain.chain_id] = chain
        for manager in self.deployment.managers.values():
            if manager.switch.failed:
                continue
            if chain.chain_id not in manager.sro.groups:
                continue
            self.sim.schedule(
                self.config_latency,
                manager.sro.set_chain,
                chain.chain_id,
                chain,
                label="controller:push-chain",
            )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover_switch(self, name: str, wipe_state: bool = True) -> RecoveryEvent:
        """Bring a failed switch back into the deployment.

        ``wipe_state=True`` models a restarted switch whose volatile
        data-plane registers are empty (the realistic case).
        """
        manager = self.deployment.manager(name)
        switch = manager.switch
        if not switch.failed:
            raise ValueError(f"{name} has not failed; nothing to recover")
        event = RecoveryEvent(switch=name, started_at=self.sim.now)
        self.recoveries.append(event)
        self._m_recoveries.inc()
        switch.recover()
        self._known_failed.discard(name)
        self._fail_times.pop(name, None)
        self._last_heard[name] = self.sim.now
        if (
            self.detection == "heartbeat"
            and self.deployment.manager(self.host).switch.failed
        ):
            self._rehome()
        self.deployment.routing.recompute()
        if wipe_state:
            self._wipe_state(manager)
        if self.detection == "heartbeat":
            self._start_heartbeat_for(name)
        # EWO: rejoin multicast groups and restart the sync generators.
        rejoined = False
        for group_id, state in manager.ewo.groups.items():
            self.deployment.multicast.get(group_id).add(name)
            manager.restart_ewo_sync(group_id)
            rejoined = True
        if rejoined:
            event.ewo_rejoined_at = self.sim.now
        self._rejoin_chains(name, event, wiped=wipe_state)
        return event

    def _readmit(self, name: str) -> None:
        """A suspected-but-alive switch proved it is up: bring it back.

        Its data-plane state is intact but it missed every chain update
        committed while it was excised, so it rejoins through the same
        catch-up + snapshot path as a recovering switch — minus the wipe
        and the process restarts.
        """
        self._known_failed.discard(name)
        self._fail_times.pop(name, None)
        event = RecoveryEvent(
            switch=name, started_at=self.sim.now, readmission=True
        )
        self.recoveries.append(event)
        self._m_recoveries.inc()
        self.deployment.routing.recompute()
        manager = self.deployment.manager(name)
        rejoined = False
        for group_id in manager.ewo.groups:
            group = self.deployment.multicast.get(group_id)
            if name not in group.members:
                group.add(name)
            rejoined = True
        if rejoined:
            event.ewo_rejoined_at = self.sim.now
        self._rejoin_chains(name, event, wiped=False)

    def _rejoin_chains(self, name: str, event: RecoveryEvent, wiped: bool) -> None:
        """Re-append ``name`` to every chain it replicates, in catch-up
        mode, and schedule the drain-delayed snapshot transfer."""
        manager = self.deployment.manager(name)
        for group_id in list(manager.sro.groups):
            chain = self.deployment.chains.get(group_id)
            if chain is None:
                continue
            if name in chain:
                if len(chain) == 1 or not wiped:
                    # Sole member (no one to copy from), or an undetected
                    # failure with state intact — nothing to do.
                    continue
                # Undetected failure + wiped state: if we stayed in place
                # the empty replica would see every next update as a gap
                # and wedge.  Excise and re-append so it catches up.
                appended = chain.without(name).with_appended(name)
            else:
                appended = chain.with_appended(name)
            manager.sro.set_catching_up(group_id, True)
            self._push_chain(appended)
            gen = self._recovery_gen.get((group_id, name), 0) + 1
            self._recovery_gen[(group_id, name)] = gen
            # Let in-flight old-chain writes settle before snapshotting,
            # so the snapshot provably covers every committed write that
            # did not flow through the new member.
            self.sim.schedule(
                self.drain_delay,
                self._start_snapshot,
                group_id,
                name,
                event,
                1,
                frozenset(),
                gen,
                label="controller:snapshot-start",
            )

    def _wipe_state(self, manager) -> None:
        for state in manager.sro.groups.values():
            state.store.clear()
            slots = state.pending.slots
            state.pending._next_seq = [0] * slots
            state.pending._applied_seq = [0] * slots
            state.pending._pending = [False] * slots
            state.pending._pending_seq = [0] * slots
            state.dedup.clear()
        for state in manager.ewo.groups.values():
            state.vectors.clear()
            if state.cells is not None:
                state.cells.clear()
            if state.sets is not None:
                state.sets.clear()
            state._pending_entries.clear()

    def _is_full_member(self, group_id: int, name: str) -> bool:
        """A member that provably holds every committed write: live and
        not itself in catch-up."""
        manager = self.deployment.manager(name)
        if manager.switch.failed:
            return False
        state = manager.sro.groups.get(group_id)
        return state is not None and not state.catching_up

    def _abort_recovery(self, group_id: int, target: str, attempt: int) -> None:
        self.aborted_recoveries.append((group_id, target, self.sim.now))
        self.deployment.tracer.emit(
            self.sim.now,
            "controller",
            target,
            "recovery-abort",
            group=group_id,
            attempts=attempt,
        )

    def _start_snapshot(
        self,
        group_id: int,
        target: str,
        event: RecoveryEvent,
        attempt: int = 1,
        exclude: frozenset = frozenset(),
        gen: Optional[int] = None,
    ) -> None:
        if (
            gen is not None
            and gen != self._recovery_gen.get((group_id, target))
        ):
            # Scheduled by a recovery that has since been superseded
            # (the target was excised and readmitted in between); the
            # newer recovery scheduled its own snapshot.
            return
        chain = self.deployment.chains[group_id]
        if target not in chain or self.deployment.manager(target).switch.failed:
            # The target failed again (or was excised) mid-recovery; a
            # future recover_switch will restart the whole dance.
            return
        candidates = [
            member
            for member in chain.members
            if member != target
            and not self.deployment.manager(member).switch.failed
        ]
        if not candidates:
            # Degenerate chain: the target is the only live member.
            self._promote(group_id, target, event, gen)
            return
        usable = [member for member in candidates if member not in exclude]
        if not usable:
            usable = candidates  # everyone failed us once; try again anyway
        # Only *full* members may serve the snapshot: a replica that is
        # itself catching up can predate writes committed while it was
        # excised, and copying from it would silently launder those
        # committed writes out of the chain.
        full = [member for member in usable if self._is_full_member(group_id, member)]
        if not full:
            full = [m for m in candidates if self._is_full_member(group_id, m)]
        if not full:
            # Every live candidate is still catching up.  Defer until
            # one of their own transfers completes; abort (logged) if
            # that never happens.
            if attempt >= MAX_TRANSFER_ATTEMPTS:
                self._abort_recovery(group_id, target, attempt)
                return
            self.sim.schedule(
                self.drain_delay,
                self._start_snapshot,
                group_id,
                target,
                event,
                attempt + 1,
                exclude,
                gen,
                label="controller:snapshot-defer",
            )
            return
        # Prefer the read tail — it serves reads, so it provably holds
        # every committed value.
        source = chain.read_tail if chain.read_tail in full else full[0]
        event.transfer_attempts[group_id] = attempt
        self.deployment.failover.start_transfer(
            group_id,
            source=source,
            target=target,
            on_complete=lambda: self._promote(group_id, target, event, gen),
            on_failure=lambda transfer: self._on_transfer_failed(
                group_id, target, event, attempt, exclude, gen, transfer
            ),
        )

    def _on_transfer_failed(
        self,
        group_id: int,
        target: str,
        event: RecoveryEvent,
        attempt: int,
        exclude: frozenset,
        gen: Optional[int],
        transfer,
    ) -> None:
        """A snapshot transfer died (source failed / retry budget spent)."""
        if self.deployment.manager(target).switch.failed:
            return  # the target itself died; nothing to salvage here
        if attempt >= MAX_TRANSFER_ATTEMPTS:
            self._abort_recovery(group_id, target, attempt)
            return
        self.sim.schedule(
            self.config_latency,
            self._start_snapshot,
            group_id,
            target,
            event,
            attempt + 1,
            frozenset(exclude | {transfer.source}),
            gen,
            label="controller:snapshot-retry",
        )

    def _promote(
        self,
        group_id: int,
        target: str,
        event: RecoveryEvent,
        gen: Optional[int] = None,
    ) -> None:
        """Catch-up finished: the new member replaces the read tail."""
        if (
            gen is not None
            and gen != self._recovery_gen.get((group_id, target))
        ):
            return  # transfer belonged to a superseded recovery
        chain = self.deployment.chains[group_id]
        if target in chain and chain.read_tail != target:
            self._push_chain(chain.promoted())
        manager = self.deployment.manager(target)
        if not manager.switch.failed:
            self.sim.schedule(
                self.config_latency,
                manager.sro.set_catching_up,
                group_id,
                False,
                label="controller:end-catchup",
            )
        event.promoted_at[group_id] = self.sim.now

    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._detector.stop()
        for generator in self._hb_generators.values():
            generator.stop()

    def last_failure(self) -> Optional[FailureEvent]:
        return self.failures[-1] if self.failures else None
