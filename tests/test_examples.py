"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; these tests keep them from
rotting as the library evolves.  Each runs in a subprocess from the
repository root (several examples import the shared ``tests.nfworld``
world builder via ``sys.path``).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + at least three scenarios


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_cleanly(script: Path):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_quickstart_output_shows_convergence():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "server-A" in result.stdout
    assert "12" in result.stdout  # the converged counter
