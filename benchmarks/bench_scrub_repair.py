"""[F5] Anti-entropy scrub and online repair under compound chaos.

The scrubber's contract (PROTOCOLS.md "Anti-entropy scrubbing"): every
silent divergence — a corrupted register, a frozen replica serving
stale state, a dropped chain apply — is *detected* by digest comparison
and *healed* online within the configured bound, without restarting
anything and without perturbing the run's determinism.

Each seeded run drives a compound fault schedule against a 4-switch
deployment: random register corruptions and frozen replicas from the
seeded planner, plus a scripted ``drop_chain_applies`` on a chain
member and correlated loss bursts, all while an SRO + EWO workload
keeps committing.  Measured quantities:

* **detection latency** — injection (or thaw, for frozen replicas) to
  the scrub round that first flags the divergent replica;
* **heal time CDF** — injection/thaw to the first scrub round that
  confirms the replica digest-clean again;
* **repair bandwidth overhead** — scrub management bytes (digest and
  key queries) plus repair/forced-sync bytes, as a fraction of all
  protocol traffic;
* **zero surviving divergence** — every logged ``DivergenceEvent`` ends
  the run detected and healed inside its deadline, and the invariant
  suite (including the ``divergence_healed`` monitor) stays green;
* **determinism** — identical seeds replay byte-identically, with or
  without metrics / flight-recorder instrumentation.

Run standalone::

    python benchmarks/bench_scrub_repair.py [--quick] [--seeds 1 2 3]
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import List, Tuple

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit_json, fmt_pct, fmt_us, print_header, print_table

from repro.chaos import FaultInjector, InvariantSuite
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.obs.flightrec import FlightRecorder, NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

#: Protected from corruption/staleness: the workload writer.
WRITER = "s0"


@dataclass
class ScrubResult:
    seed: int
    duration: float
    planned_faults: List[str]
    commits: int
    events: int
    detected: int
    healed: int
    violated: int
    detect_latencies: List[float]
    heal_latencies: List[float]
    heal_bound: float
    rounds_started: int
    rounds_diverged: int
    rounds_aborted: int
    repairs_sent: int
    forced_syncs: int
    repairs_fenced: int
    scrub_mgmt_bytes: int
    scrub_repair_bytes: int
    wire_bytes: int
    overhead: float
    invariant_ok: bool
    invariant_violations: List[str]
    invariant_notes: List[str]
    digest: str = ""
    event_log: List[dict] = field(default_factory=list)


def run_scrub_repair(
    seed: int,
    duration: float = 0.12,
    switches: int = 4,
    metrics: MetricsRegistry = NULL_REGISTRY,
    flightrec: FlightRecorder = NULL_FLIGHT_RECORDER,
) -> ScrubResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    nodes = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), switches)
    dep = SwiShmemDeployment(
        sim, topo, nodes, sync_period=1e-3,
        metrics=metrics, flight_recorder=flightrec,
    )
    sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
    ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))

    injector = FaultInjector(dep, seed=seed)
    planned = injector.schedule_random(
        start=8e-3,
        horizon=max(duration - 60e-3, 10e-3),
        crashes=0, flaps=0, bursts=1, partitions=0,
        burst_duration=(2e-3, 6e-3), burst_loss=0.15,
        corruptions=3, stale_replicas=1, stale_duration=(3e-3, 6e-3),
        protect=[WRITER],
    )
    # Scripted compound fault on top of the random plan: a chain member
    # silently loses two applies mid-run (the canonical lost-chain-hop
    # divergence the scrubber must find without any detector signal).
    injector.drop_chain_applies(10e-3, "s1", sro.group_id, count=2)
    planned.append("scripted: s1 drops 2 chain applies at 10.00 ms")

    scrubber = dep.start_scrubbing()
    suite = InvariantSuite(dep).start(period=1e-3)

    counter = [0]

    def workload() -> None:
        i = counter[0]
        counter[0] += 1
        dep.manager(WRITER).register_write(sro, f"k{i % 16}", i)
        for name in dep.switch_names:
            if not dep.manager(name).switch.failed:
                dep.manager(name).register_increment(ctr, "c", 1)
        if sim.now < duration - 40e-3:
            sim.schedule(400e-6, workload)

    sim.schedule(1e-3, workload)
    sim.run(until=duration)
    report_ = suite.finalize()

    events = dep.divergence_log
    detect = [e.detected_at - e.at for e in events if e.detected]
    heal = [e.healed_at - e.at for e in events if e.healed]
    stats = scrubber.stats
    wire_bytes = topo.total_bytes_sent()
    scrub_bytes = stats.mgmt_bytes + stats.repair_bytes
    overhead = scrub_bytes / (wire_bytes + stats.mgmt_bytes) if wire_bytes else 0.0
    fenced = sum(m.scrub.repairs_fenced for m in dep.managers.values())

    history = (
        injector.log_digest(),
        tuple(suite.commit_times),
        tuple(
            (e.kind, e.group, e.switch, repr(e.key), round(e.at, 12),
             None if e.detected_at is None else round(e.detected_at, 12),
             None if e.healed_at is None else round(e.healed_at, 12),
             e.violated)
            for e in events
        ),
        tuple(tuple(sorted(store.items())) for store in dep.sro_stores(sro)),
        tuple(tuple(sorted(state.items())) for state in dep.ewo_states(ctr)),
        tuple(sorted(stats.as_dict().items())),
        sim.events_processed,
    )
    digest = hashlib.sha256(repr(history).encode("utf-8")).hexdigest()

    return ScrubResult(
        seed=seed,
        duration=duration,
        planned_faults=planned,
        commits=len(suite.commit_times),
        events=len(events),
        detected=sum(1 for e in events if e.detected),
        healed=sum(1 for e in events if e.healed),
        violated=sum(1 for e in events if e.violated),
        detect_latencies=detect,
        heal_latencies=heal,
        heal_bound=scrubber.heal_bound,
        rounds_started=stats.rounds_started,
        rounds_diverged=stats.rounds_diverged,
        rounds_aborted=stats.rounds_aborted,
        repairs_sent=stats.repairs_sent,
        forced_syncs=stats.forced_syncs,
        repairs_fenced=fenced,
        scrub_mgmt_bytes=stats.mgmt_bytes,
        scrub_repair_bytes=stats.repair_bytes,
        wire_bytes=wire_bytes,
        overhead=overhead,
        invariant_ok=report_.ok,
        invariant_violations=[str(v) for v in report_.violations],
        invariant_notes=list(report_.notes),
        digest=digest,
        event_log=[
            {
                "kind": e.kind, "group": e.group, "switch": e.switch,
                "key": repr(e.key), "at": e.at,
                "detected_at": e.detected_at, "healed_at": e.healed_at,
            }
            for e in events
        ],
    )


def run_experiment(
    seeds: Tuple[int, ...] = (1, 2, 3), duration: float = 0.12
) -> List[ScrubResult]:
    return [run_scrub_repair(seed, duration=duration) for seed in seeds]


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def report(results: List[ScrubResult]) -> None:
    print_header(
        "F5",
        "anti-entropy scrub: detect and heal silent divergence online",
        "every injected corruption / frozen replica / dropped apply is "
        "detected by digest comparison and healed within the scrub "
        "bound, at bounded bandwidth overhead, deterministically",
    )
    rows = []
    for r in results:
        detect = sorted(r.detect_latencies)
        heal = sorted(r.heal_latencies)
        rows.append(
            (
                r.seed,
                r.commits,
                f"{r.healed}/{r.events}",
                fmt_us(max(detect, default=0.0)),
                fmt_us(_percentile(heal, 0.5)),
                fmt_us(max(heal, default=0.0)),
                fmt_us(r.heal_bound),
                r.rounds_started,
                r.repairs_sent,
                r.forced_syncs,
                fmt_pct(r.overhead),
                "OK" if r.invariant_ok else f"{len(r.invariant_violations)} VIOLATIONS",
                r.digest[:12],
            )
        )
    print_table(
        ["seed", "commits", "healed", "worst detect", "p50 heal",
         "worst heal", "bound", "rounds", "repairs", "syncs",
         "overhead", "invariants", "digest"],
        rows,
    )
    all_heals = sorted(h for r in results for h in r.heal_latencies)
    if all_heals:
        print("heal-time CDF (all seeds):")
        for q in (0.25, 0.5, 0.75, 0.9, 1.0):
            print(f"  p{int(q * 100):<3d} {fmt_us(_percentile(all_heals, min(q, 0.999)))}")
        print()
    for r in results:
        for line in r.invariant_violations:
            print(f"  seed {r.seed} VIOLATION: {line}")
        for note in r.invariant_notes:
            print(f"  seed {r.seed} note: {note}")


def check_result(r: ScrubResult) -> None:
    assert r.invariant_ok, (
        f"seed {r.seed}: invariant violations: {r.invariant_violations}"
    )
    assert r.commits > 0
    assert r.events >= 4, (
        f"seed {r.seed}: only {r.events} divergence events injected"
    )
    # the core contract: zero surviving divergence
    assert r.healed == r.detected == r.events, (
        f"seed {r.seed}: {r.events} events, {r.detected} detected, "
        f"{r.healed} healed"
    )
    assert r.violated == 0, f"seed {r.seed}: {r.violated} heal-bound violations"
    assert r.repairs_sent + r.forced_syncs > 0, (
        f"seed {r.seed}: nothing was actually repaired"
    )
    # scrubbing must stay cheap relative to protocol traffic
    assert r.overhead < 0.25, (
        f"seed {r.seed}: scrub bandwidth overhead {r.overhead:.1%}"
    )


@pytest.mark.benchmark(group="experiment")
def test_scrub_repair_heals_all_divergence(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    for r in results:
        check_result(r)
    # at least one seed must exercise the SRO repair path AND the EWO
    # forced-sync path across the experiment
    assert any(r.repairs_sent > 0 for r in results)


@pytest.mark.benchmark(group="experiment")
def test_scrub_repair_deterministic(benchmark):
    first = benchmark.pedantic(
        lambda: run_scrub_repair(7, duration=0.08), rounds=1, iterations=1
    )
    second = run_scrub_repair(7, duration=0.08)
    assert first.digest == second.digest
    assert run_scrub_repair(8, duration=0.08).digest != first.digest


@pytest.mark.benchmark(group="chaos")
def test_benchmark_scrub_repair(benchmark):
    benchmark.pedantic(
        lambda: run_scrub_repair(1, duration=0.08), rounds=1, iterations=1
    )


def main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter runs (80ms simulated instead of 120ms)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3],
        help="scrub seeds (default: 1 2 3)",
    )
    args = parser.parse_args(argv)
    duration = 0.08 if args.quick else 0.12
    results = run_experiment(tuple(args.seeds), duration=duration)
    report(results)
    failures = 0
    for r in results:
        try:
            check_result(r)
        except AssertionError as exc:
            failures += 1
            print(f"FAIL: {exc}")
    # Determinism: replay the first seed with live metrics AND the
    # flight recorder enabled — instrumentation must be digest-neutral.
    registry = MetricsRegistry()
    flightrec = FlightRecorder()
    replay = run_scrub_repair(
        args.seeds[0], duration=duration, metrics=registry, flightrec=flightrec
    )
    if replay.digest != results[0].digest:
        failures += 1
        print(
            f"FAIL: seed {args.seeds[0]} instrumented replay digest "
            f"{replay.digest[:12]} != original {results[0].digest[:12]}"
        )
    else:
        print(
            f"determinism: seed {args.seeds[0]} instrumented replay digest "
            f"matches ({replay.digest[:12]}, {flightrec.recorded} spans recorded)"
        )
    # Cross-check the metrics snapshot against the replay's verdicts.
    heal_hist = registry.get(
        "histogram", "scrub.heal_latency_seconds", "scrub"
    )
    hist_count = heal_hist.count if heal_hist is not None else 0
    if hist_count != len(replay.heal_latencies):
        failures += 1
        print(
            f"FAIL: heal-latency histogram has {hist_count} samples, "
            f"replay healed {len(replay.heal_latencies)} events"
        )
    emit_json(
        "F5",
        "anti-entropy scrub: detect and heal silent divergence online",
        results,
        registry=registry,
        extra={"instrumented_seed": args.seeds[0], "duration": duration},
    )
    print("RESULT:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
