"""Tests for the streaming access profiler and the consistency advisor:
windowed counters, top-K promotion/eviction over the count-min tail,
hot-path hook integration, observer neutrality (instrumented runs are
byte-identical to uninstrumented ones), replay reproducibility of the
windowed stats, the advisor's zero-hand-label classification, and the
dashboard's access-profile panel."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.nf.firewall import FirewallNF
from repro.nf.ratelimiter import RateLimiterNF
from repro.obs import (
    AccessProfiler,
    ConsistencyAdvisor,
    MetricsRegistry,
    NULL_ACCESS_PROFILER,
    NullAccessProfiler,
    render_access_profile,
    render_dashboard,
)
from repro.obs.accessprof import DEFAULT_TOP_K, WindowedCount
from repro.workload.flows import FlowGenerator
from tests.nfworld import build_nf_world


def _spec(name: str, consistency: Consistency, group_id: int, **kwargs) -> RegisterSpec:
    spec = RegisterSpec(name, consistency, **kwargs)
    spec.group_id = group_id
    return spec


def _run_firewall(seed: int = 7, profiler: AccessProfiler = None, flows: int = 10):
    kwargs = {} if profiler is None else {"access_profiler": profiler}
    world = build_nf_world(seed=seed, **kwargs)
    world.deployment.install_nf(FirewallNF)
    generator = FlowGenerator(
        world.sim,
        world.clients,
        world.server_ips(),
        world.rng,
        flow_rate=4000,
        data_packets=4,
        inter_packet_gap=2e-3,
    )
    generator.start(duration=flows / 4000)
    world.sim.run(until=0.12)
    return world


def _digest(world) -> str:
    """Event-history digest: kernel event count, per-host injections, and
    the firewall table's replica states."""
    spec = world.deployment.spec_by_name("fw_conntrack")
    stores = tuple(
        tuple(sorted(store.items(), key=lambda kv: repr(kv[0])))
        for store in world.deployment.sro_stores(spec)
    )
    history = (
        world.sim.events_processed,
        tuple(h.sent_count for h in world.clients + world.servers),
        stores,
    )
    return hashlib.sha256(repr(history).encode("utf-8")).hexdigest()


class TestWindowedCount:
    def test_counts_within_one_window(self):
        wc = WindowedCount(window=1e-3)
        wc.add(0.1e-3)
        wc.add(0.2e-3, amount=2)
        assert wc.total == 3
        assert wc.windowed(0.5e-3) == pytest.approx(3.0)

    def test_sliding_interpolation_across_roll(self):
        wc = WindowedCount(window=1e-3)
        for _ in range(4):
            wc.add(0.5e-3)
        wc.add(1.1e-3)  # rolls: previous=4, current=1
        # 30% into the new window: 1 + 0.7 * 4
        assert wc.windowed(1.3e-3) == pytest.approx(1 + 0.7 * 4)
        assert wc.rate(1.3e-3) == pytest.approx((1 + 0.7 * 4) / 1e-3)

    def test_stale_windows_decay_to_zero(self):
        wc = WindowedCount(window=1e-3)
        wc.add(0.5e-3, amount=9)
        # one full window later the count only lingers via interpolation
        assert wc.windowed(1.0e-3) == pytest.approx(9.0)
        # two windows later it is gone, but the lifetime total remains
        assert wc.windowed(2.5e-3) == 0.0
        assert wc.total == 9

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            WindowedCount(window=0.0)


class TestTopKPromotion:
    def test_first_k_keys_are_exact(self):
        prof = AccessProfiler(top_k=2)
        group = prof.describe_group(_spec("g", Consistency.EWO, 1))
        prof.on_write(1, "a", "s0", 1e-3)
        prof.on_write(1, "b", "s0", 2e-3)
        assert set(group.keys) == {"a", "b"}
        assert group.promotions == 2 and group.evictions == 0

    def test_tail_key_promotes_past_weakest(self):
        prof = AccessProfiler(top_k=2)
        group = prof.describe_group(_spec("g", Consistency.EWO, 1))
        prof.on_write(1, "a", "s0", 1e-3)
        for _ in range(3):
            prof.on_write(1, "b", "s0", 2e-3)
        # "c" lands in the sketch tail until its estimate beats the
        # weakest exact resident ("a", 1 access)
        prof.on_write(1, "c", "s0", 3e-3)
        assert "c" not in group.keys
        prof.on_write(1, "c", "s0", 4e-3)
        assert "c" in group.keys and "a" not in group.keys
        assert group.evictions == 1
        # the promoted record carries its tail estimate forward
        assert group.keys["c"].prior >= 2
        # group-level totals were never lossy
        assert group.writes == 6

    def test_hot_key_ranking_is_deterministic(self):
        prof = AccessProfiler(top_k=4)
        prof.describe_group(_spec("g", Consistency.EWO, 1))
        for count, key in ((5, "x"), (3, "y"), (1, "z")):
            for _ in range(count):
                prof.on_write(1, key, "s0", 1e-3)
        ranked = prof.hot_keys(limit=3)
        assert [k["key"] for k in ranked] == ["'x'", "'y'", "'z'"]

    def test_default_top_k_is_bounded(self):
        prof = AccessProfiler()
        group = prof.describe_group(_spec("g", Consistency.EWO, 1))
        for i in range(4 * DEFAULT_TOP_K):
            prof.on_write(1, f"k{i}", "s0", 1e-3)
        assert len(group.keys) <= DEFAULT_TOP_K
        assert group.writes == 4 * DEFAULT_TOP_K


class TestHookIntegration:
    def test_firewall_world_is_profiled(self):
        prof = AccessProfiler()
        world = _run_firewall(profiler=prof)
        group = prof.group("fw_conntrack")
        assert group.nf == "firewall"
        assert group.declared == "sro"
        assert group.reads > group.writes > 0
        # connection writes originate in the packet path, on >= 2 switches
        assert group.writes_dataplane == group.writes
        assert group.ops == {"overwrite": group.writes}
        assert group.sharing_nodes >= 2
        # chain replication applied updates at non-initiating members
        assert group.applies > 0
        assert group.keys  # per-flow records were tracked

    def test_snapshot_is_json_ready_and_sorted(self):
        prof = AccessProfiler()
        _run_firewall(profiler=prof)
        snap = prof.snapshot()
        assert [g["group"] for g in snap["groups"]] == sorted(
            g["group"] for g in snap["groups"]
        )
        json.dumps(snap)  # must not raise

    def test_control_plane_writes_are_attributed(self, make_deployment):
        prof = AccessProfiler()
        dep, _, _ = make_deployment(3, access_profiler=prof)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=16))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=5e-3)
        group = prof.group("reg")
        assert group.writes_control == group.writes == 1
        assert group.writes_dataplane == 0

    def test_ewo_merges_are_counted(self, make_deployment):
        prof = AccessProfiler()
        dep, _, _ = make_deployment(3, access_profiler=prof)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.manager("s0").register_increment(spec, "k", 1)
        dep.manager("s1").register_increment(spec, "k", 1)
        dep.sim.run(until=10e-3)
        group = prof.group("ctr")
        assert group.ops.get("increment") == 2
        assert group.commutative_write_fraction == 1.0
        assert group.merges_applied > 0


class TestObserverNeutrality:
    def test_instrumented_run_is_byte_identical(self):
        baseline = _digest(_run_firewall())
        prof = AccessProfiler()
        instrumented = _digest(_run_firewall(profiler=prof))
        assert prof.events > 0
        assert instrumented == baseline

    def test_windowed_stats_reproduce_across_replays(self):
        def snapshot():
            prof = AccessProfiler()
            world = _run_firewall(profiler=prof)
            return _digest(world), json.dumps(prof.snapshot(), sort_keys=True)

        first_digest, first_snap = snapshot()
        second_digest, second_snap = snapshot()
        assert first_digest == second_digest
        assert first_snap == second_snap

    def test_different_seed_changes_the_profile(self):
        prof_a, prof_b = AccessProfiler(), AccessProfiler()
        _run_firewall(seed=7, profiler=prof_a)
        _run_firewall(seed=8, profiler=prof_b)
        assert json.dumps(prof_a.snapshot(), sort_keys=True) != json.dumps(
            prof_b.snapshot(), sort_keys=True
        )


class TestNullProfiler:
    def test_null_profiler_is_disabled_and_inert(self):
        assert not NULL_ACCESS_PROFILER.enabled
        assert NULL_ACCESS_PROFILER.describe_group(
            _spec("g", Consistency.SRO, 1)
        ) is None
        NULL_ACCESS_PROFILER.on_write(1, "k", "s0", 1e-3)
        NULL_ACCESS_PROFILER.on_read(1, "k", "s0", 1e-3)
        assert NULL_ACCESS_PROFILER.groups == {}
        assert NULL_ACCESS_PROFILER.snapshot()["groups"] == []

    def test_deployment_defaults_to_null(self, make_deployment):
        dep, _, _ = make_deployment(3)
        assert isinstance(dep.access_profiler, NullAccessProfiler)


class TestAdvisor:
    """Synthetic profiles exercise each branch of the decision ladder."""

    def _profiler(self):
        prof = AccessProfiler()
        prof.describe_group(_spec("meter", Consistency.EWO, 1, ewo_mode=EwoMode.COUNTER))
        prof.describe_group(_spec("flows", Consistency.SRO, 2))
        prof.describe_group(_spec("rules", Consistency.ERO, 3))
        prof.describe_group(_spec("idle", Consistency.SRO, 4))
        return prof

    def test_decision_ladder(self):
        prof = self._profiler()
        packets = 100
        for i in range(packets):
            now = i * 1e-5
            # meter: commutative write on every packet
            prof.on_write(1, "src", "s0", now, op="increment")
            # flows: read every packet, data-plane write per ~10 packets
            prof.on_read(2, f"f{i % 4}", "s0", now)
            if i % 10 == 0:
                prof.on_write(2, f"f{i % 4}", "s1", now)
            # rules: read every packet, one control-plane write total
            prof.on_read(3, "sig", "s0", now)
        prof.on_write(3, "sig", "s0", 1e-3, origin="control")

        advisor = ConsistencyAdvisor(prof, packets=packets)
        advice = {a.name: a for a in advisor.advise()}
        assert advice["meter"].pattern == "write-per-packet"
        assert advice["meter"].recommended == "ewo"
        assert advice["flows"].pattern == "read-heavy"
        assert advice["flows"].recommended == "sro"
        assert advice["flows"].write_freq == "New connection"
        assert advice["rules"].pattern == "single-writer"
        assert advice["rules"].recommended == "ero"
        assert advice["rules"].write_freq == "Low"
        assert advice["idle"].pattern == "idle"
        assert advice["idle"].confidence == "low"
        assert advice["idle"].recommended == "sro"  # keeps the declaration
        # everything agreed with its declaration: no mismatches
        assert advisor.mismatches() == []

    def test_mergeable_low_rate_writes_go_to_ewo(self):
        prof = AccessProfiler()
        prof.describe_group(_spec("sets", Consistency.EWO, 1, ewo_mode=EwoMode.ORSET))
        for i in range(3):
            prof.on_write(1, "members", "s0", i * 1e-3, op="set_add")
        advice = ConsistencyAdvisor(prof, packets=1000).advice_for("sets")
        assert advice.pattern == "mergeable"
        assert advice.recommended == "ewo" and not advice.mismatch

    def test_misdeclared_group_is_flagged_high_confidence(self):
        prof = AccessProfiler()
        prof.describe_group(_spec("meter", Consistency.SRO, 1))
        for i in range(50):
            prof.on_write(1, "src", "s0", i * 1e-5)
        advisor = ConsistencyAdvisor(prof, packets=50)
        (mismatch,) = advisor.mismatches()
        assert mismatch.name == "meter"
        assert mismatch.declared == "sro" and mismatch.recommended == "ewo"
        assert mismatch.confidence == "high"

    def test_low_confidence_is_excluded_from_mismatch_report(self):
        prof = AccessProfiler()
        prof.describe_group(_spec("ghost", Consistency.EWO, 1))
        prof.on_read(1, "k", "s0", 1e-3)  # read-only: advice is a guess
        advisor = ConsistencyAdvisor(prof, packets=100)
        advice = advisor.advice_for("ghost")
        assert advice.mismatch and advice.confidence == "low"
        assert advisor.mismatches() == []

    def test_rejects_negative_packets(self):
        with pytest.raises(ValueError):
            ConsistencyAdvisor(AccessProfiler(), packets=-1)

    def test_report_and_dashboard_render(self):
        prof = AccessProfiler()
        world = build_nf_world(
            seed=11, responder_servers=False, access_profiler=prof
        )
        world.deployment.install_nf(
            RateLimiterNF, limit_bps=1e9, window=20e-3
        )
        generator = FlowGenerator(
            world.sim, world.clients, world.server_ips(), world.rng,
            flow_rate=4000, data_packets=4, inter_packet_gap=100e-6,
        )
        generator.start(duration=10 / 4000)
        world.sim.run(until=0.12)
        packets = sum(h.sent_count for h in world.clients + world.servers)
        report = ConsistencyAdvisor(prof, packets=packets).report(hot_keys=4)
        assert report["packets"] == packets
        assert len(report["hot_keys"]) <= 4

        text = render_access_profile(report)
        assert "rl_usage" in text and "EWO" in text

        registry = MetricsRegistry()
        registry.counter("switch.rx_packets", "s0").inc(packets)
        combined = render_dashboard(
            snapshot=registry.snapshot(), access_report=report
        )
        assert "switch.rx_packets" in combined
        assert "-- access profile --" in combined
        assert "rl_usage" in combined
