"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import Process, SimulationError, Simulator, format_time


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock advanced to the window edge
        sim.run(until=10.0)
        assert fired == [1, 5]

    def test_run_until_advances_clock_even_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_non_finite_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.schedule_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(1.0, lambda: seen.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == ["second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()  # must not raise

    def test_pending_ignores_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending() == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0


class TestStopAndStep:
    def test_stop_halts_processing(self):
        sim = Simulator()
        fired = []

        def stopper():
            fired.append("a")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_step_runs_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestProcess:
    def test_periodic_ticks(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, lambda: ticks.append(sim.now)).start()
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_after_overrides_first_delay(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, lambda: ticks.append(sim.now), start_after=0.25).start()
        sim.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        process = Process(sim, 1.0, lambda: None).start()
        sim.run(until=2.5)
        process.stop()
        before = process.ticks
        sim.run(until=10.0)
        assert process.ticks == before
        assert not process.alive

    def test_body_can_stop_itself(self):
        sim = Simulator()
        holder = {}

        def body():
            if holder["p"].ticks >= 3:
                holder["p"].stop()

        holder["p"] = Process(sim, 1.0, body).start()
        sim.run(until=100.0)
        assert holder["p"].ticks == 3

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Process(sim, 0.0, lambda: None)

    def test_jitter_applied(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, lambda: ticks.append(sim.now), jitter=lambda: 0.5).start()
        sim.run(until=4.0)
        # first at 1.0 (start_after default = period), then +1.5 each
        assert ticks == pytest.approx([1.0, 2.5, 4.0])

    def test_double_start_is_noop(self):
        sim = Simulator()
        process = Process(sim, 1.0, lambda: None).start()
        assert process.start() is process
        sim.run(until=1.5)
        assert process.ticks == 1


def test_format_time():
    assert format_time(1e-6) == "1.000us"
    assert "," in format_time(1.0)  # thousands separator for big values


def test_determinism_same_schedule_same_order():
    def run_once():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.schedule((i * 7919 % 13) / 10.0, order.append, i)
        sim.run()
        return order

    assert run_once() == run_once()
