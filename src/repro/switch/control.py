"""The switch control plane.

PISA switches pair the data-plane pipeline with a general-purpose CPU
running the control plane.  The paper's SRO protocol leans on it for
exactly three things (sections 6.1 and 7):

* **Buffering** output packets in DRAM until their writes commit
  ("ample DRAM capacity");
* **Retrying** write requests when a timely response is not received
  (the data plane cannot run timers or keep retransmission state);
* **Table updates**, since P4 tables are control-plane-writable only.

The crucial property this model preserves is the *throughput gap*: every
control-plane operation costs ``op_latency`` seconds of CPU time, and
operations are serialized on the CPU.  That is why SRO write throughput
is "limited by the need to send packets through the control plane"
(section 6.1) and why EWO cannot delegate reliability to it
(section 6.2) — both results fall out of this model in the benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet
    from repro.switch.pisa import PisaSwitch

__all__ = ["ControlPlaneAgent", "BufferedPacket"]

#: Default control-plane processing latency per operation.  Chosen to sit
#: orders of magnitude above the data-plane per-packet cost, matching the
#: relative gap the paper reasons about (a pipeline forwards a packet in
#: well under a microsecond; a control-plane round trip costs tens of
#: microseconds even on a good day).
DEFAULT_OP_LATENCY = 20e-6


class BufferedPacket:
    """An output packet parked in control-plane DRAM awaiting its write ack."""

    __slots__ = ("packet", "dst_node", "buffered_at", "token")

    def __init__(self, packet: "Packet", dst_node: str, buffered_at: float, token: Any) -> None:
        self.packet = packet
        self.dst_node = dst_node
        self.buffered_at = buffered_at
        self.token = token


class ControlPlaneAgent:
    """A serialized CPU with DRAM buffering and timers.

    Work is submitted with :meth:`submit`; each item occupies the CPU for
    ``op_latency`` seconds and items are executed FIFO.  ``cpu_time_used``
    and ``ops_executed`` feed the SRO cost accounting in the benchmarks.
    """

    def __init__(
        self,
        switch: "PisaSwitch",
        op_latency: float = DEFAULT_OP_LATENCY,
    ) -> None:
        if op_latency < 0:
            raise ValueError("control-plane op latency cannot be negative")
        self.switch = switch
        self.sim: Simulator = switch.sim
        self.op_latency = op_latency
        self.ops_executed = 0
        self.cpu_time_used = 0.0
        self._cpu_free_at = 0.0
        #: Packets buffered while their SRO writes are in flight,
        #: keyed by an opaque token chosen by the protocol.
        self._buffer: Dict[Any, BufferedPacket] = {}
        self.max_buffered = 0

    # ------------------------------------------------------------------
    # CPU model
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., None], *args: Any, label: str = "cpu-op") -> Event:
        """Run ``fn(*args)`` on the control CPU, FIFO, after ``op_latency``.

        The completion time accounts for queueing: if the CPU is busy,
        the op waits its turn.
        """
        if self.switch.failed:
            # A dead switch's CPU does nothing; return an inert event.
            dead = Event(self.sim.now, lambda: None, (), label="dead-cpu")
            dead.cancel()
            return dead
        start = max(self.sim.now, self._cpu_free_at)
        finish = start + self.op_latency
        self._cpu_free_at = finish
        self.cpu_time_used += self.op_latency

        def run() -> None:
            if self.switch.failed:
                return
            self.ops_executed += 1
            fn(*args)

        return self.sim.schedule_at(finish, run, label=f"{self.switch.name}:{label}")

    def set_timer(self, delay: float, fn: Callable[..., None], *args: Any, label: str = "timer") -> Event:
        """Arm a timer; fires on the control plane after ``delay`` seconds.

        Unlike :meth:`submit`, the timer's delay starts now (timers wait
        in parallel); only the handler execution occupies the CPU.
        """
        def fire() -> None:
            self.submit(fn, *args, label=label)

        return self.sim.schedule(delay, fire, label=f"{self.switch.name}:{label}")

    # ------------------------------------------------------------------
    # DRAM packet buffer (SRO write path)
    # ------------------------------------------------------------------
    def buffer_packet(self, token: Any, packet: "Packet", dst_node: str) -> None:
        """Park an output packet until :meth:`release_packet` is called."""
        self._buffer[token] = BufferedPacket(packet, dst_node, self.sim.now, token)
        self.max_buffered = max(self.max_buffered, len(self._buffer))

    def release_packet(self, token: Any) -> Optional[float]:
        """Re-inject the buffered packet into the data plane.

        Returns the buffering duration (for latency accounting), or None
        if no packet was buffered under ``token`` (e.g. duplicate ack).
        """
        entry = self._buffer.pop(token, None)
        if entry is None:
            return None
        held_for = self.sim.now - entry.buffered_at
        # "the packet is injected back to the data plane and forwarded to
        # its destination" (paper section 7)
        self.switch.inject_from_cpu(entry.packet, entry.dst_node)
        return held_for

    def peek_buffered(self, token: Any) -> Optional["Packet"]:
        """The buffered packet for ``token``, without releasing it."""
        entry = self._buffer.get(token)
        return entry.packet if entry is not None else None

    def drop_buffered(self, token: Any) -> bool:
        """Discard a buffered packet (write permanently failed)."""
        return self._buffer.pop(token, None) is not None

    @property
    def buffered_count(self) -> int:
        return len(self._buffer)

    def buffered_tokens(self) -> List[Any]:
        return list(self._buffer)
