"""Tests for the paper's section 2 atomicity property.

"Switches process packets atomically: if a packet generates multiple
local writes to different locations, these updates are atomic in the
sense that the next processed packet will not see an intermediate view
on the state."

The EWO protocol's correctness leans on this (atomic version+value
updates, section 7); these tests pin the property down at the switch
level and through the register API.
"""

from __future__ import annotations

import pytest

from repro.core.manager import Decision
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.nf.base import NetworkFunction


class PairWriterNF(NetworkFunction):
    """Writes the same generation number into two registers per packet,
    then checks it read a consistent pair — across *all* packets ever
    processed on this switch, the two registers must never be torn."""

    @classmethod
    def build_specs(cls, **kwargs):
        return [
            RegisterSpec("left", Consistency.EWO, ewo_mode=EwoMode.LWW, capacity=16),
            RegisterSpec("right", Consistency.EWO, ewo_mode=EwoMode.LWW, capacity=16),
        ]

    def __init__(self, manager, handles, **kwargs):
        super().__init__(manager, handles)
        self.generation = 0
        self.torn_observations = 0

    def process(self, ctx):
        left, right = self.handles["left"], self.handles["right"]
        # First: observe.  A torn pair means another packet's multi-
        # location write was visible half-applied — forbidden.
        seen_left = left.read("cell", -1)
        seen_right = right.read("cell", -1)
        if seen_left != seen_right:
            self.torn_observations += 1
        # Then: write both locations "atomically" (one pipeline pass).
        self.generation += 1
        left.write("cell", self.generation)
        right.write("cell", self.generation)
        return Decision.forward()


def build_single_switch_world(sim_seed=5):
    from repro.core.manager import SwiShmemDeployment
    from repro.net.topology import Topology, build_full_mesh
    from repro.sim.engine import Simulator
    from repro.sim.random import SeededRng
    from repro.switch.pisa import PisaSwitch

    sim = Simulator()
    topo = Topology(sim, SeededRng(sim_seed))
    book = AddressBook()
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 1)
    src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
    topo.connect("src", "s0")
    topo.connect("dst", "s0")
    deployment = SwiShmemDeployment(sim, topo, switches, address_book=book)
    return sim, deployment, src, dst


class TestAtomicPacketProcessing:
    def test_multi_register_writes_never_torn_on_one_switch(self):
        sim, deployment, src, dst = build_single_switch_world()
        instances = deployment.install_nf(PairWriterNF)
        for i in range(200):
            sim.schedule(
                i * 3e-6,  # back-to-back packets
                lambda: src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)),
            )
        sim.run(until=0.01)
        nf = instances[0]
        assert nf.generation == 200  # every packet processed
        assert nf.torn_observations == 0

    def test_ewo_version_value_pair_atomic(self):
        """Section 7: 'the replication protocol can update both the
        version number and the value atomically.'  A reader between two
        increments must see a consistent (slot value, sum) view."""
        sim, deployment, src, dst = build_single_switch_world()
        spec = deployment.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=4)
        )
        manager = deployment.manager("s0")
        state = manager.ewo.groups[spec.group_id]
        for i in range(50):
            value = manager.register_increment(spec, "k", 1)
            # the returned sum equals the vector's sum at this instant —
            # no event can interleave inside the increment
            assert value == sum(state.vector_for("k"))
        assert manager.register_read(spec, "k", 0) == 50

    def test_interleaved_packets_see_full_write_sets(self):
        """Two alternating traffic sources through one switch: every
        observation remains pair-consistent regardless of arrival order."""
        sim, deployment, src, dst = build_single_switch_world()
        book = deployment.address_book
        from repro.net.endhost import EndHost

        src2 = deployment.topo.add_node(EndHost("src2", sim, "10.0.0.3", book))
        deployment.topo.connect("src2", "s0")
        deployment.routing.recompute()
        instances = deployment.install_nf(PairWriterNF)
        for i in range(100):
            source = src if i % 2 == 0 else src2
            sim.schedule(
                i * 1e-6,
                lambda s=source: s.inject(
                    make_udp_packet(s.ip, "10.0.0.2", 1, 2)
                ),
            )
        sim.run(until=0.01)
        assert instances[0].torn_observations == 0
