"""Tests for the chaos harness: fault injection, nemesis interference,
heartbeat-detection edge cases, snapshot-transfer robustness, and the
continuous invariant monitors (paper section 6.3 under an adversarial
fault model)."""

from __future__ import annotations

import pytest

from repro.chaos import FaultInjector, InvariantSuite, Nemesis
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.protocols.controller import MAX_TRANSFER_ATTEMPTS
from repro.protocols.messages import ChainUpdate, SnapshotAck, SnapshotWrite, WriteToken


def fail_and_note(deployment, name):
    deployment.controller.note_failure_time(name)
    deployment.fail_switch(name)


class TestFaultInjector:
    def test_crash_recover_cycle(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        injector = FaultInjector(dep, seed=7)
        injector.crash_recover(2e-3, "s1", down_for=10e-3)
        dep.sim.run(until=0.05)
        kinds = [record.kind for record in injector.log]
        assert kinds == ["crash", "recover"]
        assert not dep.manager("s1").switch.failed
        assert dep.controller.failures and dep.controller.recoveries
        # the injected failure time was noted, so latency is measurable
        assert dep.controller.failures[0].detection_latency >= 0

    def test_crashing_a_dead_switch_is_a_noop(self, make_deployment):
        dep, _, _ = make_deployment(3)
        injector = FaultInjector(dep, seed=7)
        injector.crash(1e-3, "s1")
        injector.crash(2e-3, "s1")
        dep.sim.run(until=0.01)
        assert [r.kind for r in injector.log] == ["crash"]

    def test_loss_burst_restores_rates(self, make_deployment):
        dep, topo, _ = make_deployment(3)
        injector = FaultInjector(dep, seed=7)
        injector.loss_burst(1e-3, duration=2e-3, loss_rate=0.5)
        rates_mid = []
        dep.sim.schedule_at(
            2e-3, lambda: rates_mid.extend(l.ab.loss_rate for l in topo.links)
        )
        dep.sim.run(until=0.01)
        assert all(rate == 0.5 for rate in rates_mid)
        assert all(l.ab.loss_rate == 0.0 and l.ba.loss_rate == 0.0 for l in topo.links)
        assert [r.kind for r in injector.log] == ["loss-burst", "loss-burst-end"]

    def test_loss_burst_rejects_bad_rate(self, make_deployment):
        dep, _, _ = make_deployment(2)
        injector = FaultInjector(dep, seed=7)
        with pytest.raises(ValueError):
            injector.loss_burst(0.0, duration=1e-3, loss_rate=1.5)

    def test_partition_downs_crossing_links_then_heals(self, make_deployment):
        dep, topo, _ = make_deployment(3)
        injector = FaultInjector(dep, seed=7)
        injector.partition(1e-3, duration=5e-3, side_a=["s0"])
        down_mid = []
        dep.sim.schedule_at(
            3e-3, lambda: down_mid.extend(l for l in topo.links if not l.up)
        )
        dep.sim.run(until=0.02)
        # mid-partition: exactly the two links touching s0 were down
        assert sorted({l.a.name for l in down_mid} | {l.b.name for l in down_mid}) == [
            "s0", "s1", "s2",
        ]
        assert len(down_mid) == 2
        assert all(l.up for l in topo.links)

    def test_partition_rejects_overlapping_sides(self, make_deployment):
        dep, _, _ = make_deployment(3)
        injector = FaultInjector(dep, seed=7)
        with pytest.raises(ValueError):
            injector.partition(0.0, duration=1e-3, side_a=["s0"], side_b=["s0", "s1"])

    def test_schedule_random_is_seed_deterministic(self, make_deployment):
        dep, _, _ = make_deployment(4)
        plan_a = FaultInjector(dep, seed=42).schedule_random(1e-3, 50e-3)
        plan_b = FaultInjector(dep, seed=42).schedule_random(1e-3, 50e-3)
        plan_c = FaultInjector(dep, seed=43).schedule_random(1e-3, 50e-3)
        assert plan_a == plan_b
        assert plan_a != plan_c

    def test_schedule_random_protects_named_switches(self, make_deployment):
        dep, _, _ = make_deployment(3)
        injector = FaultInjector(dep, seed=5)
        plans = injector.schedule_random(
            1e-3, 50e-3, crashes=5, flaps=0, bursts=0, partitions=0,
            protect=["s0"],
        )
        assert all("crash s0 " not in plan for plan in plans)


class TestNemesis:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            Nemesis(seed=1, duplicate_prob=1.5)
        with pytest.raises(ValueError):
            Nemesis(seed=1, delay_prob=-0.1)
        with pytest.raises(ValueError):
            Nemesis(seed=1, max_delay=-1e-6)

    def test_counts_duplicates_and_delays(self, make_deployment):
        dep, topo, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        nemesis = Nemesis(seed=9, duplicate_prob=1.0, delay_prob=1.0).install(topo)
        for i in range(5):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.1)
        assert nemesis.packets_inspected > 0
        assert nemesis.packets_duplicated == nemesis.packets_inspected
        assert nemesis.packets_delayed == nemesis.packets_inspected
        # protocol safety under 100% duplication + delay: all commits land
        for store in dep.sro_stores(spec):
            assert all(store.get(f"k{i}") == i for i in range(5))

    def test_disabled_nemesis_touches_nothing(self, make_deployment):
        dep, topo, _ = make_deployment(2)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        nemesis = Nemesis(seed=9, duplicate_prob=1.0).install(topo)
        nemesis.enabled = False
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.05)
        assert nemesis.packets_inspected == 0
        assert nemesis.counters()["packets_duplicated"] == 0

    def test_uninstall_detaches_all_channels(self, make_deployment):
        dep, topo, _ = make_deployment(3)
        nemesis = Nemesis(seed=9).install(topo)
        nemesis.uninstall(topo)
        assert all(l.ab.nemesis is None and l.ba.nemesis is None for l in topo.links)

    def test_same_seed_same_interference(self, make_deployment):
        """The nemesis is a pure function of its seed: identical runs
        produce identical interference counters."""
        counters = []
        for _ in range(2):
            from repro.core.manager import SwiShmemDeployment
            from repro.net.topology import Topology, build_full_mesh
            from repro.sim.engine import Simulator
            from repro.sim.random import SeededRng
            from repro.switch.pisa import PisaSwitch

            sim = Simulator()
            topo = Topology(sim, SeededRng(1))
            switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
            dep = SwiShmemDeployment(sim, topo, switches)
            spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
            nemesis = Nemesis(seed=77, duplicate_prob=0.4, delay_prob=0.4).install(topo)
            for i in range(20):
                sim.schedule(
                    i * 100e-6,
                    lambda i=i: dep.manager("s0").register_write(spec, f"k{i}", i),
                )
            sim.run(until=0.05)
            counters.append(nemesis.counters())
        assert counters[0] == counters[1]


class TestHeartbeatChaos:
    def test_partition_causes_false_positive_then_readmission(self, make_deployment):
        """A fully partitioned-but-alive switch is suspected (split
        brain); when its beacons resume it is counted as a false
        positive and re-admitted through catch-up."""
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        injector = FaultInjector(dep, seed=3)
        injector.partition(2e-3, duration=3e-3, side_a=["s2"])
        dep.sim.run(until=4e-3)
        suspected = [e for e in dep.controller.failures if e.switch == "s2"]
        assert suspected and suspected[0].false_positive
        assert "s2" not in dep.chains[spec.group_id]
        dep.sim.run(until=0.05)
        assert dep.controller.false_positives >= 1
        readmissions = [r for r in dep.controller.recoveries if r.readmission]
        assert readmissions and readmissions[0].switch == "s2"
        # fully back: in the chain, caught up, holding the data
        assert "s2" in dep.chains[spec.group_id]
        assert dep.manager("s2").sro.groups[spec.group_id].catching_up is False
        assert dep.manager("s2").sro.groups[spec.group_id].store.get("k") == 1

    def test_host_switch_crash_rehomes_controller(self, make_deployment):
        dep, _, _ = make_deployment(3)
        assert dep.controller.host == "s0"
        fail_and_note(dep, "s0")
        dep.sim.run(until=0.01)
        assert dep.controller.host != "s0"
        assert dep.controller.rehomes >= 1
        detected = {e.switch for e in dep.controller.failures}
        assert "s0" in detected
        # the detector still works from its new home
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.02)
        assert "s1" in {e.switch for e in dep.controller.failures}

    def test_heartbeats_flow_and_detection_is_quiet_without_faults(
        self, make_deployment
    ):
        dep, _, _ = make_deployment(3)
        dep.sim.run(until=0.02)
        assert dep.controller.heartbeats_received > 0
        assert dep.controller.failures == []
        assert dep.controller.false_positives == 0

    def test_stale_epoch_chain_update_is_fenced(self, make_deployment):
        """An update sequenced under a replaced configuration must be
        rejected by members holding the newer one."""
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        old_members = tuple(dep.chains[spec.group_id].members)
        fail_and_note(dep, "s1")  # bumps the chain version
        dep.sim.run(until=0.02)
        state = dep.manager("s2").sro.groups[spec.group_id]
        stale = ChainUpdate(
            group=spec.group_id,
            key="k",
            value=999,
            seq=state.pending.applied_seq(state.pending.slot_of("k")) + 1,
            slot=state.pending.slot_of("k"),
            token=WriteToken.fresh("s0"),
            chain=old_members,
            epoch=0,  # pre-repair configuration
        )
        before = state.stats.fenced_updates
        dep.manager("s2").sro._process_chain_update(stale)
        assert state.stats.fenced_updates == before + 1
        assert state.store.get("k") == 1  # untouched


class TestSnapshotTransferRobustness:
    def test_transfer_completes_under_loss(self, make_deployment):
        dep, _, _ = make_deployment(3, loss_rate=0.15)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(20):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.1)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.12)
        dep.controller.recover_switch("s1")
        dep.sim.run(until=1.0)
        transfer = dep.failover.transfer_for(spec.group_id, "s1")
        assert transfer is not None and transfer.done
        assert transfer.rounds > 1  # loss forced retransmission rounds
        store = dep.manager("s1").sro.groups[spec.group_id].store
        assert all(store.get(f"k{i}") == i for i in range(20))

    def test_duplicated_snapshot_write_is_idempotent(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        target = dep.manager("s2")
        state = target.sro.groups[spec.group_id]
        slot = state.pending.slot_of("k")
        message = SnapshotWrite(
            group=spec.group_id, key="k", value=5, seq=3, slot=slot,
            source="s0", transfer_id=7,
        )
        dep.failover.handle_snapshot_write(target, message)
        dep.failover.handle_snapshot_write(target, message)  # duplicate
        assert state.store.get("k") == 5
        assert state.pending.applied_seq(slot) == 3
        # a *stale* duplicate must not roll the value back either
        stale = SnapshotWrite(
            group=spec.group_id, key="k", value=1, seq=2, slot=slot,
            source="s0", transfer_id=7,
        )
        dep.failover.handle_snapshot_write(target, stale)
        assert state.store.get("k") == 5
        assert state.pending.applied_seq(slot) == 3

    def test_stale_transfer_id_ack_is_dropped(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        transfer = dep.failover.start_transfer(spec.group_id, source="s0", target="s2")
        dep.failover._take_snapshot(transfer)  # populate entries synchronously
        assert "k" in transfer.unacked
        stale_ack = SnapshotAck(
            group=spec.group_id, key="k", seq=1, source="s2",
            transfer_id=transfer.transfer_id + 100,
        )
        dep.failover.handle_snapshot_ack(dep.manager("s0"), stale_ack)
        assert "k" in transfer.unacked  # ignored
        good_ack = SnapshotAck(
            group=spec.group_id, key="k", seq=1, source="s2",
            transfer_id=transfer.transfer_id,
        )
        dep.failover.handle_snapshot_ack(dep.manager("s0"), good_ack)
        assert "k" not in transfer.unacked

    def test_transfer_retries_from_another_member_when_source_dies(
        self, make_deployment
    ):
        dep, _, _ = make_deployment(4)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(10):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.06)
        event = dep.controller.recover_switch("s1")
        # the snapshot starts after drain_delay; kill the chosen source
        # in the window between scheduling and the snapshot control op
        source_holder = []

        def kill_source():
            transfer = dep.failover.transfer_for(spec.group_id, "s1")
            assert transfer is not None
            source_holder.append(transfer.source)
            fail_and_note(dep, transfer.source)

        dep.sim.schedule(dep.controller.drain_delay + 10e-6, kill_source)
        dep.sim.run(until=1.0)
        assert dep.failover.transfers_failed >= 1
        assert event.transfer_attempts[spec.group_id] >= 2
        final = dep.failover.transfer_for(spec.group_id, "s1")
        assert final.done and final.source != source_holder[0]
        assert event.sro_recovery_time(spec.group_id) is not None
        store = dep.manager("s1").sro.groups[spec.group_id].store
        assert all(store.get(f"k{i}") == i for i in range(10))

    def test_recovery_aborts_after_bounded_retries(self, make_deployment):
        """If every transfer attempt fails, the controller gives up
        loudly instead of stranding the target in catch-up forever."""
        dep, _, _ = make_deployment(3, detection="oracle")
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=0.01)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.02)
        dep.controller.recover_switch("s1")
        # isolate the recovering target: every snapshot round times out
        # (oracle detection, so the alive-but-unreachable target is not
        # re-declared failed)
        injector = FaultInjector(dep, seed=1)
        injector.partition(0.021, duration=1.0, side_a=["s1"])
        dep.sim.run(until=0.6)
        assert len(dep.controller.aborted_recoveries) == 1
        group_id, target, _at = dep.controller.aborted_recoveries[0]
        assert (group_id, target) == (spec.group_id, "s1")
        assert dep.failover.transfers_failed == MAX_TRANSFER_ATTEMPTS
        # target is visibly stranded (catch-up), not silently promoted
        assert dep.manager("s1").sro.groups[spec.group_id].catching_up is True

    def test_catching_up_member_never_serves_snapshots(self, make_deployment):
        """Regression: with two members in catch-up at once, a snapshot
        sourced from the *other* catching-up replica would launder any
        writes committed while both were excised out of the chain."""
        dep, _, _ = make_deployment(4)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(8):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s1")
        fail_and_note(dep, "s2")
        dep.sim.run(until=0.06)
        # recover both in the same drain window, so both snapshots fire
        # while the *other* recoverer is still catching up; the chain
        # tail is then a catching-up member — exactly the spot the old
        # read-tail preference picked a source from
        dep.controller.recover_switch("s1")
        dep.sim.run(until=0.0601)
        dep.controller.recover_switch("s2")
        # commit more writes while both are catching up
        for i in range(8, 12):
            dep.sim.schedule(3e-3, dep.manager("s0").register_write, spec, f"k{i}", i)
        dep.sim.run(until=1.0)
        for target in ("s1", "s2"):
            transfer = dep.failover.transfer_for(spec.group_id, target)
            assert transfer is not None and transfer.done
            assert transfer.source in ("s0", "s3")  # never the other recoverer
            state = dep.manager(target).sro.groups[spec.group_id]
            assert not state.catching_up
            assert all(state.store.get(f"k{i}") == i for i in range(12))

    def test_superseded_recovery_snapshot_event_is_ignored(self, make_deployment):
        """Regression: a snapshot-start scheduled by recovery N must not
        fire after the member was excised and readmitted (recovery N+1)
        — the stale event used to promote the member prematurely."""
        dep, topo, _ = make_deployment(4)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        for i in range(8):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=0.05)
        fail_and_note(dep, "s1")
        dep.sim.run(until=0.06)
        event1 = dep.controller.recover_switch("s1")
        gen1 = dep.controller._recovery_gen[(spec.group_id, "s1")]
        # before recovery 1's snapshot fires (drain_delay away), the
        # member is excised again and readmitted — recovery generation 2
        def excise_and_readmit():
            fail_and_note(dep, "s1")
            dep.sim.schedule(1e-3, dep.controller.recover_switch, "s1")
        dep.sim.schedule(1e-3, excise_and_readmit)
        dep.sim.run(until=1.0)
        assert dep.controller._recovery_gen[(spec.group_id, "s1")] > gen1
        # recovery 1's event fired into the void: no promotion recorded
        assert spec.group_id not in event1.promoted_at
        # recovery 2 finished the job properly
        event2 = dep.controller.recoveries[-1]
        assert event2 is not event1 and spec.group_id in event2.promoted_at
        state = dep.manager("s1").sro.groups[spec.group_id]
        assert not state.catching_up
        assert all(state.store.get(f"k{i}") == i for i in range(8))


class TestInvariantSuite:
    def _mixed_deployment(self, make_deployment):
        dep, topo, _ = make_deployment(3, sync_period=1e-3)
        sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        return dep, sro, ctr

    def test_clean_run_is_green(self, make_deployment):
        dep, sro, ctr = self._mixed_deployment(make_deployment)
        suite = InvariantSuite(dep).start(period=0.5e-3)
        for i in range(20):
            dep.sim.schedule(
                i * 200e-6,
                lambda i=i: dep.manager("s0").register_write(sro, f"k{i % 5}", i),
            )
            dep.sim.schedule(
                i * 200e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_increment(ctr, "c", 1),
            )
        dep.sim.run(until=0.05)
        report = suite.finalize()
        assert report.ok, report.summary()
        assert all(count > 0 for count in report.checks.values())
        assert len(suite.commit_times) == 20

    def test_detects_a_lost_committed_write(self, make_deployment):
        """Negative control: tampering with a replica's store after a
        commit must trip the monitor."""
        dep, sro, _ctr = self._mixed_deployment(make_deployment)
        suite = InvariantSuite(dep)
        dep.manager("s0").register_write(sro, "k", 1)
        dep.sim.run(until=0.01)
        state = dep.manager("s1").sro.groups[sro.group_id]
        slot = state.pending.slot_of("k")
        del state.store["k"]
        state.pending._applied_seq[slot] = 0  # pretend it never applied
        report = suite.finalize()
        assert not report.ok
        assert report.count("no_lost_write") >= 1

    def test_detects_value_divergence_at_finalize(self, make_deployment):
        dep, sro, _ctr = self._mixed_deployment(make_deployment)
        suite = InvariantSuite(dep)
        dep.manager("s0").register_write(sro, "k", 1)
        dep.sim.run(until=0.01)
        dep.manager("s1").sro.groups[sro.group_id].store["k"] = 999
        report = suite.finalize()
        assert not report.ok
        assert report.count("no_lost_write") >= 1

    def test_counter_loss_with_fault_is_a_note_not_a_violation(
        self, make_deployment
    ):
        """Un-replicated increments destroyed by a crash are a documented
        EWO trade-off, not an invariant violation."""
        dep, topo, _ = make_deployment(2, sync_period=50e-3)
        ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        suite = InvariantSuite(dep)
        # sever the only link so the increment's propagation is lost,
        # leaving s1 the sole holder of its slot value
        topo.link_between("s0", "s1").set_up(False)
        dep.manager("s1").register_increment(ctr, "c", 7)
        dep.sim.run(until=1e-3)
        suite.check_now()  # observe the floor of 7
        fail_and_note(dep, "s1")
        dep.sim.run(until=2e-3)
        suite.check_now()  # merged dropped to 0, but a fault happened
        report = suite.finalize()
        assert report.ok, report.summary()
        assert any("re-baselined" in note for note in report.notes)

    def test_counter_regression_without_fault_is_a_violation(self, make_deployment):
        dep, _sro, ctr = self._mixed_deployment(make_deployment)
        suite = InvariantSuite(dep)
        dep.manager("s0").register_increment(ctr, "c", 5)
        dep.sim.run(until=0.01)
        suite.check_now()
        # tamper: zero the counter vector on every replica, no fault
        for name in dep.switch_names:
            dep.manager(name).ewo.groups[ctr.group_id].vectors.get("c", [])[:] = [0, 0, 0]
        suite.check_now()
        assert suite.report.count("counter_monotonic") >= 1

    def test_detects_failed_switch_lingering_in_config(self, make_deployment):
        dep, sro, _ctr = self._mixed_deployment(make_deployment)
        suite = InvariantSuite(dep)
        dep.sim.run(until=0.01)
        # tamper: mark s1 detected-failed without repairing the chain
        dep.controller._known_failed.add("s1")
        suite.check_now()
        assert suite.report.count("config_consistent") >= 1


class TestCombinedAdversities:
    def test_partition_plus_nemesis_during_sro_writes(self, make_deployment):
        """Satellite scenario: a topology partition PLUS nemesis
        duplication/delay hitting the data plane while SRO writes are in
        flight.  Every invariant must stay green — the suspected-but-
        alive side is excised and readmitted, duplicates are deduped,
        and no committed write is lost."""
        dep, topo, _ = make_deployment(4, sync_period=1e-3)
        sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        nemesis = Nemesis(
            seed=21, duplicate_prob=0.3, delay_prob=0.3, max_delay=150e-6
        ).install(topo)
        injector = FaultInjector(dep, seed=21)
        injector.partition(4e-3, duration=6e-3, side_a=["s3"])
        suite = InvariantSuite(dep).start(period=0.5e-3)
        counter = [0]

        def workload():
            i = counter[0]
            counter[0] += 1
            dep.manager("s0").register_write(sro, f"k{i % 10}", i)
            dep.manager(f"s{i % 3}").register_increment(ctr, "c", 1)
            if dep.sim.now < 30e-3:
                dep.sim.schedule(300e-6, workload)

        dep.sim.schedule(1e-3, workload)
        dep.sim.run(until=0.1)
        report = suite.finalize()
        assert report.ok, report.summary()
        assert all(count > 0 for count in report.checks.values())
        # the adversities actually bit
        assert nemesis.packets_duplicated > 0 and nemesis.packets_delayed > 0
        assert any(e.false_positive for e in dep.controller.failures)
        # the partitioned side came back as a full member
        assert any(r.readmission for r in dep.controller.recoveries)
        assert "s3" in dep.chains[sro.group_id]
        assert dep.manager("s3").sro.groups[sro.group_id].catching_up is False


class TestChaosSoakMini:
    """A miniature seeded soak; the full-size one lives in
    ``benchmarks/bench_chaos_soak.py``.

    Builds its own simulator (not the shared fixtures) so a test can run
    the same soak twice and compare event histories byte for byte."""

    def _run_soak(self, seed: int):
        from repro.core.manager import SwiShmemDeployment
        from repro.net.topology import Topology, build_full_mesh
        from repro.sim.engine import Simulator
        from repro.sim.random import SeededRng
        from repro.switch.pisa import PisaSwitch

        sim = Simulator()
        topo = Topology(sim, SeededRng(seed))
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 4)
        dep = SwiShmemDeployment(sim, topo, switches, sync_period=1e-3)
        sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
        ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        nemesis = Nemesis(
            seed=seed, duplicate_prob=0.1, delay_prob=0.1, max_delay=100e-6
        ).install(topo)
        injector = FaultInjector(dep, seed=seed)
        injector.schedule_random(
            start=5e-3, horizon=40e-3,
            crashes=1, flaps=1, bursts=1, partitions=1,
            burst_loss=0.05, protect=["s0"],
        )
        suite = InvariantSuite(dep).start(period=1e-3)
        counter = [0]

        def workload():
            i = counter[0]
            counter[0] += 1
            dep.manager("s0").register_write(sro, f"k{i % 8}", i)
            for name in dep.switch_names:
                if not dep.manager(name).switch.failed:
                    dep.manager(name).register_increment(ctr, "c", 1)
            if dep.sim.now < 60e-3:
                dep.sim.schedule(500e-6, workload)

        dep.sim.schedule(1e-3, workload)
        dep.sim.run(until=0.1)
        report = suite.finalize()
        digest = (
            injector.log_digest(),
            tuple(round(t, 12) for t in suite.commit_times),
            tuple((e.switch, round(e.detected_at, 12)) for e in dep.controller.failures),
            tuple(sorted(store.items()) for store in dep.sro_stores(sro)),
            dep.sim.events_processed,
        )
        return report, digest, dep

    def test_soak_invariants_green(self):
        report, _digest, dep = self._run_soak(seed=1)
        assert report.ok, report.summary()
        assert all(count > 0 for count in report.checks.values())
        # detection latency bounded for every real (noted) failure
        for event in dep.controller.failures:
            if not event.false_positive:
                assert (
                    event.detection_latency
                    <= dep.controller.detection_bound + 1e-9
                )

    def test_identical_seeds_identical_histories(self):
        _r1, digest_1, _ = self._run_soak(seed=4)
        _r2, digest_2, _ = self._run_soak(seed=4)
        assert digest_1 == digest_2

    def test_different_seeds_diverge(self):
        _r1, digest_1, _ = self._run_soak(seed=5)
        _r2, digest_2, _ = self._run_soak(seed=6)
        assert digest_1[0]  # faults actually fired
        assert digest_1 != digest_2
