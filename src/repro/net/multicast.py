"""Multicast groups.

The EWO protocol (paper sections 6.2 and 7) broadcasts write updates to
the replica group using "egress mirroring and the multicast engine", and
its failover story is simply "remove the failed switch from the
multicast group".  This module models that engine: a named group of
member node names, managed centrally (by the controller) and consulted
by switches when they replicate.

Delivery itself is unicast per member over the normal links — which is
what a switch multicast engine does internally (packet replication at
egress) — so loss and bandwidth are accounted per copy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

__all__ = ["MulticastGroup", "MulticastRegistry"]


class MulticastGroup:
    """A replica group: the set of switches holding copies of a register."""

    def __init__(self, group_id: int, members: Iterable[str] = ()) -> None:
        self.group_id = group_id
        self._members: Set[str] = set(members)

    @property
    def members(self) -> List[str]:
        return sorted(self._members)

    def add(self, node_name: str) -> None:
        self._members.add(node_name)

    def remove(self, node_name: str) -> None:
        """Remove a member; removing a non-member is a no-op.

        Failover (paper section 6.3) removes failed switches, possibly
        more than once if multiple detectors race — hence idempotent.
        """
        self._members.discard(node_name)

    def others(self, node_name: str) -> List[str]:
        """All members except ``node_name`` — the broadcast fan-out set."""
        return sorted(self._members - {node_name})

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return f"<MulticastGroup {self.group_id} members={self.members}>"


class MulticastRegistry:
    """All multicast groups in the deployment, keyed by group id."""

    def __init__(self) -> None:
        self._groups: Dict[int, MulticastGroup] = {}

    def create(self, group_id: int, members: Iterable[str] = ()) -> MulticastGroup:
        if group_id in self._groups:
            raise ValueError(f"multicast group {group_id} already exists")
        group = MulticastGroup(group_id, members)
        self._groups[group_id] = group
        return group

    def get(self, group_id: int) -> MulticastGroup:
        return self._groups[group_id]

    def has(self, group_id: int) -> bool:
        return group_id in self._groups

    def delete(self, group_id: int) -> None:
        """Tear down a group (an EWO -> SRO re-level removes the
        broadcast fan-out entirely).  Deleting twice is a no-op so a
        resumed handoff can replay the step."""
        self._groups.pop(group_id, None)

    def remove_member_everywhere(self, node_name: str) -> int:
        """Drop a failed switch from every group; returns groups touched."""
        touched = 0
        for group in self._groups.values():
            if node_name in group:
                group.remove(node_name)
                touched += 1
        return touched

    def groups(self) -> List[MulticastGroup]:
        return [self._groups[k] for k in sorted(self._groups)]
