"""The Eventual Write Optimized protocol (paper section 6.2).

EWO registers have cheap reads *and* writes: everything is local, and
replication is asynchronous.

* **Writes** apply to the local replica immediately; the output packet
  leaves at once.  The switch then broadcasts a small ``EwoUpdate`` —
  "egress mirroring and the multicast engine" (section 7) — carrying
  only this switch's new version numbers and values.  Updates may be
  batched (``ewo_batch_size``), trading bandwidth for staleness
  (experiment A2).

* **Merging** is per the group's mode: last-writer-wins with
  (timestamp, switch-id) versions, or CRDT counters as a per-switch slot
  vector with element-wise max merge.

* **Periodic synchronization** replaces retransmission: the switch's
  packet generator iterates the register state every ``sync_period`` and
  ships the *full* known state (all replicas' slots, not just our own)
  to a randomly selected group member.  Full-state gossip is what makes
  the protocol self-healing under loss and failure: "any switch that did
  receive the update can then synchronize the other switches" (6.3).

No failover protocol exists because none is needed: the controller just
drops failed switches from the multicast group; recovery adds the switch
back and waits one sync round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.registers import EwoMode, RegisterSpec
from repro.crdt.clock import HybridClock, Timestamp
from repro.crdt.lww import LwwRegister
from repro.crdt.orset import ORSet
from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.protocols.messages import EwoEntry, EwoSync, EwoUpdate

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemManager

__all__ = ["EwoEngine", "EwoGroupState", "EwoStats"]

#: Entries per sync packet, keeping sync packets around an MTU.
SYNC_ENTRIES_PER_PACKET = 48


class EwoStats:
    """Per-group EWO counters on one switch."""

    __slots__ = (
        "local_writes",
        "local_reads",
        "updates_sent",
        "update_packets_sent",
        "updates_received",
        "merges_applied",
        "merges_stale",
        "sync_packets_sent",
        "sync_entries_sent",
        "sync_packets_received",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class EwoGroupState:
    """One EWO register group's replica state on one switch.

    Counter mode stores, per key, a vector with one slot per replica —
    "one register array for each switch in the replica group" (paper
    section 7).  LWW mode stores (value, version) pairs; packet-
    processing atomicity lets both be updated in one pass.
    """

    def __init__(
        self,
        spec: RegisterSpec,
        budget,
        group_members: List[str],
        my_slot: int,
        clock: HybridClock,
    ) -> None:
        self.spec = spec
        self.members = list(group_members)
        self.my_slot = my_slot
        self.clock = clock
        self.stats = EwoStats()
        self._pending_entries: List[EwoEntry] = []
        #: Chaos hook (``FaultInjector.stale_replica``): until this sim
        #: time, incoming merges are silently dropped — the replica's
        #: apply unit is "stuck", so it serves increasingly stale state
        #: while looking perfectly healthy.
        self.chaos_frozen_until = 0.0
        self.chaos_frozen_drops = 0
        if spec.ewo_mode is EwoMode.COUNTER:
            per_key = len(group_members) * (4 + spec.value_bytes)  # version+value per slot
            budget.allocate(f"ewo-store:{spec.name}", spec.capacity * per_key)
            self.vectors: Dict[Any, List[int]] = {}
            self.cells: Optional[Dict[Any, LwwRegister]] = None
            self.sets: Optional[Dict[Any, ORSet]] = None
        elif spec.ewo_mode is EwoMode.ORSET:
            # The open-question accounting: each element costs add tags
            # (and, after removal, tombstones).  Budget for value_bytes
            # elements per key, two tags each (live + tombstone).
            per_key = spec.value_bytes * 2 * ORSet.TAG_BYTES
            budget.allocate(f"ewo-store:{spec.name}", spec.capacity * per_key)
            self.vectors = {}
            self.cells = None
            self.sets = {}
        else:
            per_key = Timestamp.wire_size + spec.value_bytes
            budget.allocate(f"ewo-store:{spec.name}", spec.capacity * per_key)
            self.vectors = {}
            self.cells = {}
            self.sets = None

    # --- counter mode ----------------------------------------------------
    def vector_for(self, key: Any) -> List[int]:
        vector = self.vectors.get(key)
        if vector is None:
            vector = [0] * len(self.members)
            self.vectors[key] = vector
        return vector

    # --- lww mode ----------------------------------------------------
    def cell_for(self, key: Any) -> LwwRegister:
        cell = self.cells.get(key)
        if cell is None:
            cell = LwwRegister(self.spec.default)
            self.cells[key] = cell
        return cell

    # --- orset mode ----------------------------------------------------
    def set_for(self, key: Any) -> ORSet:
        orset = self.sets.get(key)
        if orset is None:
            orset = ORSet(node_id=self.my_slot)
            self.sets[key] = orset
        return orset


class EwoEngine:
    """Per-switch EWO protocol engine."""

    def __init__(self, manager: "SwiShmemManager", sync_period: float = 1e-3) -> None:
        self.manager = manager
        self.switch = manager.switch
        self.sim = manager.sim
        self.sync_period = sync_period
        self.groups: Dict[int, EwoGroupState] = {}
        self._sync_rng = manager.rng.stream(f"ewo-sync:{self.switch.name}")
        self._bind_observability()

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks.

        Called at construction and again by
        ``Deployment.rebind_observability``; the engine caches these
        (hot-path flag checks), so late hook swaps must go through the
        rebind API rather than assigning deployment attributes directly.
        """
        # Live telemetry (repro.obs): sync/update volume and merge
        # outcomes, labelled by this switch.  All no-ops when metrics
        # are off.
        metrics = self.manager.deployment.metrics
        self._metrics_on = metrics.enabled
        # Causal tracing: one trace per update broadcast / sync round,
        # merge spans fan in at the receivers (repro.obs.flightrec).
        self._causal = self.manager.causal
        self._flightrec = self.manager.deployment.flight_recorder
        self._flightrec_on = self._flightrec.enabled
        # Access-pattern profiler (repro.obs.accessprof): local writes
        # and merge outcomes feed it; passive and digest-neutral.
        self._accessprof = self.manager.deployment.access_profiler
        self._accessprof_on = self._accessprof.enabled
        self._m_sync_packets = metrics.counter("ewo.sync_packets", self.switch.name)
        self._m_sync_bytes = metrics.counter("ewo.sync_bytes", self.switch.name)
        self._m_update_packets = metrics.counter("ewo.update_packets", self.switch.name)
        self._m_update_bytes = metrics.counter("ewo.update_bytes", self.switch.name)
        self._m_merges_applied = metrics.counter("ewo.merges_applied", self.switch.name)
        self._m_merges_stale = metrics.counter("ewo.merges_stale", self.switch.name)

    # ------------------------------------------------------------------
    def add_group(
        self, spec: RegisterSpec, members: List[str], clock: HybridClock
    ) -> EwoGroupState:
        if self.switch.name not in members:
            raise ValueError(
                f"{self.switch.name} is not a member of EWO group {spec.name!r}"
            )
        my_slot = members.index(self.switch.name)
        state = EwoGroupState(spec, self.switch.memory, members, my_slot, clock)
        self.groups[spec.group_id] = state
        return state

    def remove_group(self, group_id: int) -> None:
        """Detach a group from this engine (re-level teardown).

        Unflushed local entries are dropped — the re-leveling
        coordinator flushes and waits out the settle window before
        switching, so in the normal path there are none.  Frees the
        group's memory budget; removing an absent group is a no-op so a
        resumed handoff can replay the command.  Straggler
        ``EwoUpdate``/``EwoSync`` packets that arrive after removal are
        already ignored by ``handle_update``/``handle_sync``.
        """
        state = self.groups.pop(group_id, None)
        if state is not None:
            self.switch.memory.release(f"ewo-store:{state.spec.name}")

    def seed_group(self, group_id: int, entries: List[Tuple[Any, Any]], stamp: Timestamp) -> None:
        """Install drained authoritative values into a fresh LWW group.

        Every replica seeds the same ``(key, value)`` list under the
        same controller-issued ``stamp``, so seeded cells are
        byte-identical across the group (digest-identical replays) and
        carry ``node_id >= 0`` — the "ever written" marker — so sync
        rounds gossip them.  Witnessing the stamp keeps each replica's
        hybrid clock ahead of it: the first post-switch local write
        always wins LWW against the seed.
        """
        state = self.groups[group_id]
        if state.spec.ewo_mode is not EwoMode.LWW:
            raise ValueError(
                f"can only seed LWW groups, not {state.spec.ewo_mode}"
            )
        state.clock.witness(stamp)
        for key, value in entries:
            state.cell_for(key).merge(value, stamp)

    # ------------------------------------------------------------------
    # Local operations (paper 6.2: reads local, writes local + async)
    # ------------------------------------------------------------------
    def read(self, spec: RegisterSpec, key: Any, default: Any) -> Any:
        state = self.groups[spec.group_id]
        state.stats.local_reads += 1
        if spec.ewo_mode is EwoMode.COUNTER:
            vector = state.vectors.get(key)
            if vector is None:
                return 0 if default is None else default
            return sum(vector)
        if spec.ewo_mode is EwoMode.ORSET:
            orset = state.sets.get(key)
            if orset is None:
                return frozenset() if default is None else default
            return frozenset(orset.elements())
        cell = state.cells.get(key)
        if cell is None or cell.value is None:
            return default if default is not None else spec.default
        return cell.value

    def write(self, spec: RegisterSpec, key: Any, value: Any) -> None:
        """LWW write: stamp with the local clock, queue the broadcast."""
        state = self.groups[spec.group_id]
        if spec.ewo_mode is EwoMode.COUNTER:
            raise TypeError(
                f"group {spec.name!r} is a counter group; use increment()"
            )
        stamp = state.clock.now()
        state.cell_for(key).write(value, stamp)
        state.stats.local_writes += 1
        if self._accessprof_on:
            self._note_write(spec.group_id, key, "overwrite")
        self._queue_entry(state, EwoEntry(key=key, version=stamp, value=value))

    def increment(self, spec: RegisterSpec, key: Any, amount: int) -> int:
        """CRDT counter increment on our own slot; returns the global sum."""
        state = self.groups[spec.group_id]
        if spec.ewo_mode is not EwoMode.COUNTER:
            raise TypeError(f"group {spec.name!r} is not a counter group")
        vector = state.vector_for(key)
        vector[state.my_slot] += amount
        state.stats.local_writes += 1
        if self._accessprof_on:
            self._note_write(spec.group_id, key, "increment")
        self._queue_entry(
            state, EwoEntry(key=key, version=state.my_slot, value=vector[state.my_slot])
        )
        return sum(vector)

    def set_add(self, spec: RegisterSpec, key: Any, element: Any) -> None:
        """OR-Set add: tag locally, ship the (element, tag) delta."""
        state = self.groups[spec.group_id]
        if spec.ewo_mode is not EwoMode.ORSET:
            raise TypeError(f"group {spec.name!r} is not an OR-Set group")
        tag = state.set_for(key).add(element)
        state.stats.local_writes += 1
        if self._accessprof_on:
            self._note_write(spec.group_id, key, "set_add")
        self._queue_entry(state, EwoEntry(key=key, version=("add", tag), value=element))

    def set_remove(self, spec: RegisterSpec, key: Any, element: Any) -> bool:
        """OR-Set remove: tombstone the observed tags and ship them."""
        state = self.groups[spec.group_id]
        if spec.ewo_mode is not EwoMode.ORSET:
            raise TypeError(f"group {spec.name!r} is not an OR-Set group")
        orset = state.set_for(key)
        observed = tuple(sorted(orset.element_state(element)[0]))
        if not orset.remove(element):
            return False
        state.stats.local_writes += 1
        if self._accessprof_on:
            self._note_write(spec.group_id, key, "set_remove")
        self._queue_entry(
            state, EwoEntry(key=key, version=("rm", observed), value=element)
        )
        return True

    def set_contains(self, spec: RegisterSpec, key: Any, element: Any) -> bool:
        state = self.groups[spec.group_id]
        if spec.ewo_mode is not EwoMode.ORSET:
            raise TypeError(f"group {spec.name!r} is not an OR-Set group")
        state.stats.local_reads += 1
        orset = state.sets.get(key)
        return orset is not None and element in orset

    def orset_footprint(self, group_id: int) -> int:
        """Total tag bytes across this replica's OR-Sets — the metric
        behind the paper's 'implementable in a data plane?' question."""
        state = self.groups[group_id]
        if state.sets is None:
            return 0
        return sum(s.state_bytes for s in state.sets.values())

    def _note_write(self, group_id: int, key: Any, op: str) -> None:
        """Feed one local write to the access profiler.  EWO writes are
        data-plane when made inside a packet pass (the manager's context
        is live) and control-plane otherwise (window tasks, management)."""
        origin = "dataplane" if self.manager._ctx is not None else "control"
        self._accessprof.on_write(
            group_id, key, self.switch.name, self.sim.now, origin=origin, op=op
        )

    # ------------------------------------------------------------------
    # Asynchronous broadcast
    # ------------------------------------------------------------------
    def _queue_entry(self, state: EwoGroupState, entry: EwoEntry) -> None:
        state._pending_entries.append(entry)
        if len(state._pending_entries) >= state.spec.ewo_batch_size:
            self.flush(state.spec.group_id)

    def flush(self, group_id: int) -> int:
        """Broadcast queued entries to the replica group.  Returns copies sent."""
        state = self.groups[group_id]
        if not state._pending_entries:
            return 0
        entries = state._pending_entries
        state._pending_entries = []
        directory = getattr(self.manager.deployment, "directory", None)
        if directory is not None and state.spec.partial_replication:
            return self._flush_partial(state, entries, directory)
        update = EwoUpdate(
            group=group_id,
            origin=self.switch.name,
            entries=entries,
            key_bytes=state.spec.key_bytes,
            value_bytes=state.spec.value_bytes,
        )
        state.stats.updates_sent += len(update.entries)
        state.stats.update_packets_sent += 1
        update.trace = self._causal.root()
        if self._flightrec_on:
            self._flightrec.record(
                update.trace,
                "ewo.update.broadcast",
                self.switch.name,
                self.sim.now,
                group=group_id,
                entries=len(update.entries),
            )
        packet = Packet(
            swishmem=SwiShmemHeader(op=SwiShmemOp.EWO_UPDATE, register_group=group_id),
            swishmem_payload=update,
            trace=update.trace,
        )
        if self._metrics_on:
            self._m_update_packets.inc()
            self._m_update_bytes.inc(packet.wire_size)
        return self.switch.multicast_to_group(packet, group_id)

    def _flush_partial(self, state: EwoGroupState, entries: List[EwoEntry], directory) -> int:
        """Section 9 extension: replicate each key only to its directory-
        assigned replicas, instead of to the whole group."""
        group_id = state.spec.group_id
        live = set(self.switch.multicast.get(group_id).members) if self.switch.multicast else set(state.members)
        per_target: Dict[str, List[EwoEntry]] = {}
        for entry in entries:
            replicas = directory.replicas_of(group_id, entry.key)
            for target in replicas:
                if target != self.switch.name and target in live:
                    per_target.setdefault(target, []).append(entry)
        copies = 0
        for target in sorted(per_target):
            update = EwoUpdate(
                group=group_id,
                origin=self.switch.name,
                entries=per_target[target],
                key_bytes=state.spec.key_bytes,
                value_bytes=state.spec.value_bytes,
            )
            update.trace = self._causal.root()
            if self._flightrec_on:
                self._flightrec.record(
                    update.trace,
                    "ewo.update.send",
                    self.switch.name,
                    self.sim.now,
                    group=group_id,
                    target=target,
                    entries=len(update.entries),
                )
            packet = Packet(
                swishmem=SwiShmemHeader(
                    op=SwiShmemOp.EWO_UPDATE, register_group=group_id, dst_node=target
                ),
                swishmem_payload=update,
                trace=update.trace,
            )
            if self.switch.forward_to_node(packet, target):
                copies += 1
                state.stats.updates_sent += len(update.entries)
                state.stats.update_packets_sent += 1
                if self._metrics_on:
                    self._m_update_packets.inc()
                    self._m_update_bytes.inc(packet.wire_size)
        return copies

    # ------------------------------------------------------------------
    # Merge path (receiving side)
    # ------------------------------------------------------------------
    def handle_update(self, update: EwoUpdate) -> None:
        state = self.groups.get(update.group)
        if state is None:
            return
        if state.chaos_frozen_until > self.sim.now:
            # Fault injection: the apply unit is frozen; the packet is
            # consumed but nothing merges (silent staleness).
            state.chaos_frozen_drops += len(update.entries)
            return
        is_sync = isinstance(update, EwoSync)
        if is_sync:
            state.stats.sync_packets_received += 1
        applied = stale = 0
        for entry in update.entries:
            state.stats.updates_received += 1
            if self._merge_entry(state, entry):
                state.stats.merges_applied += 1
                applied += 1
                if self._metrics_on:
                    self._m_merges_applied.inc()
                if self._accessprof_on:
                    self._accessprof.on_merge(
                        update.group, entry.key, self.switch.name,
                        update.origin, True, self.sim.now,
                    )
            else:
                state.stats.merges_stale += 1
                stale += 1
                if self._metrics_on:
                    self._m_merges_stale.inc()
                if self._accessprof_on:
                    self._accessprof.on_merge(
                        update.group, entry.key, self.switch.name,
                        update.origin, False, self.sim.now,
                    )
        if self._flightrec_on and update.trace is not None:
            # One fan-in span per received packet: merges from many
            # origins parent into each origin's broadcast/sync span.
            self._flightrec.record(
                self._causal.child(update.trace),
                "ewo.merge",
                self.switch.name,
                self.sim.now,
                group=update.group,
                origin=update.origin,
                sync=is_sync,
                applied=applied,
                stale=stale,
            )

    def _merge_entry(self, state: EwoGroupState, entry: EwoEntry) -> bool:
        if state.spec.ewo_mode is EwoMode.COUNTER:
            slot = entry.version
            if not isinstance(slot, int) or not 0 <= slot < len(state.members):
                return False
            vector = state.vector_for(entry.key)
            if entry.value > vector[slot]:
                vector[slot] = entry.value
                return True
            return False
        if state.spec.ewo_mode is EwoMode.ORSET:
            return self._merge_orset_entry(state, entry)
        stamp = entry.version
        state.clock.witness(stamp)
        return state.cell_for(entry.key).merge(entry.value, stamp)

    def _merge_orset_entry(self, state: EwoGroupState, entry: EwoEntry) -> bool:
        orset = state.set_for(entry.key)
        kind = entry.version[0]
        if kind == "add":
            return orset.apply_add(entry.value, entry.version[1])
        if kind == "rm":
            return orset.apply_remove(entry.value, entry.version[1])
        if kind == "state":
            _, add_tags, remove_tags = entry.version
            changed_add = False
            for tag in add_tags:
                changed_add = orset.apply_add(entry.value, tag) or changed_add
            changed_rm = orset.apply_remove(entry.value, remove_tags)
            return changed_add or changed_rm
        return False

    # ------------------------------------------------------------------
    # Periodic synchronization (paper 6.2 / 7)
    # ------------------------------------------------------------------
    def sync_tick(self, group_id: int) -> int:
        """One packet-generator round: gossip full state to a random member.

        Returns the number of sync packets emitted.
        """
        state = self.groups.get(group_id)
        if state is None or self.switch.failed:
            return 0
        target = self._pick_sync_target(group_id)
        if target is None:
            return 0
        packets, _ = self._sync_to(state, group_id, target, "ewo.sync.round")
        return packets

    def force_sync(self, group_id: int, target: str) -> Tuple[int, int]:
        """Targeted full-state sync toward ``target`` (anti-entropy repair).

        The scrubber calls this on every live member when a replica is
        found diverged: an immediate, directed merge-sync round instead
        of waiting for the random gossip walk to reach the victim.
        Returns ``(packets, bytes)`` so the coordinator can account
        repair bandwidth.
        """
        state = self.groups.get(group_id)
        if state is None or self.switch.failed or target == self.switch.name:
            return (0, 0)
        return self._sync_to(state, group_id, target, "ewo.sync.force")

    def _sync_to(
        self, state: EwoGroupState, group_id: int, target: str, span: str
    ) -> Tuple[int, int]:
        """Ship full known state to ``target`` in MTU-sized sync packets."""
        entries = self._full_state_entries(state)
        directory = getattr(self.manager.deployment, "directory", None)
        if directory is not None and state.spec.partial_replication:
            # partial replication: gossip to the target only the keys it
            # is a replica of
            entries = [
                e for e in entries
                if target in directory.replicas_of(group_id, e.key)
            ]
        packets = 0
        sync_bytes = 0
        round_ctx = self._causal.root() if entries else None
        if self._flightrec_on and round_ctx is not None:
            self._flightrec.record(
                round_ctx,
                span,
                self.switch.name,
                self.sim.now,
                group=group_id,
                target=target,
                entries=len(entries),
            )
        for start in range(0, len(entries), SYNC_ENTRIES_PER_PACKET):
            chunk = entries[start : start + SYNC_ENTRIES_PER_PACKET]
            sync = EwoSync(
                group=group_id,
                origin=self.switch.name,
                entries=chunk,
                key_bytes=state.spec.key_bytes,
                value_bytes=state.spec.value_bytes,
            )
            sync.trace = self._causal.child(round_ctx)
            packet = Packet(
                swishmem=SwiShmemHeader(
                    op=SwiShmemOp.EWO_SYNC, register_group=group_id, dst_node=target
                ),
                swishmem_payload=sync,
                trace=sync.trace,
            )
            if self.switch.generate_packet(packet, target):
                packets += 1
                sync_bytes += packet.wire_size
                state.stats.sync_packets_sent += 1
                state.stats.sync_entries_sent += len(chunk)
                if self._metrics_on:
                    self._m_sync_packets.inc()
                    self._m_sync_bytes.inc(packet.wire_size)
        return packets, sync_bytes

    def _pick_sync_target(self, group_id: int) -> Optional[str]:
        registry = self.switch.multicast
        if registry is None or not registry.has(group_id):
            # The group can vanish mid-round when a re-level promotes it
            # to SRO and deletes the multicast fan-out.
            return None
        others = registry.get(group_id).others(self.switch.name)
        if not others:
            return None
        return self._sync_rng.choice(others)

    def _full_state_entries(self, state: EwoGroupState) -> List[EwoEntry]:
        """All state we know — every replica's slots, not just ours."""
        entries: List[EwoEntry] = []
        if state.spec.ewo_mode is EwoMode.COUNTER:
            for key in sorted(state.vectors, key=repr):
                for slot, value in enumerate(state.vectors[key]):
                    if value:
                        entries.append(EwoEntry(key=key, version=slot, value=value))
        elif state.spec.ewo_mode is EwoMode.ORSET:
            for key in sorted(state.sets, key=repr):
                orset = state.sets[key]
                for element in sorted(orset.known_elements(), key=repr):
                    add_tags, remove_tags = orset.element_state(element)
                    entries.append(
                        EwoEntry(
                            key=key,
                            version=("state", add_tags, remove_tags),
                            value=element,
                        )
                    )
        else:
            for key in sorted(state.cells, key=repr):
                cell = state.cells[key]
                if cell.version.node_id >= 0:  # ever written
                    entries.append(
                        EwoEntry(key=key, version=cell.version, value=cell.value)
                    )
        return entries

    # ------------------------------------------------------------------
    def stats_for(self, group_id: int) -> EwoStats:
        return self.groups[group_id].stats

    def local_state(self, group_id: int) -> Dict[Any, Any]:
        """Readable view of the local replica (for convergence checks)."""
        state = self.groups[group_id]
        if state.spec.ewo_mode is EwoMode.COUNTER:
            return {key: sum(vector) for key, vector in state.vectors.items()}
        if state.spec.ewo_mode is EwoMode.ORSET:
            return {key: frozenset(s.elements()) for key, s in state.sets.items()}
        return {key: cell.value for key, cell in state.cells.items()}
