"""Shared infrastructure for the experiment benchmarks.

Every benchmark file reproduces one experiment from DESIGN.md's index
(which in turn maps to a table, figure, or quantitative claim of the
paper).  Conventions:

* each file defines ``run_experiment(...)`` returning a result object,
  a ``test_*`` that asserts the paper's qualitative *shape* (who wins,
  by roughly what factor, where crossovers fall), and a
  ``test_benchmark_*`` hooking the core computation into
  pytest-benchmark;
* results are printed as aligned tables via :func:`print_table` so
  ``pytest benchmarks/ --benchmark-only -s`` regenerates every table
  the repo reports in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence

sys.path.insert(0, ".")  # so `tests.nfworld` resolves when run from repo root

__all__ = ["print_table", "print_header", "fmt_us", "fmt_rate", "fmt_pct"]


def print_header(experiment_id: str, title: str, paper_claim: str) -> None:
    print()
    print("=" * 78)
    print(f"[{experiment_id}] {title}")
    print(f"paper claim: {paper_claim}")
    print("=" * 78)


def print_table(columns: Sequence[str], rows: Iterable[Sequence[Any]], widths: Sequence[int] = None) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    if widths is None:
        widths = [
            max(len(str(col)), *(len(row[i]) for row in rows)) if rows else len(str(col))
            for i, col in enumerate(columns)
        ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    print()


def fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.1f}us"


def fmt_rate(per_second: float) -> str:
    if per_second >= 1e9:
        return f"{per_second / 1e9:.2f}G/s"
    if per_second >= 1e6:
        return f"{per_second / 1e6:.2f}M/s"
    if per_second >= 1e3:
        return f"{per_second / 1e3:.2f}K/s"
    return f"{per_second:.2f}/s"


def fmt_pct(fraction: float) -> str:
    return f"{fraction * 100:.2f}%"
