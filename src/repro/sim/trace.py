"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorized records during a
simulation run.  Traces serve three purposes in the reproduction:

* debugging protocol interleavings (chain replication has subtle ordering);
* feeding the linearizability checker (``repro.analysis``), which needs
  invocation/response intervals for every register operation;
* producing the per-experiment evidence recorded in EXPERIMENTS.md.

Tracing is cheap when disabled: categories are filtered before the record
is built.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, Iterator, List, Optional, Set

__all__ = ["TraceRecord", "Tracer"]


@dataclass
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    node: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.time * 1e6:12.3f}us] {self.node:<12} {self.category:<10} {self.message} {extras}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` objects, optionally filtered by category.

    ``categories=None`` records everything; an empty set records nothing.

    ``max_records`` bounds memory: when set, the tracer becomes a ring
    buffer that keeps only the newest ``max_records`` entries, evicting
    the oldest and counting evictions.  Long chaos soaks use this so a
    multi-second run cannot grow ``records`` without limit while still
    retaining the recent history that matters for post-mortems.
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        max_records: Optional[int] = None,
    ) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be positive, got {max_records}")
        self.records: Deque[TraceRecord] = deque(maxlen=max_records)
        self.max_records = max_records
        #: Number of records discarded because the ring was full.
        self.evictions = 0
        self._categories: Optional[Set[str]] = (
            None if categories is None else set(categories)
        )
        self._sinks: List[Callable[[TraceRecord], None]] = []

    def enabled(self, category: str) -> bool:
        return self._categories is None or category in self._categories

    def emit(
        self,
        time: float,
        category: str,
        node: str,
        message: str,
        **data: Any,
    ) -> None:
        """Record an event if its category is enabled."""
        if not self.enabled(category):
            return
        record = TraceRecord(time, category, node, message, data)
        if self.max_records is not None and len(self.records) == self.max_records:
            self.evictions += 1  # deque(maxlen=...) drops the oldest on append
        self.records.append(record)
        for sink in self._sinks:
            sink(record)

    def add_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Attach a callback invoked for every recorded entry (e.g. print)."""
        self._sinks.append(sink)

    def bind_metrics(self, metrics: Any, node: str = "obs") -> None:
        """Export ring occupancy/eviction gauges into a metrics registry.

        Duck-typed (any object with ``enabled`` and ``gauge``) so the
        sim layer stays import-free of ``repro.obs``.  Call just before
        snapshotting so bench sidecars show whether the ring truncated.
        """
        if not getattr(metrics, "enabled", False):
            return
        metrics.gauge("tracer.evictions", node).set(self.evictions)
        metrics.gauge("tracer.records", node).set(len(self.records))

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def by_node(self, node: str) -> List[TraceRecord]:
        return [r for r in self.records if r.node == node]

    def clear(self) -> None:
        self.records.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


#: A tracer that records nothing; used as the default everywhere so hot
#: paths never pay for tracing unless an experiment opts in.
NULL_TRACER = Tracer(categories=())
