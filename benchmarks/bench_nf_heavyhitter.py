"""[N5] Network-wide heavy hitters: SwiShmem vs controller-based.

Paper section 8: "SwiShmem can be used to implement similar
[distributed heavy-hitter] algorithms while eliminating the need for a
centralized controller, thus potentially providing faster response."

The same detector runs two ways over identical skewed traffic spread
across a 3-switch cluster:

* **SwiShmem (EWO counters)** — every switch reads the merged global
  count per packet and detects locally;
* **controller-based (Harrison-style)** — local counters, per-switch
  trigger reports at threshold/N, a coordinator aggregates (one
  control-plane op per report plus an RTT).

Measured: detection latency relative to the true crossing instant, and
communication with the central controller (which SwiShmem reduces to
zero by construction).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List, Optional

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.topology import Topology, build_leaf_spine
from repro.nf.heavyhitter import (
    ControllerHeavyHitterNF,
    HeavyHitterCoordinator,
    HeavyHitterNF,
)
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_us, print_header, print_table

THRESHOLD = 60
HEAVY_SRC = "66.6.6.6"
PACKET_GAP = 40e-6
ENTRY_LEAVES = 3


@dataclass
class HhResult:
    mode: str
    detected: bool
    detection_latency: Optional[float]
    controller_reports: int
    controller_bytes: int


def _build_world(seed: int):
    """Leaf/spine fabric: the heavy source's packets enter through three
    different leaves, so no counting switch sees more than ~1/3 of them."""
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    book = AddressBook()
    hosts = []

    def host_factory(name):
        if name.startswith(f"h{ENTRY_LEAVES}"):
            ip = "192.168.0.1"
        else:
            ip = f"10.0.0.{len(hosts) + 1}"
        host = EndHost(name, sim, ip, book)
        hosts.append(host)
        return host

    leaves, spines, host_list = build_leaf_spine(
        topo, lambda n: PisaSwitch(n, sim), host_factory,
        leaves=ENTRY_LEAVES + 1, spines=2, hosts_per_leaf=1,
    )
    deployment = SwiShmemDeployment(sim, topo, leaves + spines, address_book=book)
    clients = [h for h in host_list if h.ip.startswith("10.")]
    server = next(h for h in host_list if h.ip.startswith("192.168"))
    return sim, deployment, clients, server


def _drive(sim, clients, server) -> float:
    """Heavy flow spread over the entry leaves + light background.

    Returns the true time the aggregate count crossed THRESHOLD.
    """
    cross_time = None
    for i in range(THRESHOLD + 30):
        client = clients[i % len(clients)]
        at = i * PACKET_GAP
        sim.schedule(
            at,
            lambda c=client, p=4000 + i % 8: c.inject(
                make_udp_packet(HEAVY_SRC, server.ip, p, 2, payload_size=64)
            ),
        )
        if i + 1 == THRESHOLD:
            cross_time = at
    for i in range(40):
        client = clients[i % len(clients)]
        sim.schedule(
            i * 90e-6,
            lambda c=client, s=f"8.8.{i % 5}.1": c.inject(
                make_udp_packet(s, server.ip, 1, 2, payload_size=64)
            ),
        )
    return cross_time


def run_swishmem(seed: int = 41) -> HhResult:
    sim, deployment, clients, server = _build_world(seed)
    instances = deployment.install_nf(HeavyHitterNF, threshold=THRESHOLD)
    cross = _drive(sim, clients, server)
    sim.run(until=0.05)
    times = [i.detected[HEAVY_SRC] for i in instances if HEAVY_SRC in i.detected]
    return HhResult(
        mode="SwiShmem (EWO counters)",
        detected=bool(times),
        detection_latency=(min(times) - cross) if times else None,
        controller_reports=0,
        controller_bytes=0,
    )


def run_controller(seed: int = 41, rtt: float = 500e-6) -> HhResult:
    sim, deployment, clients, server = _build_world(seed)
    coordinator = HeavyHitterCoordinator(sim, threshold=THRESHOLD, rtt=rtt)
    deployment.install_nf(
        ControllerHeavyHitterNF, threshold=THRESHOLD, coordinator=coordinator
    )
    cross = _drive(sim, clients, server)
    sim.run(until=0.05)
    detected_at = coordinator.detected.get(HEAVY_SRC)
    return HhResult(
        mode=f"controller (rtt {rtt * 1e6:.0f}us)",
        detected=detected_at is not None,
        detection_latency=(detected_at - cross) if detected_at is not None else None,
        controller_reports=coordinator.reports_received,
        controller_bytes=coordinator.report_bytes,
    )


def run_experiment() -> List[HhResult]:
    return [
        run_swishmem(),
        run_controller(rtt=500e-6),
        run_controller(rtt=2e-3),
    ]


def report(results: List[HhResult]) -> None:
    print_header(
        "N5",
        "Distributed heavy hitters: shared counters vs central controller",
        "SwiShmem eliminates the controller, 'potentially providing "
        "faster response' (section 8)",
    )
    print_table(
        ["implementation", "detected", "latency past true crossing",
         "controller reports", "controller bytes"],
        [
            (
                r.mode,
                r.detected,
                fmt_us(r.detection_latency) if r.detection_latency is not None else "-",
                r.controller_reports,
                r.controller_bytes,
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_heavyhitter_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    swishmem, controller_fast, controller_slow = results
    assert all(r.detected for r in results)
    # the controller-free design responds faster, and degrades less as
    # the controller gets farther away
    assert swishmem.detection_latency < controller_fast.detection_latency
    assert controller_fast.detection_latency <= controller_slow.detection_latency
    # and it needs no controller communication at all
    assert swishmem.controller_reports == 0
    assert controller_fast.controller_reports > 0


@pytest.mark.benchmark(group="nf")
def test_benchmark_heavyhitter(benchmark):
    benchmark.pedantic(run_swishmem, rounds=1, iterations=1)
