"""[A1] Ablation: pending-bit slot sharing (paper section 7).

"Since these state elements only protect other state updates, multiple
keys can share the same sequence number and in-progress bit, reducing
state requirements further."

The trade: fewer slots cost less switch memory but cause *false
sharing* — a read of key A is forwarded to the tail because key B,
hashing to the same slot, has a write in flight.  The experiment sweeps
the sharing factor (keys per slot) and measures protocol memory against
the forwarded-read rate under a fixed read/write workload.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import Decision, SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.topology import Topology, build_full_mesh
from repro.nf.base import NetworkFunction
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_pct, print_header, print_table

KEYS = 512


class KeyReaderNF(NetworkFunction):
    """Reads the register keyed by the packet's destination port."""

    PENDING_SLOTS = None

    @classmethod
    def build_specs(cls, **kwargs):
        return [
            RegisterSpec(
                "table",
                Consistency.SRO,
                capacity=KEYS,
                pending_slots=cls.PENDING_SLOTS,
                control_plane_state=True,
            )
        ]

    def process(self, ctx):
        key = f"key{ctx.packet.udp.dst_port % KEYS}" if ctx.packet.udp else None
        if key is not None:
            self.handles["table"].read(key)
        return Decision.forward()


@dataclass
class SharingResult:
    slots: int
    sharing_factor: float
    pending_bytes: int
    reads: int
    forwarded: int
    forwarded_fraction: float


def run_point(slots: int, seed: int = 23) -> SharingResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(
        topo, lambda n: PisaSwitch(n, sim, control_op_latency=150e-6), 3
    )
    book = AddressBook()
    src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
    topo.connect("src", "s1")
    topo.connect("dst", "s2")
    deployment = SwiShmemDeployment(sim, topo, switches, address_book=book)

    nf_class = type(f"Reader{slots}", (KeyReaderNF,), {"PENDING_SLOTS": slots})
    deployment.install_nf(nf_class)
    spec = deployment.spec_by_name("table")

    # background writers keep a few keys' slots pending most of the time
    def write_loop(i=0):
        if sim.now > 0.04:
            return
        deployment.manager("s0").register_write(spec, f"key{i % 8}", i)
        sim.schedule(400e-6, write_loop, i + 1)

    sim.schedule(0.0, write_loop)
    # readers touch uniformly random *other* keys
    reader_rng = SeededRng(seed).stream("reader")
    for i in range(400):
        port = 8 + reader_rng.randrange(KEYS - 8)
        sim.schedule(
            11e-6 + i * 90e-6,
            lambda p=port: src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, p)),
        )
    sim.run(until=0.08)
    stats = [
        deployment.manager(n).sro.stats_for(spec.group_id)
        for n in deployment.switch_names
    ]
    reads = sum(s.local_reads + s.forwarded_reads + s.tail_reads for s in stats)
    forwarded = sum(s.forwarded_reads for s in stats)
    state = deployment.manager("s0").sro.groups[spec.group_id]
    return SharingResult(
        slots=slots,
        sharing_factor=KEYS / slots,
        pending_bytes=state.pending.state_bytes,
        reads=reads,
        forwarded=forwarded,
        forwarded_fraction=forwarded / reads if reads else 0.0,
    )


def run_experiment() -> List[SharingResult]:
    return [run_point(slots) for slots in (512, 128, 32, 8, 2)]


def report(results: List[SharingResult]) -> None:
    print_header(
        "A1",
        "Ablation: pending-bit slot sharing vs false-sharing read forwards",
        "sharing slots reduces protocol state at the cost of spurious "
        "tail-forwarded reads",
    )
    print_table(
        ["slots", "keys/slot", "pending-table bytes", "reads", "forwarded", "forwarded %"],
        [
            (
                r.slots,
                f"{r.sharing_factor:.0f}",
                r.pending_bytes,
                r.reads,
                r.forwarded,
                fmt_pct(r.forwarded_fraction),
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_pending_sharing_tradeoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    # memory shrinks monotonically with slot count
    memories = [r.pending_bytes for r in results]
    assert memories == sorted(memories, reverse=True)
    # false sharing rises as slots shrink: the most shared config
    # forwards a much larger fraction of reads than the dedicated one
    dedicated, most_shared = results[0], results[-1]
    assert most_shared.forwarded_fraction > 4 * max(dedicated.forwarded_fraction, 1e-9)
    assert most_shared.forwarded_fraction > 0.05
    # dedicated slots forward (almost) nothing for disjoint keys
    assert dedicated.forwarded_fraction < 0.02


@pytest.mark.benchmark(group="ablation")
def test_benchmark_pending_sharing(benchmark):
    benchmark.pedantic(lambda: run_point(32), rounds=1, iterations=1)
