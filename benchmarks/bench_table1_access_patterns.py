"""[T1] Table 1 reproduction: NF access patterns and consistency needs.

Paper Table 1 classifies six NFs by write frequency, read frequency, and
consistency requirement.  This experiment *measures* those columns: each
NF runs on a 3-switch SwiShmem cluster under a representative workload,
the access profiler counts per-packet reads/writes on every shared
register group, and the paper's recommendation rule (Observations 1 and
2) must reproduce the register type each NF was built with.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.compiler import AccessProfiler, recommend_consistency
from repro.core.registers import Consistency
from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet, make_udp_packet
from repro.nf.ddos import DdosDetectorNF
from repro.nf.firewall import FirewallNF
from repro.nf.ips import IpsNF
from repro.nf.loadbalancer import LoadBalancerNF
from repro.nf.nat import NatNF
from repro.nf.ratelimiter import RateLimiterNF
from repro.workload.flows import FlowGenerator

from benchmarks.common import print_header, print_table
from tests.nfworld import build_nf_world

VIP = "100.0.0.100"

#: Paper Table 1, transcribed: state -> (write freq, read freq, consistency).
PAPER_TABLE1 = {
    "nat_table": ("New connection", "Every packet", "Strong"),
    "fw_conntrack": ("New connection", "Every packet", "Strong"),
    "ips_signatures": ("Low", "Every packet", "Weak"),
    "lb_connections": ("New connection", "Every packet", "Strong"),
    "ddos_src": ("Every packet", "Every packet", "Weak"),
    "ddos_dst": ("Every packet", "Every packet", "Weak"),
    "rl_usage": ("Every packet", "Every window", "Weak"),
}

#: The application-level consistency requirement (Table 1 last column),
#: an input the profiler cannot infer from counts.
NEEDS_STRONG = {
    "nat_table": True,
    "fw_conntrack": True,
    "ips_signatures": False,
    "lb_connections": True,
    "ddos_src": False,
    "ddos_dst": False,
    "rl_usage": False,
    "rl_blocked": False,
    "ips_matches": False,
}

#: Register type each NF was built with (section 5 mapping).
EXPECTED_TYPE = {
    "nat_table": Consistency.SRO,
    "fw_conntrack": Consistency.SRO,
    "ips_signatures": Consistency.ERO,
    "lb_connections": Consistency.SRO,
    "ddos_src": Consistency.EWO,
    "ddos_dst": Consistency.EWO,
    "rl_usage": Consistency.EWO,
}


@dataclass
class Table1Row:
    nf: str
    state: str
    write_freq: str
    read_freq: str
    required: str
    recommended: Consistency


def _drive_flows(world, flows=25, data_packets=6, dst_ips=None, gap=2e-3):
    """Drive TCP flows.  The default inter-packet gap (2 ms) models a
    client that waits out the handshake RTT before sending data — data
    packets must not race the connection-establishing chain write, or
    every one of them would look like a new connection to the NF."""
    generator = FlowGenerator(
        world.sim,
        world.clients,
        dst_ips or world.server_ips(),
        world.rng,
        flow_rate=4000,
        data_packets=data_packets,
        inter_packet_gap=gap,
    )
    generator.start(duration=flows / 4000)
    world.sim.run(until=0.2)
    return generator


def run_experiment() -> List[Table1Row]:
    rows: List[Table1Row] = []

    nf_state_names = {
        "NAT": ("nat_table",),
        "Firewall": ("fw_conntrack",),
        "IPS": ("ips_signatures",),
        "L4 load-balancer": ("lb_connections",),
        "DDoS detection": ("ddos_src", "ddos_dst"),
        "Rate limiter": ("rl_usage",),
    }

    def profile(nf_label, install, drive, responders=True):
        world = build_nf_world(seed=1000 + len(rows), responder_servers=responders)
        install(world)
        profiler = AccessProfiler(world.deployment)
        drive(world)
        # Denominator: data packets the hosts actually injected (replies
        # included), not per-hop or replication receives.
        data_packets = sum(h.sent_count for h in world.clients + world.servers)
        profiles = {
            p.group_name: p
            for p in profiler.profiles(needs_strong=NEEDS_STRONG, packets=data_packets)
        }
        for state_name in nf_state_names[nf_label]:
            p = profiles[state_name]
            write_label, read_label = p.frequency_label(per_packet_threshold=0.4)
            rows.append(
                Table1Row(
                    nf=nf_label,
                    state=state_name,
                    write_freq=write_label,
                    read_freq=read_label,
                    required="Strong" if NEEDS_STRONG[state_name] else "Weak",
                    recommended=recommend_consistency(p, write_intensive_threshold=0.4),
                )
            )

    profile(
        "NAT",
        lambda w: (w.book.register("100.0.0.1", "egress"),
                   w.deployment.install_nf(NatNF, nat_ip="100.0.0.1")),
        lambda w: _drive_flows(w),
    )
    profile(
        "Firewall",
        lambda w: w.deployment.install_nf(FirewallNF),
        lambda w: _drive_flows(w),
    )

    def drive_ips(world):
        instances = world.deployment.managers[world.ingress.name].nfs
        ips = instances[0]
        ips.add_signature(0xBAD)  # the rare control-plane write
        _drive_flows(world)

    profile(
        "IPS",
        lambda w: w.deployment.install_nf(IpsNF),
        drive_ips,
        responders=False,
    )
    profile(
        "L4 load-balancer",
        lambda w: (w.book.register(VIP, "egress"),
                   w.deployment.install_nf(LoadBalancerNF, vip=VIP, dips=["192.168.0.1", "192.168.0.2"])),
        lambda w: _drive_flows(w, dst_ips=[VIP]),
        responders=False,
    )
    profile(
        "DDoS detection",
        lambda w: w.deployment.install_nf(DdosDetectorNF),
        lambda w: _drive_flows(w),
        responders=False,
    )
    profile(
        "Rate limiter",
        # the enforcement window is long relative to the packet rate, so
        # meter reads are measured as per-window, not per-packet
        lambda w: w.deployment.install_nf(RateLimiterNF, limit_bps=1e9, window=20e-3),
        lambda w: _drive_flows(w, gap=100e-6),
        responders=False,
    )
    return rows


def report(rows: List[Table1Row]) -> None:
    print_header(
        "T1",
        "Table 1: NFs classified by access pattern and consistency",
        "NAT/FW/LB: write on new connection, read every packet, strong; "
        "IPS: low writes, weak; DDoS/rate limiter: write every packet, weak",
    )
    print_table(
        ["NF", "State", "Write freq (measured)", "Read freq (measured)",
         "Consistency", "SwiShmem type"],
        [(r.nf, r.state, r.write_freq, r.read_freq, r.required,
          r.recommended.value.upper()) for r in rows],
    )


@pytest.mark.benchmark(group="experiment")
def test_table1_shape_matches_paper(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(rows)
    by_state = {r.state: r for r in rows}
    for state, (write_freq, read_freq, consistency) in PAPER_TABLE1.items():
        row = by_state[state]
        assert row.write_freq == write_freq, f"{state}: write freq {row.write_freq} != {write_freq}"
        assert row.read_freq == read_freq, f"{state}: read freq {row.read_freq} != {read_freq}"
        assert row.required == consistency
        assert row.recommended == EXPECTED_TYPE[state], (
            f"{state}: recommended {row.recommended} != {EXPECTED_TYPE[state]}"
        )


@pytest.mark.benchmark(group="table1")
def test_benchmark_table1(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
