#!/usr/bin/env python
"""Distributed DDoS detection with EWO-replicated counters (section 4.2).

Spreads traffic over a 3-switch cluster so no single switch sees more
than a third of the packets, launches a spoofed-source volumetric
attack mid-run, and shows every switch raising the entropy alarm off
the *shared* frequency counters — state that is written on every packet
and therefore only viable under the eventually consistent EWO protocol.

Run:  python examples/ddos_detection.py
"""

import os
import sys

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.nf.ddos import DdosDetectorNF
from repro.workload.attack import AttackScenario

from repro.testing import build_nf_world


def main() -> None:
    world = build_nf_world(
        seed=99, cluster_size=3, clients=6, servers=6, responder_servers=False
    )
    detectors = world.deployment.install_nf(
        DdosDetectorNF, window=3e-3, entropy_threshold=-0.2, min_packets=100
    )
    cluster_names = {s.name for s in world.cluster}
    watchers = [d for d in detectors if d.manager.switch.name in cluster_names]
    for detector in detectors:
        if detector not in watchers:
            detector.stop()  # ingress/egress see everything; not our subject

    scenario = AttackScenario(
        sim=world.sim,
        clients=world.clients,
        server_ips=world.server_ips(),
        rng=world.rng,
        background_pps=25_000,
        attack_pps=60_000,
        attack_start=12e-3,
        attack_duration=12e-3,
        bot_count=200,
    )
    scenario.start(duration=35e-3)
    world.sim.run(until=40e-3)

    print(f"background packets: {scenario.background_sent}, "
          f"attack packets: {scenario.attack_sent} "
          f"(attack window {scenario.attack_start * 1e3:.0f}-"
          f"{scenario.attack_end * 1e3:.0f} ms)\n")

    for detector in watchers:
        name = detector.manager.switch.name
        seen = detector.stats.processed
        alarms = ", ".join(f"{t * 1e3:.1f} ms" for t in detector.alarms) or "none"
        print(f"{name}: saw {seen} packets (~{seen * 100 // max(1, scenario.background_sent + scenario.attack_sent)}% of traffic)")
        print(f"  alarms at: {alarms}")
        score = (
            f"{detector.last_score:+.3f}" if detector.last_score is not None
            else "n/a (quiet window)"
        )
        print(f"  last entropy score: {score} "
              f"(alarm below {detector.entropy_threshold})")
        print(f"  suspected victim: {detector.suspected_victim} "
              f"(actual: {scenario.victim_ip})")

    spec = world.deployment.spec_by_name("ddos_dst")
    stats = world.deployment.manager(world.cluster[0].name).ewo.stats_for(spec.group_id)
    print(f"\nreplication work on {world.cluster[0].name} (dst counters): "
          f"{stats.updates_sent} updates broadcast, "
          f"{stats.updates_received} received, "
          f"{stats.sync_packets_sent} periodic sync packets")


if __name__ == "__main__":
    main()
