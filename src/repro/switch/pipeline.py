"""Match-action pipeline structure.

Paper section 2: "PISA defines two main parts to packet processing …
a pipeline of match-and-action stages.  The small (~10 MB) switch memory
is split between pipeline stages."

This module gives programs an explicit stage structure:

* a :class:`Stage` owns the stateful objects placed in it and a handler
  run when a packet traverses it;
* a :class:`Pipeline` is a bounded sequence of stages (hardware has a
  fixed stage count) that charges each stage's objects against an equal
  share of the switch memory — the "split between stages" constraint;
* :meth:`Pipeline.as_handler` adapts the pipeline to the switch's
  handler interface.

Programs are free to skip this structure and install plain handlers
(most protocol engines do); the NFs use it so that their stage/memory
layout is explicit and testable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.net.packet import Packet
from repro.obs.metrics import NULL_COUNTER
from repro.switch.memory import MemoryBudget, OutOfSwitchMemory
from repro.switch.objects import Counter, MatchTable, Meter, RegisterArray

if TYPE_CHECKING:  # pragma: no cover
    from repro.switch.pisa import PisaSwitch

__all__ = ["Stage", "Pipeline", "StageAction"]

#: Typical Tofino-class stage count.
DEFAULT_STAGE_COUNT = 12


class StageAction:
    """What a stage tells the pipeline to do next."""

    CONTINUE = "continue"  # proceed to the next stage
    CONSUME = "consume"    # packet fully handled (forwarded/dropped by stage)
    FALLTHROUGH = "fallthrough"  # stop the pipeline; let default forwarding run


class Stage:
    """One match-action stage: a memory share plus a packet handler."""

    def __init__(self, name: str, index: int, memory_share_bytes: int) -> None:
        self.name = name
        self.index = index
        self.memory = MemoryBudget(memory_share_bytes)
        self.handler: Optional[Callable[[Packet, str], str]] = None
        self.objects: Dict[str, Any] = {}
        self.packets_seen = 0
        #: Stage-occupancy counter, bound by Pipeline.add_stage once the
        #: stage is claimed (a no-op singleton until then / when metrics
        #: are off).
        self._occupancy = NULL_COUNTER

    # Object factories: allocate from *this stage's* share. --------------
    def register_array(self, name: str, size: int, width_bytes: int, initial: Any = 0) -> RegisterArray:
        obj = RegisterArray(name, size, width_bytes, self.memory, initial=initial)
        self.objects[name] = obj
        return obj

    def match_table(self, name: str, max_entries: int, key_bytes: int, value_bytes: int) -> MatchTable:
        obj = MatchTable(name, max_entries, key_bytes, value_bytes, self.memory)
        self.objects[name] = obj
        return obj

    def meter(self, name: str, size: int, rate_bps: float = 1e9, burst_bytes: int = 64 * 1024) -> Meter:
        obj = Meter(name, size, self.memory, rate_bps=rate_bps, burst_bytes=burst_bytes)
        self.objects[name] = obj
        return obj

    def counter(self, name: str, size: int) -> Counter:
        obj = Counter(name, size, self.memory)
        self.objects[name] = obj
        return obj

    def set_handler(self, handler: Callable[[Packet, str], str]) -> None:
        """Handler returns a :class:`StageAction` constant."""
        self.handler = handler

    def process(self, packet: Packet, from_node: str) -> str:
        self.packets_seen += 1
        self._occupancy.inc()
        if self.handler is None:
            return StageAction.CONTINUE
        return self.handler(packet, from_node)


class Pipeline:
    """A fixed-depth sequence of stages with per-stage memory shares."""

    def __init__(
        self,
        switch: "PisaSwitch",
        num_stages: int = DEFAULT_STAGE_COUNT,
        name: str = "pipeline",
    ) -> None:
        if num_stages <= 0:
            raise ValueError("pipeline must have at least one stage")
        self.switch = switch
        self.name = name
        self.num_stages = num_stages
        # The stage share is carved out of the switch budget up front;
        # objects then allocate inside their stage's share.
        share = switch.memory.free_bytes // num_stages
        switch.memory.allocate(f"pipeline:{name}", share * num_stages)
        self.stages: List[Stage] = [
            Stage(f"{name}.stage{i}", i, share) for i in range(num_stages)
        ]
        self._next_free = 0

    def add_stage(self, stage_name: str) -> Stage:
        """Claim the next free stage; raises when the pipeline is full."""
        if self._next_free >= self.num_stages:
            raise OutOfSwitchMemory(0, 0, f"pipeline {self.name}: no stages left")
        stage = self.stages[self._next_free]
        stage.name = f"{self.name}.{stage_name}"
        stage._occupancy = self.switch.metrics.counter(
            "pipeline.stage_packets", f"{self.switch.name}:{stage.name}"
        )
        self._next_free += 1
        return stage

    def process(self, packet: Packet, from_node: str) -> str:
        """Run the packet through claimed stages in order."""
        for stage in self.stages[: self._next_free]:
            action = stage.process(packet, from_node)
            if action == StageAction.CONTINUE:
                continue
            return action
        return StageAction.FALLTHROUGH

    def as_handler(self) -> Callable[[Packet, str], bool]:
        """Adapt to the switch handler interface (True = consumed)."""

        def handler(packet: Packet, from_node: str) -> bool:
            return self.process(packet, from_node) == StageAction.CONSUME

        return handler

    def memory_used(self) -> int:
        return sum(stage.memory.used_bytes for stage in self.stages)
