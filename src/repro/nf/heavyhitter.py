"""Network-wide heavy-hitter detection (paper section 8, related work).

"Harrison et al. propose a distributed heavy-hitters detection
algorithm that minimizes the communication overheads between the
switches and the controller.  Switches maintain local counters and use
them to trigger updates to a centralized controller.  SwiShmem can be
used to implement similar algorithms while eliminating the need for a
centralized controller, thus potentially providing faster response."

Two implementations of the same detector, for the N5 comparison:

* :class:`HeavyHitterNF` — the SwiShmem way: per-key **EWO counters**
  shared by all switches; every switch sees the (eventually consistent)
  global count on every packet and declares a heavy hitter locally the
  moment the merged count crosses the threshold.  No controller in the
  loop.

* :class:`ControllerHeavyHitterNF` — the Harrison-style baseline: each
  switch keeps *local* counters and reports to a central
  :class:`HeavyHitterCoordinator` whenever a local count crosses the
  per-switch trigger ``threshold / num_switches`` (their "mule"
  threshold).  The coordinator aggregates reports and declares keys
  heavy.  Reports cost a control-plane op at the switch plus a
  round-trip of coordinator latency, and every report is counted as
  communication overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.nf.base import NetworkFunction

__all__ = ["HeavyHitterNF", "ControllerHeavyHitterNF", "HeavyHitterCoordinator"]


def flow_key(packet) -> Optional[str]:
    """Heavy-hitter key: the source IP (per-source volume)."""
    if packet.ipv4 is None:
        return None
    return packet.ipv4.src


#: DSCP bit marking a packet already counted by a heavy-hitter stage, so
#: a packet crossing several HH switches is counted exactly once.
COUNTED_MARK = 0x10


def claim_count(packet) -> bool:
    """Atomically test-and-set the counted mark; True if we count it."""
    if packet.ipv4.dscp & COUNTED_MARK:
        return False
    packet.ipv4.dscp |= COUNTED_MARK
    return True


class HeavyHitterNF(NetworkFunction):
    """Controller-free heavy hitters on shared EWO counters."""

    NAME = "heavyhitter"

    def __init__(self, manager, handles, *, threshold: int = 100,
                 capacity: int = 4096) -> None:
        super().__init__(manager, handles)
        self.threshold = threshold
        self.counts = handles["hh_counts"]
        #: key -> time this switch first saw the global count cross.
        self.detected: Dict[str, float] = {}

    @classmethod
    def build_specs(cls, *, threshold: int = 100, capacity: int = 4096) -> List[RegisterSpec]:
        return [
            RegisterSpec(
                name="hh_counts",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.COUNTER,
                capacity=capacity,
                key_bytes=4,
                value_bytes=4,
            )
        ]

    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        key = flow_key(ctx.packet)
        if key is None:
            return self.forward()
        if claim_count(ctx.packet):
            total = self.counts.increment(key)
        else:
            total = self.counts.read(key, 0)
        if total >= self.threshold and key not in self.detected:
            self.detected[key] = ctx.now
        return self.forward()


@dataclass
class _Report:
    """One switch -> coordinator report (Harrison-style)."""

    switch: str
    key: str
    count: int
    sent_at: float


class HeavyHitterCoordinator:
    """The centralized controller of the Harrison-style baseline.

    Aggregates per-switch partial counts; a key whose reported sum
    crosses the global threshold is declared heavy.  ``rtt`` models the
    switch-to-controller round trip (the reports travel off the fast
    path).  Every report is tallied as communication overhead — the
    quantity Harrison et al. optimize and SwiShmem eliminates.
    """

    def __init__(self, sim, threshold: int, rtt: float = 500e-6) -> None:
        self.sim = sim
        self.threshold = threshold
        self.rtt = rtt
        self._partials: Dict[str, Dict[str, int]] = {}
        self.detected: Dict[str, float] = {}
        self.reports_received = 0
        self.report_bytes = 0

    def submit_report(self, report: _Report) -> None:
        """Called by a switch's control plane; applied after rtt/2."""
        self.sim.schedule(self.rtt / 2, self._apply, report, label="hh-report")

    def _apply(self, report: _Report) -> None:
        self.reports_received += 1
        self.report_bytes += 4 + 4 + 4  # key + count + switch id
        partials = self._partials.setdefault(report.key, {})
        partials[report.switch] = report.count
        total = sum(partials.values())
        if total >= self.threshold and report.key not in self.detected:
            self.detected[report.key] = self.sim.now


class ControllerHeavyHitterNF(NetworkFunction):
    """Harrison-style baseline: local counters + controller reports."""

    NAME = "heavyhitter-controller"

    def __init__(self, manager, handles, *, threshold: int = 100,
                 coordinator: HeavyHitterCoordinator = None,
                 num_switches: Optional[int] = None,
                 capacity: int = 4096) -> None:
        super().__init__(manager, handles)
        if coordinator is None:
            raise ValueError("the controller baseline needs a coordinator")
        self.threshold = threshold
        self.coordinator = coordinator
        count = num_switches or len(manager.deployment.switch_names)
        #: per-switch trigger: report when the local share crosses T/N
        self.local_trigger = max(1, threshold // count)
        self._local: Dict[str, int] = {}
        #: next local count at which to re-report a key
        self._next_report: Dict[str, int] = {}
        self.reports_sent = 0

    @classmethod
    def build_specs(cls, **kwargs) -> List[RegisterSpec]:
        return []  # all state is switch-local; that is the point

    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        key = flow_key(ctx.packet)
        if key is None or not claim_count(ctx.packet):
            return self.forward()
        count = self._local.get(key, 0) + 1
        self._local[key] = count
        if count >= self._next_report.get(key, self.local_trigger):
            self._next_report[key] = count + self.local_trigger
            self.reports_sent += 1
            report = _Report(
                switch=ctx.switch_name, key=key, count=count, sent_at=ctx.now
            )
            # the report leaves via the switch control plane
            self.manager.switch.control.submit(
                self.coordinator.submit_report, report, label="hh-report"
            )
        return self.forward()
