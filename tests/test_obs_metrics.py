"""Tests for the observability layer: metric instruments, the registry
(snapshot / merge / JSONL export), the no-op null registry, the tracer's
ring-buffer bound, the sim profiler, and agreement between a live
metrics snapshot and the chaos invariant suite's verdicts."""

from __future__ import annotations

import pytest

from repro.chaos import FaultInjector, InvariantSuite
from repro.core.registers import Consistency, RegisterSpec
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    load_jsonl,
    registry_from_records,
)
from repro.obs.dashboard import render_registry
from repro.obs.profiler import SimProfiler
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("pkts", "s0")
        c.inc()
        c.inc(41)
        assert c.value == 42
        assert c.as_dict() == {
            "kind": "counter", "name": "pkts", "node": "s0", "value": 42
        }

    def test_gauge_tracks_high_water(self):
        g = Gauge("depth", "s0")
        g.set(3)
        g.dec()
        assert (g.value, g.max_value) == (2, 3)
        g.inc(5)
        assert (g.value, g.max_value) == (7, 7)
        g.dec(10)  # dec never moves the high-water mark
        assert (g.value, g.max_value) == (-3, 7)

    def test_histogram_buckets_and_percentiles(self):
        h = Histogram("lat", "s0", bounds=(1.0, 2.0, 5.0))
        for v in (0.5, 1.5, 1.8, 4.0, 9.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(16.8)
        assert (h.min, h.max) == (0.5, 9.0)
        assert h.buckets == [1, 2, 1]
        assert h.overflow == 1
        # p50 interpolates within the bucket holding the median: rank
        # 2.5 is 0.75 of the way through the two samples in (1, 2].
        assert h.p50 == pytest.approx(1.75)
        # The first bucket's lower edge is the tracked minimum.
        assert h.percentile(0.1) == pytest.approx(0.75)
        # p99/p999 land in the overflow bucket and interpolate between
        # the last bound and the observed maximum.
        assert h.p99 == pytest.approx(8.8)
        assert h.p999 == pytest.approx(8.98)
        assert h.percentile(1.0) == 9.0
        assert h.mean == pytest.approx(16.8 / 5)

    def test_histogram_empty_percentile_is_zero(self):
        h = Histogram("lat", bounds=(1.0,))
        assert h.p50 == 0.0
        assert h.as_dict()["min"] == 0.0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("lat", bounds=())
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", bounds=(1.0,)).percentile(1.5)


class TestRegistry:
    def test_instruments_are_deduplicated(self):
        reg = MetricsRegistry()
        assert reg.counter("a", "s0") is reg.counter("a", "s0")
        assert reg.counter("a", "s0") is not reg.counter("a", "s1")
        # same name under a different kind is a distinct instrument
        reg.gauge("a", "s0")
        assert len(reg) == 3

    def test_get_and_value(self):
        reg = MetricsRegistry()
        reg.counter("a", "s0").inc(7)
        assert reg.value("counter", "a", "s0") == 7
        assert reg.value("counter", "missing", default=-1) == -1
        assert reg.get("gauge", "a", "s0") is None

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c", "s0").inc()
        reg.gauge("g", "s0").set(2)
        reg.histogram("h", "s0").observe(1e-6)
        snap = reg.snapshot()
        assert [r["name"] for r in snap["counters"]] == ["c"]
        assert [r["name"] for r in snap["gauges"]] == ["g"]
        assert snap["histograms"][0]["count"] == 1

    def test_jsonl_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c", "s0").inc(3)
        reg.histogram("h", "s1", bounds=(1.0, 2.0)).observe(1.5)
        path = str(tmp_path / "metrics.jsonl")
        assert reg.write_jsonl(path) == 2
        records = load_jsonl(path)
        by_name = {r["name"]: r for r in records}
        assert by_name["c"]["value"] == 3
        assert by_name["h"]["buckets"] == [0, 1]

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(5)
        b.gauge("g").set(3)
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.value("counter", "c") == 3
        assert a.value("gauge", "g") == 5
        merged = a.get("histogram", "h")
        assert merged.count == 2
        assert merged.buckets == [1, 1]
        assert (merged.min, merged.max) == (0.5, 1.5)

    def test_jsonl_reload_merge_snapshot_round_trip(self, tmp_path):
        """The multi-run aggregation pipeline: write_jsonl -> load_jsonl
        -> registry_from_records -> merge -> snapshot reproduces what a
        single registry holding both runs would report."""
        run1, run2 = MetricsRegistry(), MetricsRegistry()
        for run, factor in ((run1, 1), (run2, 10)):
            run.counter("pkts", "s0").inc(3 * factor)
            run.gauge("depth", "s0").set(2 * factor)
            run.histogram("lat", "s0", bounds=(1.0, 2.0)).observe(0.5 * factor)
        paths = []
        for i, run in enumerate((run1, run2)):
            path = str(tmp_path / f"run{i}.jsonl")
            run.write_jsonl(path)
            paths.append(path)

        merged = registry_from_records(load_jsonl(paths[0]))
        merged.merge(registry_from_records(load_jsonl(paths[1])))

        assert merged.value("counter", "pkts", "s0") == 33
        gauge = merged.get("gauge", "depth", "s0")
        assert (gauge.value, gauge.max_value) == (20, 20)
        hist = merged.get("histogram", "lat", "s0")
        assert hist.count == 2
        assert (hist.min, hist.max) == (0.5, 5.0)
        assert hist.buckets == [1, 0]
        assert hist.overflow == 1
        # snapshots of the reconstruction and a directly merged registry
        # are byte-identical
        direct = run1.merge(run2)
        assert merged.snapshot() == direct.snapshot()

    def test_reloaded_empty_histogram_does_not_clobber_min(self, tmp_path):
        """An empty histogram serializes min as 0.0; reloading must
        restore the live sentinel so later merges keep the real
        minimum."""
        empty = MetricsRegistry()
        empty.histogram("lat", "s0", bounds=(1.0,))
        path = str(tmp_path / "empty.jsonl")
        empty.write_jsonl(path)

        restored = registry_from_records(load_jsonl(path))
        real = MetricsRegistry()
        real.histogram("lat", "s0", bounds=(1.0,)).observe(0.25)
        restored.merge(real)
        hist = restored.get("histogram", "lat", "s0")
        assert (hist.min, hist.max) == (0.25, 0.25)
        # and merging the empty side into the real side is also safe
        real2 = MetricsRegistry()
        real2.histogram("lat", "s0", bounds=(1.0,)).observe(0.25)
        real2.merge(registry_from_records(load_jsonl(path)))
        assert real2.get("histogram", "lat", "s0").min == 0.25

    def test_registry_from_records_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            registry_from_records([{"kind": "sketch", "name": "x", "node": "s0"}])

    def test_merge_rejects_differing_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0,))
        b.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_dashboard_renders_names(self):
        reg = MetricsRegistry()
        reg.counter("switch.rx_packets", "s0").inc(9)
        reg.histogram("sro.write_commit_latency_seconds", "s0").observe(30e-6)
        text = render_registry(reg, title="t")
        assert "switch.rx_packets" in text
        assert "sro.write_commit_latency_seconds" in text


class TestNullRegistry:
    def test_factories_return_shared_singletons(self):
        assert NULL_REGISTRY.counter("anything", "s0") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("anything") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("anything") is NULL_HISTOGRAM
        assert not NULL_REGISTRY.enabled

    def test_null_instruments_record_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(100)
        NULL_HISTOGRAM.observe(100.0)
        assert NULL_COUNTER.value == 0
        assert (NULL_GAUGE.value, NULL_GAUGE.max_value) == (0, 0)
        assert NULL_HISTOGRAM.count == 0

    def test_null_registry_stays_empty(self):
        NULL_REGISTRY.counter("x", "s0")
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": [], "gauges": [], "histograms": []
        }


class TestTracerRing:
    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(5):
            tracer.emit(float(i), "cat", "s0", f"m{i}")
        assert len(tracer) == 5
        assert tracer.evictions == 0

    def test_ring_evicts_oldest(self):
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.emit(float(i), "cat", "s0", f"m{i}")
        assert len(tracer) == 3
        assert tracer.evictions == 2
        assert [r.message for r in tracer.records] == ["m2", "m3", "m4"]

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)


class _FakeClock:
    """Deterministic clock: each reading advances by ``tick``."""

    def __init__(self, tick: float = 0.5) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value


class TestProfiler:
    def test_attributes_wall_time_to_labels(self):
        sim = Simulator()
        profiler = SimProfiler(clock=_FakeClock()).install(sim)
        assert sim.profiler is profiler

        def unlabeled() -> None:
            pass

        sim.schedule(1e-6, lambda: None, label="tick")
        sim.schedule(2e-6, lambda: None, label="tick")
        sim.schedule(3e-6, unlabeled)
        sim.run()
        assert profiler.events_profiled == 3
        # the fake clock makes every dispatch cost exactly one tick
        tick = profiler.stats("tick")
        assert tick.events == 2
        assert tick.wall_seconds == pytest.approx(1.0)
        assert tick.mean_seconds == pytest.approx(0.5)
        # unlabeled events fall back to the callback's qualified name
        assert profiler.stats(unlabeled.__qualname__).events == 1
        assert profiler.top(1)[0].label == "tick"
        assert "tick" in profiler.report()
        profiler.uninstall(sim)
        assert sim.profiler is None

    def test_sim_runs_identically_with_profiler(self):
        def run(profiled: bool) -> list:
            sim = Simulator()
            if profiled:
                SimProfiler(clock=_FakeClock()).install(sim)
            order = []
            sim.schedule(2e-6, lambda: order.append("b"))
            sim.schedule(1e-6, lambda: order.append("a"))
            sim.run()
            return order

        assert run(False) == run(True) == ["a", "b"]


class TestChaosAgreement:
    """A live metrics snapshot must agree with the invariant suite's own
    bookkeeping and with the controller's failure log — the property the
    chaos-soak benchmark asserts end to end."""

    def test_snapshot_matches_invariant_verdicts(self, make_deployment):
        registry = MetricsRegistry()
        dep, _, _ = make_deployment(4, metrics=registry)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=64))
        suite = InvariantSuite(dep).start(period=1e-3)
        injector = FaultInjector(dep, seed=5)
        injector.crash(3e-3, "s2")

        counter = [0]

        def workload() -> None:
            i = counter[0]
            counter[0] += 1
            dep.manager("s0").register_write(spec, f"k{i % 8}", i)
            if dep.sim.now < 20e-3:
                dep.sim.schedule(250e-6, workload)

        dep.sim.schedule(1e-3, workload)
        dep.sim.run(until=0.04)
        report = suite.finalize()

        assert report.ok
        # check / violation counters mirror the report exactly
        for monitor, checks in report.checks.items():
            assert registry.value(
                "counter", f"invariant.{monitor}.checks", "invariants"
            ) == checks
            assert registry.value(
                "counter", f"invariant.{monitor}.violations", "invariants"
            ) == report.count(monitor)
        assert registry.value(
            "counter", "invariant.commits_observed", "invariants"
        ) == len(suite.commit_times) > 0

        # the detection-latency histogram saw exactly the real failures
        real = [e for e in dep.controller.failures if not e.false_positive]
        assert real  # the crash was detected
        hist = registry.get(
            "histogram", "controller.detection_latency_seconds", "controller"
        )
        assert hist.count == len(real)
        assert hist.sum == pytest.approx(sum(e.detection_latency for e in real))
        assert registry.value(
            "counter", "controller.failures_detected", "controller"
        ) == len(dep.controller.failures)

        # hot-path instrumentation saw traffic
        assert registry.value("counter", "state.writes", "s0") == counter[0]
        commit_hist = registry.get(
            "histogram", "sro.write_commit_latency_seconds", "s0"
        )
        assert commit_hist is not None and commit_hist.count > 0

    def test_disabled_metrics_leave_no_instruments(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        dep.sim.run(until=5e-3)
        assert dep.metrics is NULL_REGISTRY
        assert len(NULL_REGISTRY) == 0
