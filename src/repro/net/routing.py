"""Routing: shortest paths, ECMP next-hop selection, and forwarding tables.

Routing here is deliberately simple — the paper treats the fabric's
routing as given — but two aspects matter for the experiments:

* **Multipath / ECMP** (section 3.2): when several equal-cost next hops
  exist, the choice is made by hashing the packet's five-tuple.  The hash
  salt is configurable so experiments can *re-route* flows mid-run (the
  paper's "a flow is routed through a different switch" scenario) by
  changing the salt, emulating adaptive routing or path reassignment
  after a failure.

* **Recomputation on failure** (section 6.3): routes are computed against
  the live adjacency (failed nodes and downed links excluded), so calling
  :meth:`RoutingTable.recompute` after a fault models the controller
  "reprogramming the routing of the failed switch neighbors".
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Dict, List, Optional

from repro.net.packet import Packet
from repro.net.topology import Topology

__all__ = ["RoutingTable", "ecmp_hash", "shortest_paths"]


def shortest_paths(adjacency: Dict[str, List[str]], source: str) -> Dict[str, List[str]]:
    """BFS all-shortest-path next hops from ``source``.

    Returns, for every reachable destination, the sorted list of
    *first hops* that lie on some shortest path — i.e. the ECMP set.
    """
    dist: Dict[str, int] = {source: 0}
    first_hops: Dict[str, set] = {source: set()}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency.get(node, ()):
            candidate = dist[node] + 1
            if neighbor not in dist:
                dist[neighbor] = candidate
                first_hops[neighbor] = (
                    {neighbor} if node == source else set(first_hops[node])
                )
                queue.append(neighbor)
            elif candidate == dist[neighbor]:
                extra = {neighbor} if node == source else first_hops[node]
                first_hops[neighbor] |= extra
    return {dst: sorted(hops) for dst, hops in first_hops.items() if dst != source}


def ecmp_hash(packet: Packet, salt: int = 0) -> int:
    """Deterministic flow hash: equal for all packets of one five-tuple.

    Uses SHA-1 over the five-tuple plus a salt so that the mapping is
    stable across runs but can be perturbed (path reassignment) by
    changing the salt.
    """
    tup = packet.five_tuple()
    if tup is not None:
        key = f"{salt}:{tup.as_tuple()}"
    elif packet.swishmem is not None:
        # Protocol packets have no five-tuple; hash the replication
        # "flow" (op, group, destination) instead.  Never hash the uid:
        # it is a module-global counter, so two otherwise identical runs
        # in one process would pick different ECMP paths — breaking the
        # guarantee that a chaos run is a pure function of its seed.
        sw = packet.swishmem
        key = f"{salt}:sw:{sw.op.value}:{sw.register_group}:{sw.dst_node}"
    else:
        key = f"{salt}:none"
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class RoutingTable:
    """Per-node next-hop table over a topology, with ECMP.

    One instance is shared by all nodes of a topology (it is effectively
    the fabric's routing state).  Nodes ask :meth:`next_hop` where to send
    a packet for a destination node name.
    """

    def __init__(self, topo: Topology, ecmp_salt: int = 0) -> None:
        self.topo = topo
        self.ecmp_salt = ecmp_salt
        #: node -> destination -> list of equal-cost first hops
        self._tables: Dict[str, Dict[str, List[str]]] = {}
        self.recompute()

    def recompute(self) -> None:
        """Rebuild all tables from the current live adjacency."""
        adjacency = self.topo.adjacency()
        self._tables = {
            node: shortest_paths(adjacency, node) for node in adjacency
        }

    def hops_for(self, node: str, destination: str) -> List[str]:
        """All equal-cost next hops from ``node`` toward ``destination``."""
        return self._tables.get(node, {}).get(destination, [])

    def next_hop(self, node: str, destination: str, packet: Optional[Packet] = None) -> Optional[str]:
        """Pick the next hop; ECMP ties broken by flow hash.

        Returns None when the destination is unreachable from ``node``
        (the packet should then be dropped).
        """
        hops = self.hops_for(node, destination)
        if not hops:
            return None
        if len(hops) == 1 or packet is None:
            return hops[0]
        return hops[ecmp_hash(packet, self.ecmp_salt) % len(hops)]

    def path(self, source: str, destination: str, packet: Optional[Packet] = None) -> List[str]:
        """Full hop-by-hop path a packet would take (for tests/analysis)."""
        path = [source]
        current = source
        seen = {source}
        while current != destination:
            nxt = self.next_hop(current, destination, packet)
            if nxt is None or nxt in seen:
                return []
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return path

    def set_salt(self, salt: int) -> None:
        """Change the ECMP salt, re-assigning flows to paths."""
        self.ecmp_salt = salt
