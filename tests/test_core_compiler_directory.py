"""Tests for the compiler (distribute + profiler) and directory service."""

from __future__ import annotations

import pytest

from repro.core.compiler import (
    AccessProfile,
    AccessProfiler,
    SingleSwitchProgram,
    distribute,
    recommend_consistency,
)
from repro.core.directory import DirectoryService
from repro.core.manager import Decision
from repro.core.merge import (
    is_mergeable,
    merge_counter_vectors,
    merge_last_writer_wins,
    merge_value,
)
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.crdt.clock import Timestamp
from repro.crdt.gcounter import GCounter
from repro.sketch.bloom import BloomFilter
from repro.sketch.countmin import CountMinSketch


class CountingProgram(SingleSwitchProgram):
    """A one-big-switch program: count every packet, read a config flag."""

    def registers(self):
        return [
            RegisterSpec("hits", Consistency.EWO, ewo_mode=EwoMode.COUNTER),
            RegisterSpec("config", Consistency.SRO),
        ]

    def process(self, ctx, handles):
        handles["hits"].increment("total")
        handles["config"].read("mode")
        return Decision.forward()


class TestDistribute:
    def test_program_instantiated_per_switch(self, deployment):
        adapters = distribute(CountingProgram, deployment)
        assert len(adapters) == 3
        programs = {id(a.program) for a in adapters}
        assert len(programs) == 3  # distinct instances

    def test_registers_shared_across_instances(self, deployment):
        distribute(CountingProgram, deployment)
        spec = deployment.spec_by_name("hits")
        deployment.manager("s0").register_increment(spec, "total", 3)
        deployment.sim.run(until=0.01)
        assert all(s["total"] == 3 for s in deployment.ewo_states(spec))


class TestAccessProfile:
    def test_frequency_labels_match_table1_vocabulary(self):
        every_packet = AccessProfile("sketch", reads=100, writes=100, packets=100)
        assert every_packet.frequency_label() == ("Every packet", "Every packet")
        connection_table = AccessProfile("nat", reads=100, writes=5, packets=100)
        assert connection_table.frequency_label() == ("New connection", "Every packet")
        idle = AccessProfile("sig", reads=0, writes=0, packets=100)
        assert idle.frequency_label() == ("Low", "Low")

    def test_rates(self):
        profile = AccessProfile("x", reads=50, writes=25, packets=100)
        assert profile.reads_per_packet == 0.5
        assert profile.writes_per_packet == 0.25
        assert profile.write_fraction == pytest.approx(1 / 3)

    def test_zero_packets_safe(self):
        profile = AccessProfile("x")
        assert profile.reads_per_packet == 0.0 and profile.write_fraction == 0.0


class TestRecommendation:
    def test_write_intensive_goes_ewo(self):
        profile = AccessProfile("sketch", reads=100, writes=100, packets=100, needs_strong=False)
        assert recommend_consistency(profile) is Consistency.EWO

    def test_write_intensive_goes_ewo_even_if_strong_desired(self):
        """Observation 2: strong + frequent writes is not offered; the
        recommendation follows the paper and picks EWO."""
        profile = AccessProfile("x", reads=10, writes=100, packets=100, needs_strong=True)
        assert recommend_consistency(profile) is Consistency.EWO

    def test_read_intensive_strong_goes_sro(self):
        profile = AccessProfile("nat", reads=100, writes=2, packets=100, needs_strong=True)
        assert recommend_consistency(profile) is Consistency.SRO

    def test_read_intensive_weak_goes_ero(self):
        profile = AccessProfile("ips", reads=100, writes=1, packets=100, needs_strong=False)
        assert recommend_consistency(profile) is Consistency.ERO


class TestProfiler:
    def test_profiles_measure_accesses(self, deployment):
        spec = deployment.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        profiler = AccessProfiler(deployment)
        manager = deployment.manager("s0")
        for _ in range(10):
            manager.register_increment(spec, "k", 1)
        for _ in range(5):
            manager.register_read(spec, "k", None)
        profiles = profiler.profiles()
        ctr = next(p for p in profiles if p.group_name == "ctr")
        assert ctr.writes == 10 and ctr.reads == 5

    def test_begin_resets_baseline(self, deployment):
        spec = deployment.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        profiler = AccessProfiler(deployment)
        deployment.manager("s0").register_increment(spec, "k", 1)
        profiler.begin()
        profiles = profiler.profiles()
        assert profiles[0].writes == 0

    def test_needs_strong_override(self, deployment):
        deployment.declare(RegisterSpec("sig", Consistency.ERO))
        profiler = AccessProfiler(deployment)
        profiles = profiler.profiles(needs_strong={"sig": False})
        assert profiles[0].needs_strong is False


class TestMergeHelpers:
    def test_lww_merge(self):
        newer = ("new", Timestamp(2.0, 0, 1))
        older = ("old", Timestamp(1.0, 0, 0))
        assert merge_last_writer_wins(older, newer)[0] == "new"
        assert merge_last_writer_wins(newer, older)[0] == "new"

    def test_counter_vector_merge(self):
        assert merge_counter_vectors([1, 5, 0], [3, 2, 4]) == [3, 5, 4]
        with pytest.raises(ValueError):
            merge_counter_vectors([1], [1, 2])

    def test_is_mergeable(self):
        assert is_mergeable(CountMinSketch())
        assert is_mergeable(BloomFilter())
        assert is_mergeable(GCounter(2, 0))
        assert not is_mergeable(42)

    def test_merge_value_dispatch(self):
        a, b = CountMinSketch(seed=1), CountMinSketch(seed=1)
        b.add("x", 3)
        merge_value(a, b)
        assert a.estimate("x") == 3

        bloom_a, bloom_b = BloomFilter(seed=1), BloomFilter(seed=1)
        bloom_b.add("y")
        merge_value(bloom_a, bloom_b)
        assert "y" in bloom_a

        counter_a, counter_b = GCounter(2, 0), GCounter(2, 1)
        counter_b.increment(4)
        merge_value(counter_a, counter_b)
        assert counter_a.value() == 4

        with pytest.raises(TypeError):
            merge_value(1, 2)


class TestDirectory:
    def _directory(self):
        return DirectoryService(["s0", "s1", "s2", "s3"])

    def test_default_placement_is_everywhere(self):
        directory = self._directory()
        assert directory.replicas_of(1, "k") == frozenset({"s0", "s1", "s2", "s3"})
        assert directory.is_replica(1, "k", "s2")

    def test_explicit_placement(self):
        directory = self._directory()
        directory.place(1, "k", ["s0", "s1"])
        assert directory.replicas_of(1, "k") == frozenset({"s0", "s1"})
        assert not directory.is_replica(1, "k", "s3")

    def test_placement_validation(self):
        directory = self._directory()
        with pytest.raises(ValueError):
            directory.place(1, "k", ["nope"])
        with pytest.raises(ValueError):
            directory.place(1, "k", [])
        with pytest.raises(ValueError):
            DirectoryService([])

    def test_migration_records_generations(self):
        directory = self._directory()
        directory.place(1, "k", ["s0", "s1"])
        record = directory.migrate(1, "k", ["s2", "s3"])
        assert record.before == frozenset({"s0", "s1"})
        assert record.after == frozenset({"s2", "s3"})
        assert record.generation == 1
        assert directory.placement(1, "k").generation == 1
        assert len(directory.migrations) == 1

    def test_locality_placement(self):
        directory = self._directory()
        directory.observe_access(1, "hot", "s0")
        directory.observe_access(1, "hot", "s1")
        directory.observe_access(1, "cold", "s3")
        entries = directory.place_by_locality(1, min_replicas=2)
        assert directory.replicas_of(1, "hot") == frozenset({"s0", "s1"})
        # cold was seen by one switch; padded to the fault-tolerance floor
        cold = directory.replicas_of(1, "cold")
        assert "s3" in cold and len(cold) == 2

    def test_locality_floor_validation(self):
        directory = self._directory()
        with pytest.raises(ValueError):
            directory.place_by_locality(1, min_replicas=10)

    def test_memory_savings(self):
        directory = self._directory()
        directory.place(1, "a", ["s0"])
        directory.place(1, "b", ["s0", "s1"])
        full, partial = directory.memory_savings(1, value_bytes=10)
        assert full == 2 * 4 * 10
        assert partial == 3 * 10

    def test_replication_fanout(self):
        directory = self._directory()
        assert directory.replication_fanout(1, "k", "s0") == 3  # full replication
        directory.place(1, "k", ["s0", "s2"])
        assert directory.replication_fanout(1, "k", "s0") == 1
        assert directory.replication_fanout(1, "k", "s1") == 2  # non-replica writer
