#!/usr/bin/env python
"""Quickstart: shared registers across three switches in ~60 lines.

Builds a 3-switch full mesh, declares one register of each SwiShmem
type (SRO / ERO / EWO), and demonstrates their semantics:

* an SRO write blocks (output-buffered) until the chain commits, then
  every switch reads the same value;
* an EWO counter accepts concurrent increments on different switches
  and converges to the exact sum;
* an EWO LWW register resolves concurrent writes to a single winner.

Run:  python examples/quickstart.py
"""

from repro import (
    Consistency,
    EwoMode,
    PisaSwitch,
    RegisterSpec,
    SeededRng,
    Simulator,
    SwiShmemDeployment,
    Topology,
    build_full_mesh,
)


def main() -> None:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed=7))
    switches = build_full_mesh(topo, lambda name: PisaSwitch(name, sim), 3)
    deployment = SwiShmemDeployment(sim, topo, switches)

    # Declare one register group of each type; each is replicated on
    # every switch automatically.
    table = deployment.declare(
        RegisterSpec("conn_table", Consistency.SRO, capacity=1024)
    )
    flags = deployment.declare(
        RegisterSpec("feature_flags", Consistency.ERO, capacity=64)
    )
    hits = deployment.declare(
        RegisterSpec("hit_counter", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
    )

    s0, s1, s2 = (deployment.manager(name) for name in ("s0", "s1", "s2"))

    # --- SRO: strongly consistent writes through the chain -----------
    s0.register_write(table, "flow-42", "server-A")
    sim.run(until=0.01)  # let the chain commit
    for manager in (s0, s1, s2):
        value = manager.register_read(table, "flow-42", None)
        print(f"{manager.switch.name}: conn_table[flow-42] = {value}")
    stats = s0.sro.stats_for(table.group_id)
    print(f"SRO write committed in {stats.mean_write_latency * 1e6:.1f} us\n")

    # --- EWO counter: concurrent increments, exact convergence --------
    s0.register_increment(hits, "GET /", 3)
    s1.register_increment(hits, "GET /", 4)
    s2.register_increment(hits, "GET /", 5)
    sim.run(until=0.02)
    for manager in (s0, s1, s2):
        value = manager.register_read(hits, "GET /", 0)
        print(f"{manager.switch.name}: hit_counter[GET /] = {value}")
    print("(3 + 4 + 5 = 12 — no concurrent increment lost)\n")

    # --- ERO: cheap reads, chain-ordered writes -----------------------
    s2.register_write(flags, "strict_mode", True)
    sim.run(until=0.03)
    print(f"s1 reads feature_flags[strict_mode] = "
          f"{s1.register_read(flags, 'strict_mode', False)}")

    # --- fault tolerance ----------------------------------------------
    deployment.fail_switch("s1")
    sim.run(until=0.04)  # controller detects and repairs the chain
    s0.register_write(table, "flow-43", "server-B")
    sim.run(until=0.06)
    print(f"\nafter s1 failed: chain = "
          f"{deployment.chains[table.group_id].members}")
    print(f"s2 reads conn_table[flow-43] = "
          f"{s2.register_read(table, 'flow-43', None)} (written post-failure)")


if __name__ == "__main__":
    main()
