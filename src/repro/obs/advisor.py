"""Consistency advisor: re-derive Table 1 from observed traffic.

Given a populated :class:`~repro.obs.accessprof.AccessProfiler` and the
number of data packets the hosts injected, :class:`ConsistencyAdvisor`
classifies every register group into the paper's Table 1 taxonomy and
recommends a consistency class — with **zero hand labels**.  Where the
coarse profiler in ``repro.core.compiler`` needs the operator to supply
each group's consistency *requirement* (``needs_strong``), this advisor
infers it from observables the streaming profiler records:

* **write-per-packet** groups (writes on ~every packet) cannot afford
  chain writes — Observation 2 sends them to EWO;
* **mergeable** groups (only commutative increment/set deltas observed)
  converge under EWO merge regardless of write rate;
* **read-heavy** groups whose writes originate in the *data plane* at
  new-connection rate are flow tables: packet-path reads race the
  connection-establishing write, so they need SRO (Observation 1 makes
  the chain affordable);
* **single-writer** groups written rarely and from the *control plane*
  (rule pushes, window tasks) keep the ordered write path but need no
  pending bits — ERO.

The advisor emits one :class:`GroupAdvice` per group, a mismatch report
against the declared classes, and a ranked hot-key list (the input
ROADMAP item 1's migration machinery needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs.accessprof import COMMUTATIVE_OPS, AccessProfiler, GroupProfile

__all__ = [
    "ConsistencyAdvisor",
    "GroupAdvice",
    "PER_PACKET_THRESHOLD",
    "OCCASIONAL_THRESHOLD",
]

#: Accesses-per-packet tier edges, matching the T1 experiment's use of
#: :meth:`repro.core.compiler.AccessProfile.frequency_label`.
PER_PACKET_THRESHOLD = 0.4
OCCASIONAL_THRESHOLD = 0.02


@dataclass
class GroupAdvice:
    """The advisor's verdict on one register group."""

    group_id: int
    name: str
    nf: Optional[str]
    declared: str
    #: Table 1 vocabulary: "Every packet" / "New connection" / "Low".
    write_freq: str
    #: Table 1 vocabulary: "Every packet" / "Every window" / "Low".
    read_freq: str
    #: Taxonomy bucket: write-per-packet / mergeable / read-heavy /
    #: single-writer / idle.
    pattern: str
    recommended: str
    mismatch: bool
    #: "high" when enough writes were observed to judge; "low" verdicts
    #: are excluded from the mismatch report.
    confidence: str
    rationale: str
    single_writer: bool
    mergeable: bool
    shared: bool
    reads: int
    writes: int
    reads_per_packet: float
    writes_per_packet: float
    merge_conflict_rate: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "group": self.group_id,
            "name": self.name,
            "nf": self.nf,
            "declared": self.declared,
            "write_freq": self.write_freq,
            "read_freq": self.read_freq,
            "pattern": self.pattern,
            "recommended": self.recommended,
            "mismatch": self.mismatch,
            "confidence": self.confidence,
            "rationale": self.rationale,
            "single_writer": self.single_writer,
            "mergeable": self.mergeable,
            "shared": self.shared,
            "reads": self.reads,
            "writes": self.writes,
            "reads_per_packet": round(self.reads_per_packet, 6),
            "writes_per_packet": round(self.writes_per_packet, 6),
            "merge_conflict_rate": round(self.merge_conflict_rate, 6),
        }


class ConsistencyAdvisor:
    """Classify profiled register groups and recommend consistency.

    ``packets`` is the observed workload volume (data packets injected
    by the end hosts) — measurement context for the per-packet tiers,
    not a per-group label.
    """

    def __init__(
        self,
        profiler: AccessProfiler,
        packets: int,
        per_packet_threshold: float = PER_PACKET_THRESHOLD,
        occasional_threshold: float = OCCASIONAL_THRESHOLD,
    ) -> None:
        if packets < 0:
            raise ValueError("packets must be non-negative")
        self.profiler = profiler
        self.packets = packets
        self.per_packet_threshold = per_packet_threshold
        self.occasional_threshold = occasional_threshold

    # ------------------------------------------------------------------
    def advise(self) -> List[GroupAdvice]:
        return [
            self._advise_group(self.profiler.groups[group_id])
            for group_id in sorted(self.profiler.groups)
        ]

    def advice_for(self, name: str) -> GroupAdvice:
        return self._advise_group(self.profiler.group(name))

    def mismatches(self) -> List[GroupAdvice]:
        """High-confidence disagreements with the declared classes."""
        return [
            advice
            for advice in self.advise()
            if advice.mismatch and advice.confidence == "high"
        ]

    def hot_keys(self, limit: int = 10) -> List[Dict[str, Any]]:
        return self.profiler.hot_keys(limit=limit)

    def report(self, hot_keys: int = 10) -> Dict[str, Any]:
        """JSON-ready advisory report (what the dashboard renders)."""
        advice = self.advise()
        return {
            "packets": self.packets,
            "groups": [a.as_dict() for a in advice],
            "mismatches": [
                a.as_dict()
                for a in advice
                if a.mismatch and a.confidence == "high"
            ],
            "hot_keys": self.hot_keys(limit=hot_keys),
        }

    # ------------------------------------------------------------------
    def _labels(self, group: GroupProfile) -> tuple:
        """(write freq, read freq) in Table 1's vocabulary.

        Same tiers as :meth:`repro.core.compiler.AccessProfile.
        frequency_label` (duplicated here: importing the compiler would
        cycle through ``core.manager``, which imports this package).
        """
        writes_pp = group.writes / self.packets if self.packets else 0.0
        reads_pp = group.reads / self.packets if self.packets else 0.0
        write_freq = (
            "Every packet" if writes_pp >= self.per_packet_threshold
            else "New connection" if writes_pp >= self.occasional_threshold
            else "Low"
        )
        read_freq = (
            "Every packet" if reads_pp >= self.per_packet_threshold
            else "Every window" if reads_pp > 0.0
            else "Low"
        )
        return write_freq, read_freq, writes_pp, reads_pp

    def _advise_group(self, group: GroupProfile) -> GroupAdvice:
        write_freq, read_freq, writes_pp, reads_pp = self._labels(group)
        single_writer = group.writer_nodes <= 1
        shared = group.sharing_nodes >= 2
        mergeable = group.writes > 0 and group.commutative_write_fraction >= 1.0

        if group.writes == 0 and group.reads == 0:
            pattern, recommended = "idle", group.declared
            confidence = "low"
            rationale = "no accesses observed; keeping the declared class"
        elif write_freq == "Every packet":
            pattern, recommended = "write-per-packet", "ewo"
            confidence = "high"
            rationale = (
                f"writes on ~every packet ({writes_pp:.2f}/pkt) cannot afford "
                f"chain replication (Observation 2)"
            )
        elif mergeable:
            pattern, recommended = "mergeable", "ewo"
            confidence = "high"
            rationale = (
                "all observed writes are commutative deltas "
                f"({', '.join(sorted(set(group.ops) & COMMUTATIVE_OPS))}); "
                "EWO merge converges without ordering"
            )
        elif (
            read_freq == "Every packet"
            and write_freq != "Low"
            and group.dataplane_write_fraction > 0.5
        ):
            pattern, recommended = "read-heavy", "sro"
            confidence = "high"
            rationale = (
                f"packet-path reads ({reads_pp:.2f}/pkt) race data-plane "
                f"writes at new-connection rate ({writes_pp:.3f}/pkt); "
                "infrequent writes make the chain affordable (Observation 1)"
            )
        elif group.writes > 0:
            pattern = "single-writer" if single_writer else "read-heavy"
            recommended = "ero"
            confidence = "high"
            origin = (
                "control-plane"
                if group.writes_control >= group.writes_dataplane
                else "low-rate data-plane"
            )
            rationale = (
                f"read-dominated with {origin} writes "
                f"({writes_pp:.5f}/pkt); ordered write path suffices, "
                "pending bits buy nothing"
            )
        else:
            pattern, recommended = "read-heavy", "ero"
            confidence = "low"
            rationale = "never written during the observation; reads are safe anywhere"

        return GroupAdvice(
            group_id=group.group_id,
            name=group.name,
            nf=group.nf,
            declared=group.declared,
            write_freq=write_freq,
            read_freq=read_freq,
            pattern=pattern,
            recommended=recommended,
            mismatch=recommended != group.declared,
            confidence=confidence,
            rationale=rationale,
            single_writer=single_writer,
            mergeable=mergeable,
            shared=shared,
            reads=group.reads,
            writes=group.writes,
            reads_per_packet=reads_pp,
            writes_per_packet=writes_pp,
            merge_conflict_rate=group.merge_conflict_rate,
        )
