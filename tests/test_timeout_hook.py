"""The per-test wall-clock timeout installed by ``tests/conftest.py``.

Runs a throwaway pytest session in a subprocess (reusing this suite's
conftest) so the SIGALRM hook is exercised end to end: a hung test must
fail with ``TimeoutError`` instead of wedging the session, and a fast
test must be untouched by an armed timer.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_mini_suite(tmp_path, test_body, timeout_flag):
    with open(os.path.join(REPO_ROOT, "tests", "conftest.py")) as fh:
        (tmp_path / "conftest.py").write_text(fh.read())
    (tmp_path / "test_mini.py").write_text(test_body)
    env = os.environ.copy()
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [
            sys.executable, "-m", "pytest", "test_mini.py", "-q",
            "-p", "no:cacheprovider", timeout_flag,
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )


def test_hung_test_fails_with_timeout(tmp_path):
    proc = _run_mini_suite(
        tmp_path,
        "import time\n\ndef test_hang():\n    time.sleep(30)\n",
        "--per-test-timeout=0.5",
    )
    assert proc.returncode != 0
    assert "TimeoutError" in proc.stdout
    assert "exceeded --per-test-timeout" in proc.stdout


def test_fast_test_unaffected_by_armed_timer(tmp_path):
    proc = _run_mini_suite(
        tmp_path,
        "import time\n\ndef test_quick():\n    time.sleep(0.05)\n",
        "--per-test-timeout=5",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_zero_disables_enforcement(tmp_path):
    proc = _run_mini_suite(
        tmp_path,
        "import time\n\ndef test_slowish():\n    time.sleep(0.2)\n",
        "--per-test-timeout=0",
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
