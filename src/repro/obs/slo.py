"""Live SLO monitoring: declarative objectives over streaming sim-time
metrics.

An :class:`SLOMonitor` evaluates objectives written in a small
declarative grammar against samples the protocol hot paths feed it::

    monitor = SLOMonitor()
    monitor.add_objective("sro.write_commit p99 < 5ms over 100ms windows")
    monitor.add_objective("sro.write availability >= 0.999 over 100ms windows")
    deployment = SwiShmemDeployment(sim, topo, nodes, slo_monitor=monitor)
    ...
    sim.run(until=0.5)
    monitor.finalize(sim.now)
    print(render_slo(monitor.as_dict()))

Latency objectives aggregate each tumbling window into a fixed-bucket
:class:`~repro.obs.metrics.Histogram` (bounded memory, interpolated
percentiles); availability objectives track ok/failure event counts.
When a window closes, every objective over that metric is evaluated
once; a miss appends a structured breach event (JSON-ready dict) to
:attr:`SLOMonitor.breaches`, which the chaos invariant machinery and
bench sidecars consume directly.  Per objective the monitor tracks the
burn rate (breached windows / evaluated windows) and a worst-observed
watermark.

Digest neutrality is the same contract as the rest of ``repro.obs``:
hooks only mutate monitor-internal state — no events are scheduled, no
RNG streams are drawn, and windows roll lazily off the sim clock the
caller carries.  An instrumented chaos replay stays byte-identical per
seed, and :data:`NULL_SLO_MONITOR` (the deployment default) reduces
every hook to one cached attribute check.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, Histogram

__all__ = [
    "SLOObjective",
    "SLOMonitor",
    "NullSLOMonitor",
    "NULL_SLO_MONITOR",
    "parse_objective",
]

#: ``<metric> <stat> <op> <threshold>[unit] over <window>[unit] windows``
_OBJECTIVE_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z0-9_.]+)\s+"
    r"(?P<stat>p50|p90|p99|p999|max|mean|count|availability)\s+"
    r"(?P<op><=|>=|<|>)\s+"
    r"(?P<threshold>[0-9.]+(?:e-?[0-9]+)?)\s*(?P<unit>ns|us|ms|s)?\s+"
    r"over\s+(?P<window>[0-9.]+(?:e-?[0-9]+)?)\s*(?P<wunit>ns|us|ms|s)?\s+"
    r"windows\s*$"
)

_UNIT_SCALE = {None: 1.0, "ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}

_OPS = {
    "<": lambda observed, threshold: observed < threshold,
    "<=": lambda observed, threshold: observed <= threshold,
    ">": lambda observed, threshold: observed > threshold,
    ">=": lambda observed, threshold: observed >= threshold,
}


def parse_objective(spec: str) -> Tuple[str, str, str, float, float]:
    """Parse one declarative objective.

    Returns ``(metric, stat, op, threshold, window_seconds)``; raises
    :class:`ValueError` on anything the grammar does not cover.
    """
    match = _OBJECTIVE_RE.match(spec)
    if match is None:
        raise ValueError(
            f"unparseable SLO objective {spec!r}; expected "
            f"'<metric> <p50|p90|p99|p999|max|mean|count|availability> "
            f"<op> <value>[unit] over <window>[unit] windows'"
        )
    threshold = float(match.group("threshold")) * _UNIT_SCALE[match.group("unit")]
    window = float(match.group("window")) * _UNIT_SCALE[match.group("wunit")]
    if window <= 0:
        raise ValueError(f"SLO window must be positive in {spec!r}")
    return (
        match.group("metric"),
        match.group("stat"),
        match.group("op"),
        threshold,
        window,
    )


class SLOObjective:
    """One parsed objective plus its evaluation state."""

    __slots__ = (
        "spec",
        "metric",
        "stat",
        "op",
        "threshold",
        "window",
        "windows_evaluated",
        "windows_breached",
        "worst_value",
        "worst_window_start",
    )

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.metric, self.stat, self.op, self.threshold, self.window = parse_objective(spec)
        self.windows_evaluated = 0
        self.windows_breached = 0
        self.worst_value: Optional[float] = None
        self.worst_window_start: Optional[float] = None

    @property
    def burn_rate(self) -> float:
        """Breached windows over evaluated windows (error-budget burn)."""
        if not self.windows_evaluated:
            return 0.0
        return self.windows_breached / self.windows_evaluated

    def _is_worse(self, value: float) -> bool:
        if self.worst_value is None:
            return True
        # "Worse" points against the objective's direction.
        if self.op in ("<", "<="):
            return value > self.worst_value
        return value < self.worst_value

    def evaluate(self, value: float, window_start: float) -> Optional[Dict[str, Any]]:
        """Judge one closed window; returns a breach event dict or None."""
        self.windows_evaluated += 1
        if self._is_worse(value):
            self.worst_value = value
            self.worst_window_start = window_start
        if _OPS[self.op](value, self.threshold):
            return None
        self.windows_breached += 1
        return {
            "objective": self.spec,
            "metric": self.metric,
            "stat": self.stat,
            "window_start": window_start,
            "window_end": window_start + self.window,
            "observed": value,
            "threshold": self.threshold,
            "burn_rate": self.burn_rate,
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.spec,
            "metric": self.metric,
            "stat": self.stat,
            "op": self.op,
            "threshold": self.threshold,
            "window": self.window,
            "windows_evaluated": self.windows_evaluated,
            "windows_breached": self.windows_breached,
            "burn_rate": self.burn_rate,
            "worst_value": self.worst_value,
            "worst_window_start": self.worst_window_start,
        }


class _MetricWindow:
    """One metric's current-window aggregate (lazy tumbling)."""

    __slots__ = ("window", "index", "histogram", "ok", "failed")

    def __init__(self, window: float) -> None:
        self.window = window
        self.index: Optional[int] = None
        self.histogram = Histogram("slo.window", bounds=DEFAULT_LATENCY_BOUNDS)
        self.ok = 0
        self.failed = 0

    def reset(self, index: int) -> None:
        self.index = index
        self.histogram = Histogram("slo.window", bounds=DEFAULT_LATENCY_BOUNDS)
        self.ok = 0
        self.failed = 0

    def value_for(self, stat: str) -> float:
        if stat == "availability":
            total = self.ok + self.failed
            return self.ok / total if total else 1.0
        if stat == "count":
            return float(self.histogram.count + self.ok + self.failed)
        if stat == "max":
            return self.histogram.max
        if stat == "mean":
            return self.histogram.mean
        return self.histogram.percentile(
            {"p50": 0.50, "p90": 0.90, "p99": 0.99, "p999": 0.999}[stat]
        )

    @property
    def has_samples(self) -> bool:
        return bool(self.histogram.count or self.ok or self.failed)


class SLOMonitor:
    """Deployment-wide, digest-neutral SLO evaluation in sim time.

    Pass one to :class:`~repro.core.manager.SwiShmemDeployment` via the
    ``slo_monitor`` keyword at construction — engines cache it (and its
    ``enabled`` flag) when they are built, exactly like the metrics
    registry and the access profiler.  To attach one *after*
    construction, call ``deployment.rebind_observability(slo_monitor=m)``,
    which re-binds every engine's cached hooks; assigning to
    ``deployment.slo_monitor`` directly raises, because the engines
    would silently keep their stale cached references.
    """

    #: Hot paths cache this to skip the hook calls entirely when off.
    enabled = True

    #: Breach events kept (oldest dropped beyond this, with a counter).
    max_breaches = 1024

    def __init__(self) -> None:
        self.objectives: List[SLOObjective] = []
        #: metric -> per-window-size aggregate state.  Keyed on (metric,
        #: window) so two objectives over the same metric with different
        #: windows evaluate independently.
        self._windows: Dict[Tuple[str, float], _MetricWindow] = {}
        #: (metric, window) -> objectives list, in declaration order.
        self._by_feed: Dict[Tuple[str, float], List[SLOObjective]] = {}
        self.breaches: List[Dict[str, Any]] = []
        self.breaches_dropped = 0
        self.samples = 0

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add_objective(self, spec: str) -> SLOObjective:
        objective = SLOObjective(spec)
        self.objectives.append(objective)
        feed = (objective.metric, objective.window)
        if feed not in self._windows:
            self._windows[feed] = _MetricWindow(objective.window)
        self._by_feed.setdefault(feed, []).append(objective)
        return objective

    # ------------------------------------------------------------------
    # Hot-path hooks (passive: mutate monitor state only)
    # ------------------------------------------------------------------
    def observe(self, metric: str, value: float, now: float) -> None:
        """Feed one latency/duration sample (seconds) at sim time ``now``."""
        self.samples += 1
        for feed, state in self._windows.items():
            if feed[0] != metric:
                continue
            self._roll(feed, state, now)
            state.histogram.observe(value)

    def observe_event(self, metric: str, ok: bool, now: float) -> None:
        """Feed one success/failure event (availability objectives)."""
        self.samples += 1
        for feed, state in self._windows.items():
            if feed[0] != metric:
                continue
            self._roll(feed, state, now)
            if ok:
                state.ok += 1
            else:
                state.failed += 1

    def _roll(self, feed: Tuple[str, float], state: _MetricWindow, now: float) -> None:
        index = int(now / state.window)
        if state.index is None:
            state.reset(index)
            return
        if index != state.index:
            self._close(feed, state)
            state.reset(index)

    def _close(self, feed: Tuple[str, float], state: _MetricWindow) -> None:
        """Evaluate every objective on a window that just closed.

        Windows with no samples are skipped: an idle metric neither
        burns nor restores error budget.
        """
        if state.index is None or not state.has_samples:
            return
        window_start = state.index * state.window
        for objective in self._by_feed[feed]:
            breach = objective.evaluate(
                state.value_for(objective.stat), window_start
            )
            if breach is not None:
                if len(self.breaches) >= self.max_breaches:
                    self.breaches.pop(0)
                    self.breaches_dropped += 1
                self.breaches.append(breach)

    # ------------------------------------------------------------------
    # Finalization / export
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Close out the in-flight window of every metric (end of run)."""
        for feed in sorted(self._windows):
            state = self._windows[feed]
            self._close(feed, state)
            state.reset(int(now / state.window))

    @property
    def ok(self) -> bool:
        return not self.breaches and not self.breaches_dropped

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready monitor state (bench sidecars embed this)."""
        return {
            "ok": self.ok,
            "samples": self.samples,
            "objectives": [o.as_dict() for o in self.objectives],
            "breaches": list(self.breaches),
            "breaches_dropped": self.breaches_dropped,
        }


class NullSLOMonitor(SLOMonitor):
    """The deployment default: every hook is a no-op."""

    enabled = False

    def add_objective(self, spec: str) -> SLOObjective:
        raise RuntimeError(
            "NULL_SLO_MONITOR takes no objectives; construct an SLOMonitor "
            "and pass it to the deployment via slo_monitor="
        )

    def observe(self, metric: str, value: float, now: float) -> None:
        return None

    def observe_event(self, metric: str, ok: bool, now: float) -> None:
        return None

    def finalize(self, now: float) -> None:
        return None


#: Shared no-op monitor; hot paths bound to it pay one attribute check.
NULL_SLO_MONITOR = NullSLOMonitor()
