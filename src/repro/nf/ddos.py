"""DDoS detector (Table 1, row 5).

"DDoS detection requires tracking the frequency of source and
destination IPs using approximate sketch data structures.  The sketches
are updated and read on every packet, triggering an alarm when the
analysis of the IP frequencies raises suspicion of the attack.
Approximate sketches have been shown to behave correctly under eventual
consistency." (paper section 4.2)

Detection method (after Lapolli et al., the paper's citation [25]):
a volumetric attack concentrates traffic on few destinations while
spreading it over many sources, so the normalized Shannon entropy of
the *destination* IP distribution collapses while *source* entropy
rises.  The detector keeps per-window frequency counts and alarms when
``H(dst) - H(src)`` drops below a threshold.

Shared state (both written on **every packet** — the canonical
write-intensive workload):
  * ``ddos_src`` — **EWO counter**: per-source packet counts;
  * ``ddos_dst`` — **EWO counter**: per-destination packet counts.

Each switch sees only its share of traffic; EWO replication merges the
per-switch counts (CRDT slot vectors), so every switch's periodic
window analysis runs against the *global* distribution — the entire
point of sharing this state.  Experiment N2 compares detection accuracy
against (a) a single omniscient switch and (b) unreplicated local-only
counts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.nf.base import NetworkFunction
from repro.sim.engine import Process
from repro.sketch.countmin import row_hash
from repro.sketch.heavyhitter import normalized_entropy

__all__ = ["DdosDetectorNF"]

#: Count-min geometry for ``use_sketch=True`` (shared by all switches —
#: every replica must hash IPs to the same cells).
SKETCH_DEPTH = 3
SKETCH_WIDTH = 512
SKETCH_SEED = 0xD05


class DdosDetectorNF(NetworkFunction):
    """Entropy-based distributed DDoS detection on EWO counters."""

    NAME = "ddos"

    def __init__(self, manager, handles, *, window: float = 5e-3,
                 entropy_threshold: float = -0.2, min_packets: int = 50,
                 capacity: int = 8192, replicate: bool = True,
                 use_sketch: bool = False) -> None:
        super().__init__(manager, handles)
        self.window = window
        self.entropy_threshold = entropy_threshold
        self.min_packets = min_packets
        self.use_sketch = use_sketch
        #: sketch mode: IPs observed locally this window, the candidate
        #: sets whose counts are estimated from the shared sketch cells
        self._window_src_ips: set = set()
        self._window_dst_ips: set = set()
        self.src_counts = handles["ddos_src"]
        self.dst_counts = handles["ddos_dst"]
        #: Baseline for windowed diffs: key -> count at window start.
        self._src_base: Dict[Any, int] = {}
        self._dst_base: Dict[Any, int] = {}
        self.alarms: List[float] = []
        self.alarm_active = False
        self.last_score: Optional[float] = None
        self._peak_dst_count = 0
        self.suspected_victim: Optional[str] = None
        self._window_process = Process(
            manager.sim, window, self._analyze_window,
            name=f"{manager.switch.name}:ddos-window",
        ).start()

    @classmethod
    def build_specs(cls, *, window: float = 5e-3, entropy_threshold: float = -0.2,
                    min_packets: int = 50, capacity: int = 8192,
                    replicate: bool = True, use_sketch: bool = False) -> List[RegisterSpec]:
        # ``replicate=False`` is the local-only baseline of experiment
        # N2: a batch size no workload reaches means broadcast never
        # fires, so each switch analyzes only its own traffic share.
        batch = 1 if replicate else 10**9
        if use_sketch:
            # the hardware-faithful representation: shared state is a
            # fixed count-min cell matrix (keys = (row, col)), so its
            # size is independent of how many IPs the traffic contains
            capacity = SKETCH_DEPTH * SKETCH_WIDTH
            key_bytes = 3  # row (1) + column (2)
        else:
            key_bytes = 4  # an IP address
        return [
            RegisterSpec(
                name="ddos_src",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.COUNTER,
                capacity=capacity,
                key_bytes=key_bytes,
                value_bytes=4,
                ewo_batch_size=batch,
            ),
            RegisterSpec(
                name="ddos_dst",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.COUNTER,
                capacity=capacity,
                key_bytes=key_bytes,
                value_bytes=4,
                ewo_batch_size=batch,
            ),
        ]

    # ------------------------------------------------------------------
    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        if packet.ipv4 is None:
            return self.forward()
        if self.use_sketch:
            return self._process_sketch(packet)
        # Sketch update + read on every packet (Table 1's access pattern):
        # the per-packet frequency estimates feed the running peak, which
        # the window analysis uses to identify the victim when alarming.
        self.src_counts.increment(packet.ipv4.src)
        self.dst_counts.increment(packet.ipv4.dst)
        self.src_counts.read(packet.ipv4.src, 0)
        dst_count = self.dst_counts.read(packet.ipv4.dst, 0)
        if dst_count > self._peak_dst_count:
            self._peak_dst_count = dst_count
            self.suspected_victim = packet.ipv4.dst
        return self.forward()

    def _process_sketch(self, packet) -> Decision:
        """Count-min mode: update one cell per row for src and dst, read
        the dst estimate (min over rows) — per-packet update+read over a
        fixed-size structure, exactly the in-switch layout of section 7."""
        src, dst = packet.ipv4.src, packet.ipv4.dst
        self._window_src_ips.add(src)
        self._window_dst_ips.add(dst)
        estimate = None
        for row in range(SKETCH_DEPTH):
            self.src_counts.increment((row, row_hash(SKETCH_SEED, row, src, SKETCH_WIDTH)))
            cell = (row, row_hash(SKETCH_SEED, row, dst, SKETCH_WIDTH))
            self.dst_counts.increment(cell)
            count = self.dst_counts.read(cell, 0)
            estimate = count if estimate is None else min(estimate, count)
        if estimate is not None and estimate > self._peak_dst_count:
            self._peak_dst_count = estimate
            self.suspected_victim = dst
        return self.forward()

    def _sketch_estimate(self, cells: Dict[Any, int], ip: str) -> int:
        return min(
            cells.get((row, row_hash(SKETCH_SEED, row, ip, SKETCH_WIDTH)), 0)
            for row in range(SKETCH_DEPTH)
        )

    # ------------------------------------------------------------------
    # Windowed entropy analysis (control-plane periodic task)
    # ------------------------------------------------------------------
    def _window_counts(self) -> Dict[str, Dict[Any, int]]:
        """This window's increments: current merged counts minus baseline."""
        manager = self.manager
        src_now = manager.ewo.local_state(self.src_counts.spec.group_id)
        dst_now = manager.ewo.local_state(self.dst_counts.spec.group_id)
        if self.use_sketch:
            return self._window_counts_sketch(src_now, dst_now)
        src = {
            key: count - self._src_base.get(key, 0)
            for key, count in src_now.items()
            if count - self._src_base.get(key, 0) > 0
        }
        dst = {
            key: count - self._dst_base.get(key, 0)
            for key, count in dst_now.items()
            if count - self._dst_base.get(key, 0) > 0
        }
        self._src_base = src_now
        self._dst_base = dst_now
        return {"src": src, "dst": dst}

    def _window_counts_sketch(self, src_cells, dst_cells) -> Dict[str, Dict[Any, int]]:
        """Sketch mode: per-window cell deltas, queried for the locally
        observed candidate IPs.  The candidate set is per-switch memory
        (an observation cache), but the *counts* come from the globally
        merged sketch — the division of labor the sharing buys."""
        src_delta = {
            cell: count - self._src_base.get(cell, 0) for cell, count in src_cells.items()
        }
        dst_delta = {
            cell: count - self._dst_base.get(cell, 0) for cell, count in dst_cells.items()
        }
        src = {
            ip: estimate
            for ip in self._window_src_ips
            if (estimate := self._sketch_estimate(src_delta, ip)) > 0
        }
        dst = {
            ip: estimate
            for ip in self._window_dst_ips
            if (estimate := self._sketch_estimate(dst_delta, ip)) > 0
        }
        self._src_base = src_cells
        self._dst_base = dst_cells
        self._window_src_ips = set()
        self._window_dst_ips = set()
        return {"src": src, "dst": dst}

    def _analyze_window(self) -> None:
        if self.manager.switch.failed:
            self._window_process.stop()
            return
        counts = self._window_counts()
        total = sum(counts["dst"].values())
        if total < self.min_packets:
            self.alarm_active = False
            self.last_score = None
            return
        src_entropy = normalized_entropy(counts["src"])
        dst_entropy = normalized_entropy(counts["dst"])
        # Attack signature: destination entropy collapses below source
        # entropy.  score < threshold (negative) => alarm.
        score = dst_entropy - src_entropy
        self.last_score = score
        if score < self.entropy_threshold:
            if not self.alarm_active:
                self.alarms.append(self.manager.sim.now)
            self.alarm_active = True
        else:
            self.alarm_active = False

    def stop(self) -> None:
        self._window_process.stop()
