#!/usr/bin/env python3
"""Bench-sidecar regression gate: diff fresh BENCH_<id>.json files
against the committed baselines in bench_results/.

Every wired benchmark emits a machine-readable sidecar (see
benchmarks/common.py emit_json).  The simulation is deterministic, so a
fresh run on the same code must reproduce the committed numbers almost
exactly; this tool walks both JSON documents, matches metric snapshot
entries by (kind, name, node) and result rows by position, and flags
any numeric leaf whose relative drift exceeds its tolerance — turning
"the perf trajectory is diffable across commits" into an enforced gate
instead of an artifact someone might eyeball.

Per-metric tolerances are keyed on the leaf's path: timing-ish metrics
(latency, windows, gaps) get a small band for float accumulation
differences across Python versions; counts and structural fields must
match exactly.

Usage:
    python tools/check_bench.py --fresh fresh_bench [--baseline bench_results] [IDS ...]

Exit status 0 when every compared sidecar is within tolerance, 1
otherwise (and on missing fresh files).
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from pathlib import Path
from typing import Any, Iterator, List, Optional, Tuple

#: Ordered (pattern, relative tolerance) pairs; the first regex that
#: matches the leaf path wins.  Patterns are searched, not anchored.
DEFAULT_TOLERANCES: List[Tuple[str, float]] = [
    # Host wall-clock (and rates derived from it, e.g. S1's
    # events_per_host_sec) can legitimately differ run to run; ignore it.
    (r"wall_clock|host_seconds|per_host_sec", math.inf),
    # Percentile-band class: attribution fractions/shares are exact
    # (deterministic telescoping splits, gated at 0), while percentile
    # leaves (.p50/.p99/.p999) sit on histogram interpolation and get
    # the standard 1% band.  The fraction rule must precede the
    # percentile and timing rules so e.g. a "latency_fraction" leaf
    # stays exact-gated.
    (r"fraction|share", 0.0),
    (r"\.p\d+", 1e-2),
    # Simulated timing aggregates: deterministic, but float summation
    # order can differ across Python point releases — allow 1%.
    (r"latency|seconds|window|gap|duration|_ms\b|busy", 1e-2),
    # Rates/ratios derived from timings inherit the same band.
    (r"rate|throughput|efficiency|utilization", 1e-2),
    # Everything else (counts, sequence numbers, byte totals, config
    # echoes) must match exactly.
    (r".", 0.0),
]

BENCH_PATTERN = re.compile(r"BENCH_(?P<id>[A-Za-z0-9]+)\.json$")


class Mismatch:
    def __init__(self, path: str, detail: str) -> None:
        self.path = path
        self.detail = detail

    def __str__(self) -> str:
        return f"  {self.path}: {self.detail}"


def tolerance_for(path: str, tolerances: List[Tuple[str, float]]) -> float:
    for pattern, tol in tolerances:
        if re.search(pattern, path):
            return tol
    return 0.0


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _metric_key(entry: Any) -> Optional[Tuple[Any, ...]]:
    """Snapshot entries carry identity fields; match on those rather
    than list position so metric additions produce 'missing' diffs, not
    a cascade of positional mismatches."""
    if isinstance(entry, dict) and "name" in entry:
        return (entry.get("kind"), entry["name"], entry.get("node"))
    return None


def diff(base: Any, fresh: Any, path: str, tolerances: List[Tuple[str, float]]) -> Iterator[Mismatch]:
    if type(base) is not type(fresh) and not (_is_number(base) and _is_number(fresh)):
        yield Mismatch(path, f"type changed: {type(base).__name__} -> {type(fresh).__name__}")
        return
    if isinstance(base, dict):
        for key in sorted(set(base) | set(fresh)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in fresh:
                yield Mismatch(sub, "missing in fresh run")
            elif key not in base:
                yield Mismatch(sub, "not in baseline (new field — recommit the baseline)")
            else:
                yield from diff(base[key], fresh[key], sub, tolerances)
        return
    if isinstance(base, list):
        keys = [_metric_key(e) for e in base]
        if keys and all(k is not None for k in keys):
            fresh_by_key = { _metric_key(e): e for e in fresh }
            base_by_key = dict(zip(keys, base))
            for key in keys:
                label = f"{path}[{'/'.join(str(p) for p in key)}]"
                if key not in fresh_by_key:
                    yield Mismatch(label, "metric missing in fresh run")
                else:
                    yield from diff(base_by_key[key], fresh_by_key[key], label, tolerances)
            for key in fresh_by_key:
                if key not in base_by_key:
                    label = f"{path}[{'/'.join(str(p) for p in key)}]"
                    yield Mismatch(label, "metric not in baseline (recommit the baseline)")
            return
        if len(base) != len(fresh):
            yield Mismatch(path, f"length changed: {len(base)} -> {len(fresh)}")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            yield from diff(b, f, f"{path}[{i}]", tolerances)
        return
    if _is_number(base):
        tol = tolerance_for(path, tolerances)
        if tol is math.inf:
            return
        scale = max(abs(base), abs(fresh), 1e-12)
        drift = abs(base - fresh) / scale
        if drift > tol:
            yield Mismatch(
                path,
                f"{base!r} -> {fresh!r} (drift {drift:.2%}, tolerance {tol:.2%})",
            )
        return
    if base != fresh:
        yield Mismatch(path, f"{base!r} -> {fresh!r}")


def check_sidecar(baseline_file: Path, fresh_file: Path) -> List[Mismatch]:
    if not fresh_file.exists():
        return [Mismatch(fresh_file.name, "fresh sidecar was not produced")]
    with open(baseline_file) as fh:
        base = json.load(fh)
    with open(fresh_file) as fh:
        fresh = json.load(fh)
    return list(diff(base, fresh, "", DEFAULT_TOLERANCES))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="bench_results",
        help="directory holding the committed BENCH_<id>.json baselines",
    )
    parser.add_argument(
        "--fresh", required=True,
        help="directory holding the freshly produced sidecars",
    )
    parser.add_argument(
        "ids", nargs="*",
        help="experiment ids to check (default: every baseline sidecar)",
    )
    args = parser.parse_args(argv)
    baseline_dir, fresh_dir = Path(args.baseline), Path(args.fresh)

    baselines = sorted(
        f for f in baseline_dir.glob("BENCH_*.json") if BENCH_PATTERN.search(f.name)
    )
    if args.ids:
        wanted = {i.upper() for i in args.ids}
        baselines = [
            f for f in baselines
            if BENCH_PATTERN.search(f.name).group("id").upper() in wanted
        ]
    if not baselines:
        print(f"check_bench: no baselines to check in {baseline_dir}/", file=sys.stderr)
        return 1

    failed = False
    for baseline_file in baselines:
        mismatches = check_sidecar(baseline_file, fresh_dir / baseline_file.name)
        bench_id = BENCH_PATTERN.search(baseline_file.name).group("id")
        if mismatches:
            failed = True
            print(f"FAIL {bench_id}: {len(mismatches)} regression(s) vs {baseline_file}")
            for mismatch in mismatches:
                print(mismatch)
        else:
            print(f"ok   {bench_id}: matches baseline within tolerance")
    if failed:
        print(
            "\ncheck_bench: sidecars drifted from committed baselines."
            "\nIf the change is intentional, rerun the benchmarks and commit"
            " the new bench_results/BENCH_*.json files with the code change.",
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
