"""Runtime consistency re-leveling: drain -> switch -> unfence.

Covers the :class:`~repro.protocols.releveling.RelevelingCoordinator`
handoff protocol end to end on live NF worlds: value preservation in
both directions, fenced-write replay, leader crashes in every phase
(via the :class:`~repro.chaos.nemesis.LeaderKiller` nemesis), a
re-level racing an anti-entropy scrub round, back-to-back flaps,
rollback on member death, and same-seed byte-identical replay of a run
containing a re-level.
"""

from __future__ import annotations

import hashlib
from typing import Any, List

import pytest

from repro.chaos import LeaderKiller
from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.nf.base import NetworkFunction
from repro.obs import AccessProfiler, ConsistencyAdvisor
from repro.obs.metrics import MetricsRegistry

from tests.nfworld import build_nf_world


class MeterSroNF(NetworkFunction):
    """A per-source packet meter deliberately misdeclared as SRO —
    write-per-packet through the chain, the canonical demotion case."""

    NAME = "meter-sro"

    @classmethod
    def build_specs(cls, **kwargs: Any) -> List[RegisterSpec]:
        return [RegisterSpec("meter_usage", Consistency.SRO, capacity=4096)]

    def process(self, ctx: PacketContext) -> Decision:
        flow = self.flow_of(ctx)
        if flow is None:
            return self.forward()
        handle = self.handles["meter_usage"]
        handle.write(flow.src_ip, (handle.read(flow.src_ip) or 0) + 1)
        return self.forward()


def _drive(world, flows: int = 20, gap: float = 100e-6) -> None:
    from repro.workload.flows import FlowSpec, inject_flow
    from repro.workload.zipf import ZipfSampler

    rng = world.rng.stream("relevel-flows")
    destinations = world.server_ips()
    client_picker = ZipfSampler(len(world.clients), s=1.2, rng=rng)
    dst_picker = ZipfSampler(len(destinations), s=1.2, rng=rng)
    at = world.sim.now
    port = 41000
    for _ in range(flows):
        at += rng.expovariate(4000.0)
        port += 1
        inject_flow(
            world.sim,
            FlowSpec(
                client=client_picker.pick(world.clients),
                dst_ip=dst_picker.pick(destinations),
                src_port=port,
                data_packets=6,
                inter_packet_gap=gap,
                start_at=at,
            ),
        )
    world.sim.run(until=at + 0.05)


def _meter_world(seed: int = 2100, **kwargs: Any):
    world = build_nf_world(seed=seed, responder_servers=False, **kwargs)
    world.deployment.install_nf(MeterSroNF)
    _drive(world)
    return world


def _world_digest(world, state_names) -> str:
    """Event-history digest: kernel event count, per-host injections,
    and every named group's replica states (engine-agnostic)."""
    dep = world.deployment
    stores = []
    for name in state_names:
        spec = dep.spec_by_name(name)
        if spec.consistency is Consistency.EWO:
            replicas = dep.ewo_states(spec)
        else:
            replicas = dep.sro_stores(spec)
        stores.append(
            tuple(
                tuple(sorted(replica.items(), key=lambda kv: repr(kv[0])))
                for replica in replicas
            )
        )
    history = (
        world.sim.events_processed,
        tuple(h.sent_count for h in world.clients + world.servers),
        tuple(stores),
    )
    return hashlib.sha256(repr(history).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Value preservation, both directions
# ----------------------------------------------------------------------

class TestHandoffPreservesState:
    def test_demotion_preserves_every_committed_write(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        committed = dict(dep.sro_stores(spec)[0])
        assert committed, "drive produced no meter state"

        assert dep.releveler.request(spec, Consistency.EWO, reason="test")
        world.sim.run(until=world.sim.now + 0.05)

        assert spec.consistency is Consistency.EWO
        assert dep.releveler.stats.completed == 1
        assert dep.releveler.active_handoff(spec.group_id) is None
        replicas = dep.ewo_states(spec)
        assert len(replicas) == len(dep.managers)
        for replica in replicas:
            assert dict(replica) == committed
        # The old engine is fully torn down everywhere.
        for manager in dep.managers.values():
            assert spec.group_id not in manager.sro.groups
            assert manager.relevel_fence_for(spec.group_id) is None
            assert manager.level_of(spec) is Consistency.EWO

    def test_promotion_merges_and_restores_chain(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        dep.releveler.request(spec, Consistency.EWO, reason="down")
        world.sim.run(until=world.sim.now + 0.05)
        committed = dict(dep.ewo_states(spec)[0])
        retired_version = dep.releveler._retired_versions[spec.group_id]

        dep.releveler.request(spec, Consistency.SRO, reason="up")
        world.sim.run(until=world.sim.now + 0.05)

        assert spec.consistency is Consistency.SRO
        assert dep.releveler.stats.completed == 2
        chain = dep.chains[spec.group_id]
        # Monotone continuation past the retired chain, so stale
        # set_chain commands from before the flap stay fenced.
        assert chain.version > retired_version
        assert not dep.multicast.has(spec.group_id)
        for store in dep.sro_stores(spec):
            assert store == committed
        for manager in dep.managers.values():
            assert spec.group_id not in manager.ewo.groups
            assert manager.level_of(spec) is Consistency.SRO
        # The chain still commits writes after the round trip.
        mgr = dep.managers[chain.head]
        mgr.register_write(spec, "post-key", 7)
        world.sim.run(until=world.sim.now + 0.02)
        assert all(s.get("post-key") == 7 for s in dep.sro_stores(spec))

    def test_sro_ero_flip_toggles_pending_tracking(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        chain_before = dep.chains[spec.group_id]
        committed = dict(dep.sro_stores(spec)[0])

        dep.releveler.request(spec, Consistency.ERO, reason="reads-local")
        world.sim.run(until=world.sim.now + 0.05)
        assert spec.consistency is Consistency.ERO
        # Same chain, same stores — only the read path changed.
        assert dep.chains[spec.group_id] is chain_before
        for manager in dep.managers.values():
            state = manager.sro.groups[spec.group_id]
            assert not state.track_pending
            assert state.pending.pending_count() == 0
        assert dep.sro_stores(spec)[0] == committed

        dep.releveler.request(spec, Consistency.SRO, reason="back")
        world.sim.run(until=world.sim.now + 0.05)
        assert spec.consistency is Consistency.SRO
        for manager in dep.managers.values():
            assert manager.sro.groups[spec.group_id].track_pending

    def test_fenced_writes_survive_the_handoff(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        writer = dep.managers[dep.switch_names[1]]
        observed = {}

        def write_mid_drain():
            fence = writer.relevel_fence_for(spec.group_id)
            assert fence is not None, "fence not yet installed"
            writer.register_write(spec, "drain-key", 99)
            observed["writes_fenced"] = fence.writes_fenced

        # One config latency after the request the fence command has
        # landed; the drain poll has not finished yet.
        dep.releveler.request(spec, Consistency.EWO, reason="test")
        world.sim.schedule(1.5 * dep.controller.config_latency, write_mid_drain)
        world.sim.run(until=world.sim.now + 0.05)

        assert observed["writes_fenced"] == 1
        assert dep.releveler.stats.completed == 1
        # The fenced write replayed into the *new* engine on unfence and
        # broadcast to every replica.
        for replica in dep.ewo_states(spec):
            assert replica.get("drain-key") == 99


# ----------------------------------------------------------------------
# Advisor integration
# ----------------------------------------------------------------------

class TestAdvisorDriven:
    def test_apply_advice_demotes_the_misdeclared_meter(self):
        profiler = AccessProfiler()
        world = _meter_world(access_profiler=profiler)
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        packets = sum(h.sent_count for h in world.clients + world.servers)
        advisor = ConsistencyAdvisor(profiler, packets=packets)
        advice = advisor.advice_for("meter_usage")
        assert advice.mismatch and advice.confidence == "high"

        acted = dep.releveler.apply_advice(advisor)
        assert acted == ["meter_usage"]
        world.sim.run(until=world.sim.now + 0.05)
        assert spec.consistency is Consistency.EWO
        # The profiler's declared side tracks the re-level, so the
        # advisor stops re-flagging an already-fixed group.
        assert profiler.groups[spec.group_id].declared == "ewo"

    def test_refuses_non_lww_groups(self):
        world = build_nf_world(seed=7)
        dep = world.deployment
        spec = dep.declare(
            RegisterSpec(
                "hits", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=64
            )
        )
        with pytest.raises(ValueError, match="counter"):
            dep.releveler.request(spec, Consistency.SRO)
        assert dep.releveler.stats.refused == 1

    def test_noop_target_rejected(self):
        world = build_nf_world(seed=7)
        dep = world.deployment
        spec = dep.declare(RegisterSpec("tbl", Consistency.SRO, capacity=64))
        with pytest.raises(ValueError, match="already"):
            dep.releveler.request(spec, Consistency.SRO)


# ----------------------------------------------------------------------
# Chaos: leader crashes, member death, scrub races
# ----------------------------------------------------------------------

class TestChaos:
    @pytest.mark.parametrize("phase", ["drain", "switch", "unfence"])
    def test_leader_crash_in_each_phase(self, phase):
        world = _meter_world(controller_replicas=2)
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        committed = dict(dep.sro_stores(spec)[0])
        killer = LeaderKiller(dep, phase=phase, kills=1)

        dep.releveler.request(spec, Consistency.EWO, reason="chaos")
        world.sim.run(until=world.sim.now + 0.3)

        assert len(killer.log) == 1, f"no kill fired in phase {phase}"
        assert spec.consistency is Consistency.EWO
        assert dep.releveler.stats.completed == 1
        assert dep.releveler.stats.rollbacks == 0
        if phase in ("drain", "switch"):
            # The successor had to resume the handoff mid-flight; an
            # unfence-phase kill completes on already-sent commands.
            assert dep.releveler.stats.resumed >= 1
        for replica in dep.ewo_states(spec):
            assert dict(replica) == committed
        for manager in dep.managers.values():
            assert manager.relevel_fence_for(spec.group_id) is None

    def test_member_death_mid_drain_rolls_back(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        committed = dict(dep.sro_stores(spec)[0])
        victim = dep.chains[spec.group_id].members[1]

        dep.releveler.request(spec, Consistency.EWO, reason="doomed")
        world.sim.schedule(
            1.5 * dep.controller.config_latency,
            lambda: dep.fail_switch(victim),
        )
        world.sim.run(until=world.sim.now + 0.3)

        assert dep.releveler.stats.rollbacks == 1
        assert dep.releveler.stats.completed == 0
        # The group kept its level; live fences are gone; survivors intact.
        assert spec.consistency is Consistency.SRO
        for manager in dep.managers.values():
            if not manager.switch.failed:
                assert manager.relevel_fence_for(spec.group_id) is None
        for store in dep.sro_stores(spec):
            assert store == committed
        # The dead member still holds its fence; recovery reconciliation
        # releases it.
        assert dep.managers[victim].relevel_fence_for(spec.group_id) is not None
        dep.controller.recover_switch(victim)
        world.sim.run(until=world.sim.now + 0.1)
        assert dep.managers[victim].relevel_fence_for(spec.group_id) is None

    def test_relevel_racing_a_scrub_round(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        committed = dict(dep.sro_stores(spec)[0])
        scrubber = dep.start_scrubbing(period=5e-4)
        # Let scrubbing reach steady state, then re-level mid-stream.
        world.sim.run(until=world.sim.now + 2e-3)
        dep.releveler.request(spec, Consistency.EWO, reason="race")
        world.sim.run(until=world.sim.now + 0.05)

        assert spec.consistency is Consistency.EWO
        assert dep.releveler.stats.completed == 1
        for replica in dep.ewo_states(spec):
            assert dict(replica) == committed
        # Scrubbing continued across the handoff and scrubs the *new*
        # engine cleanly (rounds started after the switch complete).
        clean_before = scrubber.stats.rounds_clean
        world.sim.run(until=world.sim.now + 5e-3)
        assert scrubber.stats.rounds_clean > clean_before
        assert not any(s[0] == spec.group_id for s in scrubber._suspects)

    def test_queued_when_leaderless(self):
        world = _meter_world(controller_replicas=1)
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        dep.controller.crash_replica(dep.controller.leader.replica_id)
        started = dep.releveler.request(spec, Consistency.EWO, reason="wait")
        assert not started
        assert dep.releveler.queued == 1
        assert dep.releveler.stats.deferred == 1
        world.sim.run(until=world.sim.now + 0.05)
        assert spec.consistency is Consistency.SRO  # still waiting


# ----------------------------------------------------------------------
# Flaps and determinism
# ----------------------------------------------------------------------

class TestFlapsAndReplay:
    def test_back_to_back_flaps_queue_and_converge(self):
        world = _meter_world()
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        committed = dict(dep.sro_stores(spec)[0])

        version_before = dep.chains[spec.group_id].version

        # Demote; queue the promote while the demotion is mid-flight.
        assert dep.releveler.request(spec, Consistency.EWO, reason="flap-1")
        assert not dep.releveler.request(spec, Consistency.SRO, reason="flap-2")
        assert dep.releveler.queued == 1
        world.sim.run(until=world.sim.now + 0.2)

        assert dep.releveler.stats.completed == 2
        assert dep.releveler.queued == 0
        assert spec.consistency is Consistency.SRO
        for store in dep.sro_stores(spec):
            assert store == committed
        # Chain versions stayed monotone across the flap.
        assert dep.chains[spec.group_id].version > version_before

    def test_same_seed_replay_is_byte_identical(self):
        def run() -> str:
            world = _meter_world(seed=3111)
            dep = world.deployment
            spec = dep.spec_by_name("meter_usage")
            dep.releveler.request(spec, Consistency.EWO, reason="replay")
            world.sim.run(until=world.sim.now + 0.05)
            _drive(world, flows=8)
            return _world_digest(world, ["meter_usage"])

        assert run() == run()


# ----------------------------------------------------------------------
# Satellite (a): late observability attach
# ----------------------------------------------------------------------

class TestRebindObservability:
    def test_direct_assignment_fails_loudly(self):
        world = build_nf_world(seed=5)
        dep = world.deployment
        for attr in ("metrics", "flight_recorder", "access_profiler", "slo_monitor"):
            with pytest.raises(AttributeError, match="rebind_observability"):
                setattr(dep, attr, object())

    def test_late_attach_via_rebind_reaches_the_hot_paths(self):
        world = _meter_world(seed=2100)
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        profiler = AccessProfiler()
        metrics = MetricsRegistry()
        assert not dep.metrics.enabled

        dep.rebind_observability(metrics=metrics, access_profiler=profiler)
        assert dep.metrics is metrics
        assert dep.access_profiler is profiler
        _drive(world, flows=8)

        # The profiler attached mid-run sees traffic (engines rebound
        # their cached hooks instead of silently ignoring the attach).
        profile = profiler.groups[spec.group_id]
        assert profile.writes > 0 and profile.reads > 0
        write_counters = [
            c.value
            for (kind, name, _node), c in metrics._instruments.items()
            if kind == "counter" and name == "state.writes"
        ]
        assert sum(write_counters) > 0

    def test_rebound_world_still_re_levels(self):
        world = _meter_world(seed=2100)
        dep = world.deployment
        spec = dep.spec_by_name("meter_usage")
        metrics = MetricsRegistry()
        dep.rebind_observability(metrics=metrics)
        dep.releveler.request(spec, Consistency.EWO, reason="after-rebind")
        world.sim.run(until=world.sim.now + 0.05)
        assert spec.consistency is Consistency.EWO
        completed = metrics.counter("relevel.completed", "controller")
        assert completed.value == 1
