"""Wire formats for SwiShmem replication traffic.

Every message rides inside a packet's :class:`~repro.net.headers.SwiShmemHeader`
as ``swishmem_payload``.  Messages carry an explicit ``wire_size`` so
link-level bandwidth accounting (the section 6.2 overhead experiment)
charges realistic byte counts: keys and values are sized by the register
group's declared widths, not by Python object sizes.

Message flow summary (paper section 6):

========================  =======================================================
``WriteRequest``          writer's control plane -> chain head (SRO write)
``ChainUpdate``           hop-by-hop down the chain, per-slot sequence numbers
``WriteAck``              tail -> writer (release buffered output packet) and
                          tail -> other members (clear pending bits)
``EwoUpdate``             asynchronous broadcast of fresh EWO writes
``EwoSync``               periodic packet-generator sync to a random member
``SnapshotWrite``         snapshot replay toward a recovering switch (6.3)
``SnapshotAck``           recovering switch -> snapshot source
``Heartbeat``             every switch -> controller host switch (liveness)
``LeaseRenewal``          leader replica -> standby replicas (management net)
``ControllerCommand``     leader replica -> switch control plane (epoch-fenced)
``ReconstructQuery``      new leader -> every switch (state reconstruction)
``ReconstructReply``      switch -> new leader (per-group chain view)
``ScrubDigestQuery``      scrub coordinator -> member (digest-tree nodes)
``ScrubDigestReply``      member -> coordinator (requested node digests)
``ScrubKeyQuery``         coordinator -> member (per-key hashes of buckets)
``ScrubKeyReply``         member -> coordinator (key-hash listing)
``ScrubRepair``           authority member -> diverged member (data plane)
========================  =======================================================

The management-plane messages (from ``Heartbeat`` down, except
``ScrubRepair``) ride the out-of-band management network (scheduled
callbacks paying ``config_latency``), not the data plane; they still
carry ``wire_size`` so management-plane overhead can be accounted.
``ScrubRepair`` is the one anti-entropy message on the data plane: the
actual state re-propagation, subject to loss and chaos like any
replication packet.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.crdt.clock import Timestamp

__all__ = [
    "WriteToken",
    "WriteRequest",
    "ChainUpdate",
    "WriteAck",
    "EwoEntry",
    "EwoUpdate",
    "EwoSync",
    "SnapshotWrite",
    "SnapshotAck",
    "Heartbeat",
    "LeaseRenewal",
    "ControllerCommand",
    "ReconstructQuery",
    "GroupView",
    "ReconstructReply",
    "ScrubDigestQuery",
    "ScrubDigestReply",
    "ScrubKeyQuery",
    "ScrubKeyReply",
    "ScrubRepair",
]

_token_counter = itertools.count(1)

#: Fixed per-message framing bytes beyond key/value payload:
#: message type (1) + group (2) + sequence (4) + token (4) + writer id (2).
_BASE_MSG_BYTES = 13


def _trace_field() -> Any:
    """Causal trace context slot (:class:`repro.obs.causal.TraceContext`).

    Simulator-side bookkeeping, like ``Packet.meta``: excluded from
    ``wire_size`` (stamping must never perturb serialization delay or
    chaos digests), from equality, and from repr.
    """
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class WriteToken:
    """Identifies one in-flight SRO write for dedup, retry, and ack matching.

    ``(writer, number)`` is globally unique; the head keeps a small
    dedup table keyed by tokens so control-plane retries do not double-
    apply (they re-propagate the original sequence number instead).
    """

    writer: str
    number: int

    @classmethod
    def fresh(cls, writer: str) -> "WriteToken":
        return cls(writer, next(_token_counter))

    def __str__(self) -> str:
        return f"{self.writer}#{self.number}"


@dataclass
class WriteRequest:
    """SRO write submitted by the writer's control plane to the chain head."""

    group: int
    key: Any
    value: Any
    token: WriteToken
    key_bytes: int = 8
    value_bytes: int = 8
    #: Retry attempt number (0 on first send) — for diagnostics only.
    attempt: int = 0
    #: Read-modify-write: the head computes ``current + rmw_delta`` at
    #: sequencing time instead of using ``value`` (linearizable
    #: fetch-add — the in-network sequencer of paper section 9).
    rmw_delta: Optional[int] = None
    #: Causal trace context (zero wire cost — see :func:`_trace_field`).
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + self.key_bytes + self.value_bytes


@dataclass
class ChainUpdate:
    """A sequenced write propagating down the chain.

    ``chain`` embeds the member list, per the paper's "write request
    packet headers may incorporate an IP list of the chain nodes" —
    so forwarding needs no per-switch chain routing state.
    """

    group: int
    key: Any
    value: Any
    seq: int
    slot: int
    token: WriteToken
    chain: Tuple[str, ...]
    key_bytes: int = 8
    value_bytes: int = 8
    #: Fencing epoch: the chain descriptor version the head sequenced
    #: under.  Members reject updates from an older configuration, so a
    #: suspected-but-alive head cannot commit through a repaired chain
    #: (section 6.3 split-brain protection).
    epoch: int = 0
    #: Causal trace context, re-stamped by each hop before forwarding.
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        # chain IP list: 4 bytes per member; epoch: 2 bytes
        return _BASE_MSG_BYTES + self.key_bytes + self.value_bytes + 4 * len(self.chain) + 2

    def next_hop_after(self, node: str) -> Optional[str]:
        """The chain member after ``node``, or None if ``node`` is last."""
        try:
            index = self.chain.index(node)
        except ValueError:
            return None
        if index + 1 < len(self.chain):
            return self.chain[index + 1]
        return None


@dataclass
class WriteAck:
    """Commit acknowledgement generated by the chain tail.

    ``value`` carries the committed value back to the writer — needed by
    fetch-add callers (the assigned sequence number), harmless filler
    for blind writes.
    """

    group: int
    key: Any
    seq: int
    slot: int
    token: WriteToken
    key_bytes: int = 8
    value: Any = None
    value_bytes: int = 8
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + self.key_bytes + self.value_bytes


@dataclass
class EwoEntry:
    """One register's worth of EWO state.

    For counter-mode groups, ``version`` is the replica slot index and
    ``value`` that slot's count (element-wise-max merge).  For LWW-mode
    groups, ``version`` is a :class:`Timestamp` and ``value`` the
    register value.
    """

    key: Any
    version: Any
    value: Any

    #: Bytes per OR-Set tag on the wire (matches ORSet.TAG_BYTES).
    ORSET_TAG_BYTES = 10

    def wire_bytes(self, key_bytes: int, value_bytes: int) -> int:
        if isinstance(self.version, Timestamp):
            version_bytes = Timestamp.wire_size
        elif isinstance(self.version, tuple):
            # OR-Set delta: kind byte + 10 bytes per tag carried
            tag_count = sum(
                len(part) if isinstance(part, (tuple, frozenset, set)) else 1
                for part in self.version[1:]
            )
            version_bytes = 1 + self.ORSET_TAG_BYTES * tag_count
        else:
            version_bytes = 4
        return key_bytes + value_bytes + version_bytes


@dataclass
class EwoUpdate:
    """Asynchronous broadcast of fresh local writes (paper section 6.2).

    "small write update packets containing only this switch's new
    version numbers and values" — entries hold only the writer's own
    slots / newly stamped values.
    """

    group: int
    origin: str
    entries: List[EwoEntry] = field(default_factory=list)
    key_bytes: int = 8
    value_bytes: int = 8
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + sum(
            e.wire_bytes(self.key_bytes, self.value_bytes) for e in self.entries
        )


@dataclass
class EwoSync(EwoUpdate):
    """Periodic packet-generator sync (paper sections 6.2 and 7).

    Unlike :class:`EwoUpdate`, a sync carries *all* state the sender
    knows — every replica's slots — which is what makes the protocol
    self-healing: "any switch that did receive the update can then
    synchronize the other switches".
    """


@dataclass
class SnapshotWrite:
    """Recovery replay of one key from a control-plane snapshot (6.3).

    Carries the sequence number captured at snapshot time "to prevent
    overwriting new values with old ones": receivers apply only if the
    snapshot seq is newer than their local seq for the key's slot.
    """

    group: int
    key: Any
    value: Any
    seq: int
    slot: int
    source: str
    key_bytes: int = 8
    value_bytes: int = 8
    #: Identifies the transfer this entry belongs to.  A duplicate ack
    #: from an older, superseded transfer to the same target must not
    #: complete a newer one, so both sides echo the id and the source
    #: drops mismatches.
    transfer_id: int = 0
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + self.key_bytes + self.value_bytes + 4


@dataclass
class SnapshotAck:
    """Recovering switch confirms application of one snapshot write."""

    group: int
    key: Any
    seq: int
    source: str
    key_bytes: int = 8
    transfer_id: int = 0
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + self.key_bytes + 4


@dataclass
class Heartbeat:
    """Periodic liveness beacon (controller failure detection).

    Emitted by every switch's packet generator toward the controller's
    host switch.  ``sent_at`` is the sender's wall-clock emit time, so
    the detector can distinguish a fresh beacon from one the nemesis
    delayed in flight.
    """

    origin: str
    seq: int
    sent_at: float
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        # origin id (2) + seq (4) + timestamp (6) on top of framing
        return _BASE_MSG_BYTES + 12


@dataclass(frozen=True)
class LeaseRenewal:
    """Leadership lease advertisement, leader -> standby replicas.

    A standby's takeover deadline is computed from ``expires_at`` (the
    leader's own self-fencing time), never from receipt time, so the
    successor provably activates after the incumbent has stopped.
    """

    epoch: int
    replica: int
    expires_at: float
    sent_at: float

    @property
    def wire_size(self) -> int:
        # epoch (4) + replica id (2) + two timestamps (6 each)
        return _BASE_MSG_BYTES + 18


@dataclass(frozen=True)
class ControllerCommand:
    """One epoch-fenced configuration command, leader -> switch.

    Switches track the highest controller epoch they have ever obeyed
    and reject commands stamped with a lower one — a deposed leader's
    in-flight reconfiguration cannot be applied after its successor has
    taken over (section 6.3's split-brain protection, lifted from the
    chain to the controller itself).
    """

    epoch: int
    kind: str  # "set_chain" | "set_catching_up" | "relevel_fence" | "relevel_switch" | "relevel_unfence"
    group: int
    payload: Any = None
    #: Frozen, so the trace is supplied at construction time.
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        # epoch (4) + kind (1) + descriptor/flag payload estimate (16)
        return _BASE_MSG_BYTES + 21


@dataclass(frozen=True)
class ReconstructQuery:
    """New leader asks one switch for its replication view (all groups)."""

    epoch: int
    replica: int
    sent_at: float
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + 12


@dataclass(frozen=True)
class GroupView:
    """One SRO group's state as reported by a switch."""

    group: int
    chain_version: int
    members: Tuple[str, ...]
    catching_up: bool


@dataclass(frozen=True)
class ScrubDigestQuery:
    """Scrub coordinator asks one member for digest-tree nodes.

    ``indexes`` names the nodes wanted at ``level`` (0 = root): a round
    starts with the root and walks only the divergent subtrees, so the
    exchange stays proportional to the divergence, not the store.
    """

    group: int
    round_id: int
    epoch: int
    level: int
    indexes: Tuple[int, ...]
    sent_at: float = 0.0

    @property
    def wire_size(self) -> int:
        # round id (4) + epoch (4) + level (1) + 2 bytes per index
        return _BASE_MSG_BYTES + 9 + 2 * len(self.indexes)


@dataclass(frozen=True)
class ScrubDigestReply:
    """One member's digests for the requested tree nodes."""

    group: int
    round_id: int
    switch: str
    level: int
    #: (index, 64-bit digest) pairs.
    nodes: Tuple[Tuple[int, int], ...]
    chain_version: int = 0

    @property
    def wire_size(self) -> int:
        # round id (4) + level (1) + version (4) + per node: index (2) + digest (8)
        return _BASE_MSG_BYTES + 9 + 10 * len(self.nodes)


@dataclass(frozen=True)
class ScrubKeyQuery:
    """Coordinator asks a member for the per-key hashes of divergent buckets."""

    group: int
    round_id: int
    epoch: int
    buckets: Tuple[int, ...]

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + 8 + 2 * len(self.buckets)


@dataclass(frozen=True)
class ScrubKeyReply:
    """A member's (key, entry-hash) listing for the queried buckets."""

    group: int
    round_id: int
    switch: str
    #: (key, 64-bit entry hash) pairs across all queried buckets.
    entries: Tuple[Tuple[Any, int], ...]
    key_bytes: int = 8

    @property
    def wire_size(self) -> int:
        return _BASE_MSG_BYTES + 8 + (self.key_bytes + 8) * len(self.entries)


@dataclass
class ScrubRepair:
    """Authoritative state re-propagated to a diverged chain member.

    Shaped like a :class:`SnapshotWrite`: carries the authority's
    current applied ``seq`` for the key's slot so the victim applies
    under the same monotone guard ("never overwrite newer with older"),
    plus the chain ``epoch`` the scrub round was fenced on — a repair
    planned before a failover must not resurrect pre-failover state.
    """

    group: int
    key: Any
    value: Any
    seq: int
    slot: int
    source: str
    epoch: int = 0
    round_id: int = 0
    key_bytes: int = 8
    value_bytes: int = 8
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        # slot/seq ride _BASE_MSG_BYTES framing; epoch (2) + round id (4)
        return _BASE_MSG_BYTES + self.key_bytes + self.value_bytes + 6


@dataclass(frozen=True)
class ReconstructReply:
    """A switch's answer to a :class:`ReconstructQuery`.

    ``groups`` carries one :class:`GroupView` per SRO group the switch
    replicates — enough for a fresh leader to rebuild chain membership,
    spot members stranded mid-catch-up, and adopt any descriptor newer
    than its stale local copy.
    """

    switch: str
    epoch: int
    groups: Tuple[GroupView, ...]
    sent_at: float
    trace: Any = _trace_field()

    @property
    def wire_size(self) -> int:
        # per group: id (2) + version (4) + members (4 each) + flag (1)
        per_group = sum(7 + 4 * len(g.members) for g in self.groups)
        return _BASE_MSG_BYTES + 8 + per_group
