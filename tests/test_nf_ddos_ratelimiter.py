"""Tests for the DDoS detector and the distributed rate limiter."""

from __future__ import annotations

import pytest

from repro.net.packet import make_udp_packet
from repro.nf.ddos import DdosDetectorNF
from repro.nf.ratelimiter import RateLimiterNF, user_of_packet
from repro.workload.attack import AttackScenario

from tests.nfworld import build_nf_world


def ddos_world(window=2e-3, replicate=True, **kwargs):
    world = build_nf_world(responder_servers=False, **kwargs)
    detectors = world.deployment.install_nf(
        DdosDetectorNF,
        window=window,
        entropy_threshold=-0.2,
        min_packets=30,
        replicate=replicate,
    )
    return world, detectors


class TestDdosDetector:
    def test_counters_updated_per_packet(self):
        world, detectors = ddos_world()
        client, server = world.clients[0], world.servers[0]
        for _ in range(5):
            client.inject(make_udp_packet(client.ip, server.ip, 1, 53))
        world.sim.run(until=0.05)
        spec = world.deployment.spec_by_name("ddos_src")
        counts = world.deployment.manager("ingress").ewo.local_state(spec.group_id)
        assert counts[client.ip] >= 5

    def test_no_alarm_on_benign_traffic(self):
        world, detectors = ddos_world()
        scenario = AttackScenario(
            sim=world.sim,
            clients=world.clients,
            server_ips=world.server_ips(),
            rng=world.rng,
            background_pps=30000,
            attack_pps=0.1,  # effectively no attack traffic
            attack_start=1.0,  # outside the run window
            attack_duration=0.0001,
        )
        scenario.start(duration=0.02)
        world.sim.run(until=0.03)
        assert all(not d.alarms for d in detectors)

    def test_alarm_raised_during_attack(self):
        world, detectors = ddos_world()
        scenario = AttackScenario(
            sim=world.sim,
            clients=world.clients,
            server_ips=world.server_ips(),
            rng=world.rng,
            background_pps=20000,
            attack_pps=200000,
            attack_start=10e-3,
            attack_duration=15e-3,
            bot_count=150,
        )
        scenario.start(duration=0.03)
        world.sim.run(until=0.04)
        assert any(d.alarms for d in detectors)
        first_alarm = min(t for d in detectors for t in d.alarms)
        assert first_alarm >= scenario.attack_start

    def test_alarm_clears_after_attack(self):
        world, detectors = ddos_world(window=2e-3)
        scenario = AttackScenario(
            sim=world.sim,
            clients=world.clients,
            server_ips=world.server_ips(),
            rng=world.rng,
            background_pps=20000,
            attack_pps=200000,
            attack_start=5e-3,
            attack_duration=10e-3,
        )
        scenario.start(duration=0.05)
        world.sim.run(until=0.06)
        assert all(not d.alarm_active for d in detectors)

    def test_detector_stop(self):
        world, detectors = ddos_world()
        for detector in detectors:
            detector.stop()
        world.sim.run(until=0.01)  # no window analysis crashes


class TestUserMapping:
    def test_user_is_source_prefix(self):
        packet = make_udp_packet("10.0.3.7", "1.1.1.1", 1, 2)
        assert user_of_packet(packet) == "10.0.3"

    def test_non_ip_packet(self):
        from repro.net.packet import Packet

        assert user_of_packet(Packet()) is None


def rl_world(limit_bps=4e6, window=2e-3, **kwargs):
    world = build_nf_world(responder_servers=False, **kwargs)
    limiters = world.deployment.install_nf(
        RateLimiterNF, limit_bps=limit_bps, window=window
    )
    return world, limiters


def blast(world, client, server_ip, pps, duration, payload=1000):
    """Inject a constant-rate packet stream from one client."""
    count = int(pps * duration)
    for i in range(count):
        world.sim.schedule_at(
            world.sim.now + i / pps,
            lambda c=client, d=server_ip: c.inject(
                make_udp_packet(c.ip, d, 1234, 9999, payload_size=1000)
            ),
        )
    return count


class TestRateLimiter:
    def test_under_limit_traffic_unthrottled(self):
        world, limiters = rl_world(limit_bps=100e6)
        client, server = world.clients[0], world.servers[0]
        sent = blast(world, client, server.ip, pps=1000, duration=0.01)
        world.sim.run(until=0.05)
        assert len(server.received) == sent

    def test_over_limit_user_throttled(self):
        world, limiters = rl_world(limit_bps=4e6, window=2e-3)
        client, server = world.clients[0], world.servers[0]
        # ~1 KB packets at 5000 pps = ~42 Mbps >> 4 Mbps limit
        sent = blast(world, client, server.ip, pps=5000, duration=0.05)
        world.sim.run(until=0.1)
        assert len(server.received) < sent
        dropped = sum(sum(l.bytes_dropped.values()) for l in limiters)
        assert dropped > 0

    def test_block_flag_replicates(self):
        world, limiters = rl_world(limit_bps=4e6, window=2e-3)
        client, server = world.clients[0], world.servers[0]
        blast(world, client, server.ip, pps=5000, duration=0.02)
        # check mid-blast: idle windows after the blast would clear the flag
        world.sim.run(until=0.015)
        spec = world.deployment.spec_by_name("rl_blocked")
        user = "10.0.0"
        blocked_views = [
            world.deployment.manager(name).ewo.local_state(spec.group_id).get(user)
            for name in world.deployment.switch_names
        ]
        assert all(blocked_views)

    def test_user_unblocked_when_rate_drops(self):
        world, limiters = rl_world(limit_bps=4e6, window=2e-3)
        client, server = world.clients[0], world.servers[0]
        blast(world, client, server.ip, pps=5000, duration=0.02)
        world.sim.run(until=0.1)  # idle windows clear the flag
        before = len(server.received)
        client.inject(make_udp_packet(client.ip, server.ip, 1, 2, payload_size=10))
        world.sim.run(until=0.15)
        assert len(server.received) == before + 1

    def test_aggregate_enforced_across_switches(self):
        """One user's flows through different switches share the budget."""
        world, limiters = rl_world(limit_bps=4e6, window=2e-3, clients=2)
        # both clients are 10.0.0.x -> same user
        assert user_of_packet(make_udp_packet(world.clients[0].ip, "x", 1, 2)) == \
            user_of_packet(make_udp_packet(world.clients[1].ip, "x", 1, 2))
        server = world.servers[0]
        for client in world.clients:
            blast(world, client, server.ip, pps=2500, duration=0.05)
        world.sim.run(until=0.1)
        total_sent = int(2500 * 0.05) * 2
        assert len(server.received) < total_sent

    def test_stop(self):
        world, limiters = rl_world()
        for limiter in limiters:
            limiter.stop()
        world.sim.run(until=0.01)
