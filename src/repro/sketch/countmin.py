"""Count-min sketch.

The DDoS detector of Table 1 tracks "the frequency of source and
destination IPs using approximate sketch data structures" updated and
read on every packet.  A count-min sketch is the standard choice: a
``depth x width`` matrix of counters, one hash function per row.

Two merge modes support the distributed experiments:

* :meth:`merge_sum` — element-wise addition, correct when each sketch
  summarizes a *disjoint* packet stream (each switch sees its own share
  of traffic); the paper's replication-of-counters story maps each
  switch's sketch to its own G-Counter-style slot and sums on read.
* :meth:`merge_max` — element-wise max, the idempotent merge used when
  re-synchronizing potentially duplicated state (EWO periodic sync may
  deliver the same snapshot twice; max makes re-delivery harmless).

Hashing is seeded and deterministic across runs.
"""

from __future__ import annotations

import hashlib
from typing import Hashable, List, Sequence

__all__ = ["CountMinSketch", "row_hash"]


def row_hash(seed: int, row: int, key: Hashable, width: int) -> int:
    """The sketch's per-row column index for ``key`` — public so in-switch
    programs can address sketch *cells* stored in shared register arrays
    (one key per cell) with the same hashing as this class."""
    digest = hashlib.blake2b(
        repr(key).encode("utf-8"), digest_size=8, salt=seed.to_bytes(8, "big"), person=row.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest, "big") % width


#: Backwards-compatible private alias.
_row_hash = row_hash


class CountMinSketch:
    """A depth x width count-min sketch with seeded hashing."""

    def __init__(self, depth: int = 4, width: int = 1024, seed: int = 0, counter_bytes: int = 4) -> None:
        if depth <= 0 or width <= 0:
            raise ValueError("sketch dimensions must be positive")
        self.depth = depth
        self.width = width
        self.seed = seed
        self.counter_bytes = counter_bytes
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.items_added = 0

    # ------------------------------------------------------------------
    def add(self, key: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("count-min cannot remove items")
        self.items_added += count
        for row in range(self.depth):
            self._rows[row][_row_hash(self.seed, row, key, self.width)] += count

    def estimate(self, key: Hashable) -> int:
        """Point query: an overestimate (never an underestimate)."""
        return min(
            self._rows[row][_row_hash(self.seed, row, key, self.width)]
            for row in range(self.depth)
        )

    # ------------------------------------------------------------------
    def merge_sum(self, other: "CountMinSketch") -> None:
        """Combine sketches of disjoint streams (addition)."""
        self._check_compatible(other)
        for mine, theirs in zip(self._rows, other._rows):
            for i, v in enumerate(theirs):
                mine[i] += v
        self.items_added += other.items_added

    def merge_max(self, other: "CountMinSketch") -> bool:
        """Idempotent max-merge (safe under re-delivery).  True if changed."""
        self._check_compatible(other)
        changed = False
        for mine, theirs in zip(self._rows, other._rows):
            for i, v in enumerate(theirs):
                if v > mine[i]:
                    mine[i] = v
                    changed = True
        self.items_added = max(self.items_added, other.items_added)
        return changed

    def _check_compatible(self, other: "CountMinSketch") -> None:
        if (self.depth, self.width, self.seed) != (other.depth, other.width, other.seed):
            raise ValueError(
                "cannot merge sketches with different dimensions or hash seeds"
            )

    # ------------------------------------------------------------------
    def copy(self) -> "CountMinSketch":
        duplicate = CountMinSketch(self.depth, self.width, self.seed, self.counter_bytes)
        duplicate._rows = [list(row) for row in self._rows]
        duplicate.items_added = self.items_added
        return duplicate

    def clear(self) -> None:
        for row in self._rows:
            for i in range(self.width):
                row[i] = 0
        self.items_added = 0

    def rows(self) -> List[List[int]]:
        """Raw counter matrix (what EWO puts into register arrays)."""
        return [list(row) for row in self._rows]

    def load_rows(self, rows: Sequence[Sequence[int]]) -> None:
        if len(rows) != self.depth or any(len(r) != self.width for r in rows):
            raise ValueError("row matrix shape mismatch")
        self._rows = [list(r) for r in rows]

    @property
    def state_bytes(self) -> int:
        return self.depth * self.width * self.counter_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountMinSketch):
            return NotImplemented
        return (
            self.depth == other.depth
            and self.width == other.width
            and self.seed == other.seed
            and self._rows == other._rows
        )
