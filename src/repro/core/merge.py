"""Merge policies for eventually consistent state (paper section 6.2).

The EWO engine implements the paper's two built-in policies natively
(last-writer-wins and CRDT counter vectors).  This module exposes the
same merge logic as standalone functions — used by tests, by the
directory-service migration path, and by anyone composing custom
mergeable register values — plus a :func:`merge_value` dispatcher for
values that implement their own merge (sketches, Bloom filters, CRDTs).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Tuple

from repro.crdt.clock import Timestamp

__all__ = [
    "merge_last_writer_wins",
    "merge_counter_vectors",
    "merge_value",
    "is_mergeable",
]

#: Method names recognized by :func:`merge_value`, tried in order.
_MERGE_METHODS = ("merge_max", "merge_or", "merge")


def merge_last_writer_wins(
    local: Tuple[Any, Timestamp], remote: Tuple[Any, Timestamp]
) -> Tuple[Any, Timestamp]:
    """LWW merge of two (value, version) pairs; higher version wins.

    Versions are totally ordered (switch id breaks ties), so the result
    is deterministic and commutative.
    """
    local_value, local_version = local
    remote_value, remote_version = remote
    if remote_version > local_version:
        return remote_value, remote_version
    return local_value, local_version


def merge_counter_vectors(local: List[int], remote: Iterable[int]) -> List[int]:
    """Element-wise max merge of counter slot vectors (G-Counter merge)."""
    merged = list(local)
    for index, value in enumerate(remote):
        if index >= len(merged):
            raise ValueError("remote vector longer than local replica group")
        if value > merged[index]:
            merged[index] = value
    return merged


def is_mergeable(value: Any) -> bool:
    """Does the value implement one of the recognized merge methods?"""
    return any(callable(getattr(value, name, None)) for name in _MERGE_METHODS)


def merge_value(local: Any, remote: Any) -> Any:
    """Merge two register values by their own merge method.

    Supports the mergeable types in this library: count-min sketches
    (``merge_max``), Bloom filters (``merge_or``), and CRDTs
    (``merge``).  The local value is mutated and returned.
    """
    for name in _MERGE_METHODS:
        method = getattr(local, name, None)
        if callable(method):
            argument = remote
            # CRDT merge() methods take the remote *state*, not the object.
            if name == "merge" and hasattr(remote, "state"):
                argument = remote.state()
            elif name == "merge" and hasattr(remote, "vector"):
                argument = remote.vector()
            method(argument)
            return local
    raise TypeError(f"{type(local).__name__} has no recognized merge method")
