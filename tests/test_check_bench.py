"""Tests for the bench-sidecar regression gate (tools/check_bench.py)."""

import importlib.util
import json
import math
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
_spec = importlib.util.spec_from_file_location(
    "check_bench", REPO_ROOT / "tools" / "check_bench.py"
)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _diff(base, fresh):
    return list(check_bench.diff(base, fresh, "", check_bench.DEFAULT_TOLERANCES))


class TestDiff:
    def test_identical_documents_match(self):
        doc = {"experiment": "P5", "results": [{"committed_rate": 100.0}]}
        assert _diff(doc, json.loads(json.dumps(doc))) == []

    def test_exact_fields_catch_any_drift(self):
        assert _diff({"commits": 347}, {"commits": 346})
        assert _diff({"protocol": "SRO"}, {"protocol": "EWO"})

    def test_timing_fields_get_a_band(self):
        base = {"mean_write_latency": 1.000e-3}
        assert _diff(base, {"mean_write_latency": 1.005e-3}) == []   # 0.5% ok
        assert _diff(base, {"mean_write_latency": 1.100e-3})         # 10% not

    def test_wall_clock_is_ignored(self):
        assert _diff({"wall_clock_s": 1.0}, {"wall_clock_s": 9.0}) == []

    def test_structural_changes_are_reported(self):
        assert _diff({"results": [1, 2]}, {"results": [1]})
        assert _diff({"a": 1}, {})
        assert _diff({}, {"a": 1})
        assert _diff({"a": 1}, {"a": "1"})

    def test_metric_lists_match_by_identity_not_position(self):
        base = [
            {"kind": "counter", "name": "x", "node": "s0", "value": 1},
            {"kind": "counter", "name": "y", "node": "s0", "value": 2},
        ]
        assert _diff(base, list(reversed(base))) == []
        missing = _diff(base, base[:1])
        assert any("missing" in m.detail for m in missing)

    def test_tolerance_lookup_order(self):
        tol = check_bench.tolerance_for
        assert tol("results[0].wall_clock_s", check_bench.DEFAULT_TOLERANCES) is math.inf
        assert tol("results[0].leaderless_window", check_bench.DEFAULT_TOLERANCES) == 1e-2
        assert tol("results[0].commits", check_bench.DEFAULT_TOLERANCES) == 0.0

    def test_percentile_band_class(self):
        """Percentile leaves get the interpolation band; attribution
        fractions stay exact even when their path mentions latency."""
        tol = check_bench.tolerance_for
        tolerances = check_bench.DEFAULT_TOLERANCES
        assert tol("metrics.histograms[0].p999", tolerances) == 1e-2
        assert tol("results[0].latency_us.p99", tolerances) == 1e-2
        assert tol("results[0].causes[2].fraction", tolerances) == 0.0
        assert tol("results[0].latency_fraction", tolerances) == 0.0
        assert tol("results[0].tail.causes[0].share", tolerances) == 0.0
        assert tol("results[0].fraction_sum_error_max", tolerances) == 0.0

    def test_fraction_drift_is_a_mismatch(self):
        base = {"results": [{"causes": [{"fraction": 0.5}], "p99": 1.0}]}
        fresh = {"results": [{"causes": [{"fraction": 0.5000001}], "p99": 1.005}]}
        mismatches = _diff(base, fresh)
        assert len(mismatches) == 1
        assert "fraction" in mismatches[0].path


class TestMain:
    def _write(self, directory, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_X1.json").write_text(json.dumps(payload))

    def test_passes_on_matching_sidecars(self, tmp_path, capsys):
        self._write(tmp_path / "base", {"experiment": "X1", "commits": 3})
        self._write(tmp_path / "fresh", {"experiment": "X1", "commits": 3})
        rc = check_bench.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        )
        assert rc == 0
        assert "ok   X1" in capsys.readouterr().out

    def test_fails_on_regression(self, tmp_path, capsys):
        self._write(tmp_path / "base", {"experiment": "X1", "commits": 3})
        self._write(tmp_path / "fresh", {"experiment": "X1", "commits": 2})
        rc = check_bench.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        )
        assert rc == 1
        assert "FAIL X1" in capsys.readouterr().out

    def test_fails_on_missing_fresh_sidecar(self, tmp_path):
        self._write(tmp_path / "base", {"experiment": "X1"})
        (tmp_path / "fresh").mkdir()
        rc = check_bench.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        )
        assert rc == 1

    def test_fails_when_no_baselines(self, tmp_path):
        (tmp_path / "base").mkdir()
        (tmp_path / "fresh").mkdir()
        rc = check_bench.main(
            ["--baseline", str(tmp_path / "base"), "--fresh", str(tmp_path / "fresh")]
        )
        assert rc == 1

    def test_id_filter(self, tmp_path, capsys):
        self._write(tmp_path / "base", {"experiment": "X1", "commits": 3})
        self._write(tmp_path / "fresh", {"experiment": "X1", "commits": 2})
        (tmp_path / "base" / "BENCH_Y2.json").write_text(json.dumps({"n": 1}))
        (tmp_path / "fresh" / "BENCH_Y2.json").write_text(json.dumps({"n": 1}))
        rc = check_bench.main(
            [
                "--baseline", str(tmp_path / "base"),
                "--fresh", str(tmp_path / "fresh"),
                "y2",
            ]
        )
        assert rc == 0
        assert "X1" not in capsys.readouterr().out
