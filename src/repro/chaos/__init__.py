"""Chaos engineering harness for the SwiShmem reproduction.

The paper's robustness claims (section 6.3: "no committed write is
lost" across SRO chain repair; EWO "needs no explicit failover
protocol") are only credible under an adversarial fault model.  This
package provides one, built entirely on the deterministic simulator so
every chaos run is reproducible from its seed:

* :mod:`repro.chaos.faults` — :class:`FaultInjector`: schedulable,
  seed-driven switch crashes/recoveries, link flaps, loss bursts
  (overlap-safe), network partitions, and silent-divergence faults —
  register corruption (``corrupt_register``) and frozen replicas
  (``stale_replica``) — each logging a
  :class:`~repro.protocols.antientropy.DivergenceEvent` for the
  anti-entropy scrubber to detect and heal.
* :mod:`repro.chaos.nemesis` — :class:`Nemesis`: a channel wrapper that
  duplicates and delays (hence reorders) in-flight SwiShmem packets;
  :class:`LeaderKiller`: crashes the controller leader mid-phase of a
  runtime re-level to exercise the takeover-resume path.
* :mod:`repro.chaos.invariants` — :class:`InvariantSuite`: continuous
  monitors asserting no-committed-write-lost, CRDT counter
  monotonicity, chain/multicast configuration consistency, and — once
  scrubbing is on — that every divergence heals within its deadline.
"""

from repro.chaos.faults import FaultInjector, FaultRecord
from repro.chaos.invariants import InvariantReport, InvariantSuite, Violation
from repro.chaos.nemesis import LeaderKiller, Nemesis

__all__ = [
    "FaultInjector",
    "FaultRecord",
    "InvariantReport",
    "InvariantSuite",
    "LeaderKiller",
    "Nemesis",
    "Violation",
]
