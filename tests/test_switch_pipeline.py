"""Tests for the match-action pipeline structure and stage memory split."""

from __future__ import annotations

import pytest

from repro.net.packet import make_tcp_packet
from repro.sim.engine import Simulator
from repro.switch.memory import OutOfSwitchMemory
from repro.switch.pipeline import Pipeline, StageAction
from repro.switch.pisa import PisaSwitch


def make_switch(memory_bytes=1 << 20):
    sim = Simulator()
    return sim, PisaSwitch("s0", sim, memory_bytes=memory_bytes)


class TestPipelineStructure:
    def test_memory_split_between_stages(self):
        sim, switch = make_switch(memory_bytes=12_000)
        pipeline = Pipeline(switch, num_stages=12)
        # the pipeline claims (free // 12) * 12 bytes from the switch
        assert switch.memory.used_bytes == 12_000
        stage = pipeline.add_stage("a")
        assert stage.memory.capacity_bytes == 1000

    def test_stage_allocation_bounded_by_share(self):
        sim, switch = make_switch(memory_bytes=1200)
        pipeline = Pipeline(switch, num_stages=12)
        stage = pipeline.add_stage("a")
        with pytest.raises(OutOfSwitchMemory):
            stage.register_array("big", size=100, width_bytes=4)  # 400 > 100

    def test_stage_count_limit(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=2)
        pipeline.add_stage("a")
        pipeline.add_stage("b")
        with pytest.raises(OutOfSwitchMemory):
            pipeline.add_stage("c")

    def test_object_factories(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=4)
        stage = pipeline.add_stage("state")
        reg = stage.register_array("r", 16, 4)
        table = stage.match_table("t", 8, 8, 8)
        meter = stage.meter("m", 4)
        counter = stage.counter("c", 4)
        assert stage.objects == {"r": reg, "t": table, "m": meter, "c": counter}
        assert stage.memory.used_bytes > 0

    def test_invalid_stage_count(self):
        sim, switch = make_switch()
        with pytest.raises(ValueError):
            Pipeline(switch, num_stages=0)


class TestPipelineExecution:
    def test_stages_run_in_order(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=4)
        order = []
        for name in ("one", "two"):
            stage = pipeline.add_stage(name)
            stage.set_handler(
                lambda p, f, n=name: (order.append(n), StageAction.CONTINUE)[1]
            )
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        result = pipeline.process(packet, "host")
        assert order == ["one", "two"]
        assert result == StageAction.FALLTHROUGH

    def test_consume_stops_pipeline(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=4)
        first = pipeline.add_stage("first")
        first.set_handler(lambda p, f: StageAction.CONSUME)
        second = pipeline.add_stage("second")
        seen = []
        second.set_handler(lambda p, f: (seen.append(1), StageAction.CONTINUE)[1])
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert pipeline.process(packet, "host") == StageAction.CONSUME
        assert seen == []

    def test_fallthrough_from_stage(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=2)
        stage = pipeline.add_stage("only")
        stage.set_handler(lambda p, f: StageAction.FALLTHROUGH)
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert pipeline.process(packet, "host") == StageAction.FALLTHROUGH

    def test_stage_without_handler_continues(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=2)
        pipeline.add_stage("noop")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert pipeline.process(packet, "host") == StageAction.FALLTHROUGH

    def test_packets_seen_counted(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=2)
        stage = pipeline.add_stage("count")
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        pipeline.process(packet, "host")
        pipeline.process(packet, "host")
        assert stage.packets_seen == 2

    def test_as_handler_adapts_to_switch(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=2)
        stage = pipeline.add_stage("consume-all")
        stage.set_handler(lambda p, f: StageAction.CONSUME)
        handler = pipeline.as_handler()
        packet = make_tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert handler(packet, "host") is True

    def test_memory_used_sums_stages(self):
        sim, switch = make_switch()
        pipeline = Pipeline(switch, num_stages=4)
        stage = pipeline.add_stage("s")
        stage.register_array("r", 8, 4)
        assert pipeline.memory_used() == 32
