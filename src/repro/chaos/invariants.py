"""Continuous invariant monitors for chaos runs.

Three monitors watch a deployment while faults are injected, each
checking one of the claims the paper makes about failure handling:

* **no-committed-write-lost** (SRO, section 6.3): once a write is acked
  to its writer, every full chain member holds it — live, the monitor
  checks per-slot applied sequence numbers; at finalization it also
  compares stored values.  Members that are failed, excised, or in
  catch-up are exempt (they are by definition not yet full members).

* **counter monotonicity** (EWO counter CRDT): the merged counter value
  — element-wise max across live replicas, summed over slots — never
  regresses.  A crash may legitimately destroy increments that were
  never gossiped (EWO trades durability for write latency), so the
  floor is re-baselined whenever the failure picture changes; any such
  loss is recorded as a note, not a violation.  Regression *without* a
  fault is a bug.

* **config consistency**: no live switch ever holds a chain descriptor
  newer than the controller's authoritative one; equal versions imply
  identical membership; and no detected-failed switch lingers in any
  chain or multicast group.

* **single leader** (controller HA): at no instant are two controller
  replicas simultaneously active — holding an unexpired lease, unfenced
  by the management partition, and willing to command switches.  The
  lease margin math (docs/PROTOCOLS.md) argues this can never happen;
  this monitor checks it empirically under crash/partition chaos.

* **divergence healed** (anti-entropy, protocols.antientropy): every
  silent divergence the chaos layer injects (``corrupt_register``,
  ``stale_replica``, ``drop_chain_applies``) logs a ``DivergenceEvent``;
  when a scrubber is running, each event must be healed within its heal
  bound (the scrubber pushes deadlines out while scrubbing is
  impossible — no leader, aborted rounds, victim down).  Replicas with
  an outstanding event are exempt from the *live* lost-write check (the
  divergence is known and being healed), but the strict end-of-run
  value check is not relaxed: divergence surviving finalization is a
  violation no matter what.

Monitors are asserted live on a periodic simulator process
(:meth:`InvariantSuite.start`) and summarized by
:meth:`InvariantSuite.finalize`, which runs the strict end-of-run
checks and returns an :class:`InvariantReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.registers import Consistency, EwoMode
from repro.obs.metrics import NULL_REGISTRY
from repro.sim.engine import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment

__all__ = ["InvariantSuite", "InvariantReport", "Violation"]

_MISSING = object()


@dataclass(frozen=True)
class Violation:
    """One invariant breach, timestamped at detection."""

    at: float
    monitor: str
    detail: str
    #: Causally-ordered flight-recorder timeline for the offending
    #: register key (None when the recorder is disabled or the breach
    #: has no single key).  Excluded from ``__str__`` so violation
    #: digests are identical with and without the recorder.
    timeline: Optional[str] = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:
        return f"[{self.at * 1e3:8.3f} ms] {self.monitor}: {self.detail}"

    def post_mortem(self) -> str:
        """The violation plus its causal timeline, when one was captured."""
        if self.timeline is None:
            return str(self)
        return f"{self}\n{self.timeline}"


@dataclass
class InvariantReport:
    """Outcome of a monitored run."""

    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    #: Non-fatal observations (e.g. counter floor re-baselined after a
    #: crash destroyed un-gossiped increments).
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, monitor: str) -> int:
        return sum(1 for v in self.violations if v.monitor == monitor)

    def post_mortems(self) -> List[str]:
        """Human-readable explanation of every violation: the breach
        line plus — when the flight recorder was on — the causal
        timeline of the offending key's spans."""
        return [v.post_mortem() for v in self.violations]

    def summary(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "checks": dict(self.checks),
            "violations": [str(v) for v in self.violations],
            "notes": list(self.notes),
        }


class InvariantSuite:
    """Live + final invariant checking against one deployment."""

    def __init__(self, deployment: "SwiShmemDeployment") -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.report = InvariantReport(
            checks={
                "no_lost_write": 0,
                "counter_monotonic": 0,
                "config_consistent": 0,
                "single_leader": 0,
                "divergence_healed": 0,
            }
        )
        #: Commit timestamps, for unavailability-window analysis.
        self.commit_times: List[float] = []
        #: (group, key) -> (slot, seq, value) of the newest committed write.
        self._commits: Dict[Tuple[int, Any], Tuple[int, int, Any]] = {}
        #: (group, slot) -> highest committed seq.
        self._slot_max: Dict[Tuple[int, int], int] = {}
        #: (group, key) -> highest merged counter value observed.
        self._counter_floor: Dict[Tuple[int, Any], Any] = {}
        self._fault_picture: Optional[Tuple] = None
        self._process: Optional[Process] = None
        deployment.commit_listeners.append(self._on_commit)
        # Live telemetry mirror of report.checks / violations, so a
        # metrics snapshot can be cross-checked against the suite's
        # verdicts without holding the report object.
        metrics = getattr(deployment, "metrics", NULL_REGISTRY)
        self._m_commits = metrics.counter("invariant.commits_observed", "invariants")
        self._m_checks = {
            monitor: metrics.counter(f"invariant.{monitor}.checks", "invariants")
            for monitor in self.report.checks
        }
        self._m_violations = {
            monitor: metrics.counter(f"invariant.{monitor}.violations", "invariants")
            for monitor in self.report.checks
        }

    # ------------------------------------------------------------------
    def _on_commit(self, writer: str, spec, key: Any, ack) -> None:
        self.commit_times.append(self.sim.now)
        self._m_commits.inc()
        gid = spec.group_id
        current = self._commits.get((gid, key))
        if current is None or ack.seq >= current[1]:
            self._commits[(gid, key)] = (ack.slot, ack.seq, ack.value)
        slot_key = (gid, ack.slot)
        if ack.seq > self._slot_max.get(slot_key, 0):
            self._slot_max[slot_key] = ack.seq

    # ------------------------------------------------------------------
    def start(self, period: float = 1e-3) -> "InvariantSuite":
        self._process = Process(
            self.sim, period, self.check_now, name="chaos:invariants"
        ).start()
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None

    def check_now(self) -> None:
        self._check_no_lost_write()
        self._check_counters()
        self._check_config()
        self._check_single_leader()
        self._check_divergence()

    def finalize(self) -> InvariantReport:
        """Stop live checking, run the strict end-of-run checks."""
        self.stop()
        self._check_no_lost_write(final=True)
        self._check_counters()
        self._check_config()
        self._check_single_leader()
        self._check_divergence()
        return self.report

    # ------------------------------------------------------------------
    def _violate(
        self,
        monitor: str,
        detail: str,
        group: Optional[int] = None,
        key: Any = None,
    ) -> None:
        timeline = None
        flightrec = getattr(self.deployment, "flight_recorder", None)
        if flightrec is not None and flightrec.enabled and group is not None:
            timeline = flightrec.render_timeline(group=group, key=key)
        self.report.violations.append(
            Violation(at=self.sim.now, monitor=monitor, detail=detail, timeline=timeline)
        )
        self._m_violations[monitor].inc()

    def _full_members(self, group_id: int):
        """Live, non-catching-up members of the group's current chain —
        the replicas obligated to hold every committed write."""
        chain = self.deployment.chains.get(group_id)
        if chain is None:
            return []
        members = []
        for name in chain.members:
            manager = self.deployment.manager(name)
            if manager.switch.failed:
                continue
            state = manager.sro.groups.get(group_id)
            if state is None or state.catching_up:
                continue
            if state.chain.version < chain.version:
                # The controller re-configured but the epoch-fenced
                # command is still in flight (config_latency): until it
                # lands — and with it the catching-up flag, which rides
                # the same FIFO management path — the switch is not yet
                # obligated to the new configuration.
                continue
            members.append((name, state))
        return members

    # ------------------------------------------------------------------
    # Monitor 1: no committed write lost
    # ------------------------------------------------------------------
    def _check_no_lost_write(self, final: bool = False) -> None:
        self.report.checks["no_lost_write"] += 1
        self._m_checks["no_lost_write"].inc()
        # With a scrubber running, replicas with a known, still-unhealed
        # injected divergence (or a frozen apply unit) lag committed
        # seqs *by design* — that is the fault, and the divergence_healed
        # monitor owns its deadline.  Without one, silent divergence is
        # exactly a lost write and stays a violation here.
        scrubbing = self.deployment.scrubber is not None
        diverged = (
            {
                (e.group, e.switch)
                for e in self.deployment.divergence_log
                if not e.healed
            }
            if scrubbing
            else set()
        )
        for (gid, slot), seq in self._slot_max.items():
            for name, state in self._full_members(gid):
                if (gid, name) in diverged or (
                    scrubbing and state.chaos_frozen_until > self.sim.now
                ):
                    continue
                applied = state.pending.applied_seq(slot)
                if applied < seq:
                    self._violate(
                        "no_lost_write",
                        f"group {gid} slot {slot}: {name} applied seq {applied}"
                        f" < committed seq {seq}",
                        group=gid,
                    )
        if not final:
            return
        # End-of-run: the committed *values* must be present too (a
        # later committed same-slot write to another key, or an applied-
        # but-uncommitted overwrite, legitimately supersedes — detected
        # by applied_seq having moved past the committed seq).
        for (gid, key), (slot, seq, value) in self._commits.items():
            for name, state in self._full_members(gid):
                applied = state.pending.applied_seq(slot)
                if applied == seq and state.store.get(key, _MISSING) != value:
                    held = state.store.get(key, _MISSING)
                    shown = "<absent>" if held is _MISSING else repr(held)
                    self._violate(
                        "no_lost_write",
                        f"group {gid} key {key!r}: {name} holds {shown},"
                        f" committed {value!r} at seq {seq}",
                        group=gid,
                        key=key,
                    )

    # ------------------------------------------------------------------
    # Monitor 2: CRDT counter monotonicity
    # ------------------------------------------------------------------
    def _current_fault_picture(self) -> Tuple:
        controller = self.deployment.controller
        down = tuple(
            name
            for name in self.deployment.switch_names
            if self.deployment.manager(name).switch.failed
        )
        # Injected silent divergence perturbs merged counters like a
        # crash does (a corrupted slot lowers the max-merge): count the
        # log so each new event re-baselines instead of violating.
        return (
            len(controller.failures),
            len(controller.recoveries),
            down,
            len(self.deployment.divergence_log),
        )

    def _check_counters(self) -> None:
        self.report.checks["counter_monotonic"] += 1
        self._m_checks["counter_monotonic"].inc()
        picture = self._current_fault_picture()
        rebaseline = picture != self._fault_picture
        self._fault_picture = picture
        for gid, spec in self.deployment.specs.items():
            if spec.consistency is not Consistency.EWO:
                continue
            if spec.ewo_mode is not EwoMode.COUNTER:
                continue
            merged: Dict[Any, List[int]] = {}
            for name in self.deployment.switch_names:
                manager = self.deployment.manager(name)
                if manager.switch.failed:
                    continue
                state = manager.ewo.groups.get(gid)
                if state is None:
                    continue
                for key, vector in state.vectors.items():
                    best = merged.setdefault(key, [0] * len(vector))
                    if len(best) < len(vector):
                        best.extend([0] * (len(vector) - len(best)))
                    for i, v in enumerate(vector):
                        if v > best[i]:
                            best[i] = v
            totals = {key: sum(vector) for key, vector in merged.items()}
            # A key every live replica lost entirely (e.g. sole holder
            # crashed) never shows up in the merge — still a regression.
            for floor_gid, key in self._counter_floor:
                if floor_gid == gid and key not in totals:
                    totals[key] = 0
            for key, total in totals.items():
                floor = self._counter_floor.get((gid, key), 0)
                if total < floor:
                    if rebaseline:
                        self.report.notes.append(
                            f"[{self.sim.now * 1e3:.3f} ms] counter {gid}/{key!r}"
                            f" re-baselined {floor} -> {total} after fault"
                            f" (un-gossiped increments destroyed)"
                        )
                        self._counter_floor[(gid, key)] = total
                    else:
                        self._violate(
                            "counter_monotonic",
                            f"group {gid} key {key!r}: merged value regressed"
                            f" {floor} -> {total} with no fault",
                        )
                else:
                    self._counter_floor[(gid, key)] = total

    # ------------------------------------------------------------------
    # Monitor 3: chain / multicast configuration consistency
    # ------------------------------------------------------------------
    def _check_config(self) -> None:
        self.report.checks["config_consistent"] += 1
        self._m_checks["config_consistent"].inc()
        controller = self.deployment.controller
        detected_failed = set(controller._known_failed)
        for gid, chain in self.deployment.chains.items():
            for member in chain.members:
                if member in detected_failed:
                    self._violate(
                        "config_consistent",
                        f"group {gid}: detected-failed {member} still in chain",
                    )
            for name in self.deployment.switch_names:
                manager = self.deployment.manager(name)
                if manager.switch.failed:
                    continue
                state = manager.sro.groups.get(gid)
                if state is None:
                    continue
                if state.chain.version > chain.version:
                    self._violate(
                        "config_consistent",
                        f"group {gid}: {name} holds chain v{state.chain.version}"
                        f" ahead of controller v{chain.version}",
                    )
                elif (
                    state.chain.version == chain.version
                    and state.chain.members != chain.members
                ):
                    self._violate(
                        "config_consistent",
                        f"group {gid}: {name} disagrees on membership at"
                        f" v{chain.version}: {state.chain.members} vs {chain.members}",
                    )
        for gid, spec in self.deployment.specs.items():
            if spec.consistency is not Consistency.EWO:
                continue
            group = self.deployment.multicast.get(gid)
            for member in group.members:
                if member in detected_failed:
                    self._violate(
                        "config_consistent",
                        f"group {gid}: detected-failed {member} still in"
                        f" multicast group",
                    )

    # ------------------------------------------------------------------
    # Monitor 4: at most one active controller leader
    # ------------------------------------------------------------------
    def _check_single_leader(self) -> None:
        self.report.checks["single_leader"] += 1
        self._m_checks["single_leader"].inc()
        replicas = getattr(self.deployment.controller, "replicas", None)
        if not replicas:
            return
        active = [r.replica_id for r in replicas if r._is_active()]
        if len(active) > 1:
            self._violate(
                "single_leader",
                f"replicas {active} simultaneously hold an active lease",
            )

    # ------------------------------------------------------------------
    # Monitor 5: injected divergence detected and healed within bound
    # ------------------------------------------------------------------
    def _check_divergence(self) -> None:
        self.report.checks["divergence_healed"] += 1
        self._m_checks["divergence_healed"].inc()
        scrubber = self.deployment.scrubber
        if scrubber is None:
            return  # nothing promises healing without the scrub loop
        now = self.sim.now
        for event in self.deployment.divergence_log:
            if event.healed or event.violated:
                continue
            deadline = (
                event.deadline
                if event.deadline is not None
                else event.at + scrubber.heal_bound
            )
            if now > deadline:
                event.violated = True
                self._violate(
                    "divergence_healed",
                    f"group {event.group}: {event.kind} divergence on"
                    f" {event.switch} (key {event.key!r}) unhealed"
                    f" {(now - event.at) * 1e3:.3f} ms after injection"
                    f" (bound {scrubber.heal_bound * 1e3:.3f} ms)",
                    group=event.group,
                    key=event.key,
                )
