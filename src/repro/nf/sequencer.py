"""In-network sequencer (paper section 9's motivating application).

"Some new in-network applications like sequencers [NOPaxos] have such
data" — state that is *both* strongly consistent and written on every
packet, the combination the base SwiShmem design cannot serve without
control-plane involvement on each write.

This sequencer composes two of this reproduction's section 9
extensions:

* **linearizable fetch-add** — the chain head assigns ``current + 1``
  at sequencing time, so numbers are globally unique and gap-free no
  matter which switch a packet entered at;
* **data-plane write buffering** — the packet recirculates (not parked
  in CPU DRAM) until the chain commits, so the sequencer sustains rates
  far beyond the control-plane ceiling (experiment P6).

The assigned number is stamped into the packet's IPv4 identification
field when the held packet is released, exactly how an in-switch
sequencer would expose ordering to end hosts (NOPaxos stamps a header
field).  Packets to the sequenced destination port get numbers;
everything else passes through untouched.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, RegisterSpec
from repro.nf.base import NetworkFunction

__all__ = ["SequencerNF"]


class SequencerNF(NetworkFunction):
    """Linearizable packet sequencing on the chain, CPU-free."""

    NAME = "sequencer"

    def __init__(self, manager, handles, *, sequenced_port: int = 9000,
                 dataplane: bool = True) -> None:
        super().__init__(manager, handles)
        self.sequenced_port = sequenced_port
        self.counter = handles["seq_counter"]
        self.sequenced_packets = 0

    @classmethod
    def build_specs(cls, *, sequenced_port: int = 9000,
                    dataplane: bool = True) -> List[RegisterSpec]:
        return [
            RegisterSpec(
                name="seq_counter",
                consistency=Consistency.SRO,
                capacity=16,
                key_bytes=4,
                value_bytes=8,
                dataplane_write_buffering=dataplane,
            )
        ]

    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        l4 = packet.tcp if packet.tcp is not None else packet.udp
        if packet.ipv4 is None or l4 is None or l4.dst_port != self.sequenced_port:
            return self.forward()
        if packet.ipv4.identification:
            return self.forward()  # sequenced upstream already
        self.sequenced_packets += 1
        self.counter.fetch_add("global")

        def stamp(output_packet, results: Dict[Any, Any]) -> None:
            # 16-bit header field, as a real in-switch sequencer would use
            output_packet.ipv4.identification = results["global"] & 0xFFFF

        ctx.on_release = stamp
        return self.forward()
