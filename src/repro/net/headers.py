"""Packet header definitions.

The reproduction models real header stacks so that (a) the PISA parser
has something to parse, (b) bandwidth accounting uses true on-wire sizes,
and (c) the SwiShmem replication messages ride in a header of their own,
exactly as an in-switch implementation would encapsulate them.

Headers are lightweight dataclasses rather than byte buffers: the
simulator never needs to serialize to real bytes, only to know sizes and
field values.  Each header class reports its wire size via ``wire_size``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "EthernetHeader",
    "IPv4Header",
    "TcpHeader",
    "UdpHeader",
    "TcpFlags",
    "SwiShmemOp",
    "SwiShmemHeader",
    "FiveTuple",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_SWISHMEM",
]

PROTO_TCP = 6
PROTO_UDP = 17
#: IANA-unassigned protocol number used for SwiShmem replication traffic.
PROTO_SWISHMEM = 0xFD


@dataclass
class EthernetHeader:
    """Simplified Ethernet II header."""

    src_mac: str = "00:00:00:00:00:00"
    dst_mac: str = "00:00:00:00:00:00"
    ethertype: int = 0x0800  # IPv4

    wire_size: int = field(default=14, init=False, repr=False)


@dataclass
class IPv4Header:
    """IPv4 header (options not modeled)."""

    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    protocol: int = PROTO_TCP
    ttl: int = 64
    dscp: int = 0
    identification: int = 0

    wire_size: int = field(default=20, init=False, repr=False)


class TcpFlags(enum.IntFlag):
    """TCP control flags relevant to the stateful NFs."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


@dataclass
class TcpHeader:
    """TCP header (no options)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: TcpFlags = TcpFlags.NONE

    wire_size: int = field(default=20, init=False, repr=False)


@dataclass
class UdpHeader:
    """UDP header."""

    src_port: int = 0
    dst_port: int = 0

    wire_size: int = field(default=8, init=False, repr=False)


class SwiShmemOp(enum.Enum):
    """Operations carried by the SwiShmem replication header (paper section 6).

    SRO chain protocol:
      WRITE_REQUEST  — control plane of the writer switch -> chain head
      CHAIN_UPDATE   — propagated hop by hop down the chain
      WRITE_ACK      — tail -> writer (release buffered packet) and
                       tail -> chain members (clear pending bits)
      READ_FORWARD   — pending-bit hit: packet forwarded to tail for
                       processing against the latest committed value

    EWO protocol:
      EWO_UPDATE     — asynchronous multicast of (version, value) pairs
      EWO_SYNC       — periodic packet-generator sync of a register range

    Recovery (section 6.3):
      SNAPSHOT_WRITE — snapshot replay toward a recovering switch
      SNAPSHOT_ACK   — recovering switch confirms one replayed entry

    Failure detection (section 6.3):
      HEARTBEAT      — periodic liveness beacon from every switch toward
                       the controller's host switch (data-plane packet
                       generator traffic; loss/partition affects it like
                       any other packet)

    Anti-entropy (repro.protocols.antientropy):
      SCRUB_REPAIR   — authoritative (key, value, seq) re-propagated to
                       a diverged chain member located by digest scrub
    """

    WRITE_REQUEST = "write_request"
    CHAIN_UPDATE = "chain_update"
    WRITE_ACK = "write_ack"
    READ_FORWARD = "read_forward"
    EWO_UPDATE = "ewo_update"
    EWO_SYNC = "ewo_sync"
    SNAPSHOT_WRITE = "snapshot_write"
    SNAPSHOT_ACK = "snapshot_ack"
    HEARTBEAT = "heartbeat"
    SCRUB_REPAIR = "scrub_repair"


@dataclass
class SwiShmemHeader:
    """SwiShmem replication header.

    ``payload`` carries the protocol message object (see
    ``repro.protocols.messages``); its ``wire_size`` is accounted
    separately as payload bytes.

    ``dst_node`` addresses the packet to one specific switch: protocol
    packets often transit other SwiShmem switches on the way (a chain
    successor is not always a direct neighbor), and a transit switch
    must *forward* rather than consume them.  On the wire this is the
    destination switch's loopback IP.
    """

    op: SwiShmemOp = SwiShmemOp.EWO_UPDATE
    register_group: int = 0
    dst_node: Optional[str] = None

    #: op(1) + group(2) + length(2) + checksum(2) + flags(1) + dst IP(4)
    wire_size: int = field(default=12, init=False, repr=False)


@dataclass(frozen=True)
class FiveTuple:
    """Canonical connection identifier used by all stateful NFs."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: int = PROTO_TCP

    def reverse(self) -> "FiveTuple":
        """The tuple of the reverse direction of the same connection."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def as_tuple(self) -> Tuple[str, str, int, int, int]:
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)

    def __str__(self) -> str:
        proto = {PROTO_TCP: "tcp", PROTO_UDP: "udp"}.get(self.protocol, str(self.protocol))
        return f"{proto}:{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}"
