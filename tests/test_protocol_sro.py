"""Tests for the SRO/ERO chain protocol (paper section 6.1)."""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import check_history
from repro.core.registers import Consistency, RegisterSpec
from repro.sim.engine import Simulator


def declare_sro(deployment, name="reg", **kwargs):
    return deployment.declare(RegisterSpec(name, Consistency.SRO, **kwargs))


class TestWritePath:
    def test_write_replicates_to_all(self, deployment):
        spec = declare_sro(deployment)
        deployment.manager("s1").register_write(spec, "k", "v")
        deployment.sim.run(until=0.05)
        assert all(store.get("k") == "v" for store in deployment.sro_stores(spec))

    def test_write_commit_latency_positive(self, deployment):
        spec = declare_sro(deployment)
        manager = deployment.manager("s0")
        manager.register_write(spec, "k", 1)
        deployment.sim.run(until=0.05)
        stats = manager.sro.stats_for(spec.group_id)
        assert stats.writes_committed == 1
        assert stats.mean_write_latency > 0

    def test_control_plane_state_slower_than_register_state(self, make_deployment):
        dep, _, _ = make_deployment(3)
        fast = dep.declare(RegisterSpec("fast", Consistency.SRO))
        slow = dep.declare(
            RegisterSpec("slow", Consistency.SRO, control_plane_state=True)
        )
        manager = dep.manager("s0")
        manager.register_write(fast, "k", 1)
        manager.register_write(slow, "k", 1)
        dep.sim.run(until=0.1)
        fast_latency = manager.sro.stats_for(fast.group_id).mean_write_latency
        slow_latency = manager.sro.stats_for(slow.group_id).mean_write_latency
        assert manager.sro.stats_for(slow.group_id).writes_committed == 1
        assert slow_latency > fast_latency

    def test_writes_to_same_key_serialized_by_head(self, deployment):
        spec = declare_sro(deployment)
        deployment.manager("s0").register_write(spec, "k", "from-s0")
        deployment.manager("s2").register_write(spec, "k", "from-s2")
        deployment.sim.run(until=0.1)
        values = {repr(store.get("k")) for store in deployment.sro_stores(spec)}
        assert len(values) == 1  # all replicas agree on the winner

    def test_many_keys_many_writers(self, deployment):
        spec = declare_sro(deployment, capacity=512)
        for i in range(30):
            writer = deployment.manager(f"s{i % 3}")
            writer.register_write(spec, f"key{i}", i)
        deployment.sim.run(until=0.3)
        stores = deployment.sro_stores(spec)
        assert all(len(store) == 30 for store in stores)
        assert all(store == stores[0] for store in stores)

    def test_head_dedup_prevents_double_sequencing(self, deployment):
        spec = declare_sro(deployment)
        manager = deployment.manager("s1")
        engine = manager.sro
        manager.register_write(spec, "k", "v")
        deployment.sim.run(until=0.05)
        state = deployment.manager("s0").sro.groups[spec.group_id]
        slot = state.pending.slot_of("k")
        assert state.pending.applied_seq(slot) == 1  # sequenced exactly once


class TestReadPath:
    def test_local_read_when_quiescent(self, deployment):
        spec = declare_sro(deployment)
        deployment.manager("s0").register_write(spec, "k", 7)
        deployment.sim.run(until=0.05)
        value = deployment.manager("s1").register_read(spec, "k", None)
        stats = deployment.manager("s1").sro.stats_for(spec.group_id)
        assert value == 7
        assert stats.local_reads >= 1
        assert stats.forwarded_reads == 0

    def test_default_returned_for_missing_key(self, deployment):
        spec = declare_sro(deployment)
        assert deployment.manager("s0").register_read(spec, "nope", "dflt") == "dflt"

    def test_tail_reads_served_at_tail(self, deployment):
        spec = declare_sro(deployment)
        tail = deployment.chains[spec.group_id].read_tail
        deployment.manager(tail).register_read(spec, "k", None)
        assert deployment.manager(tail).sro.stats_for(spec.group_id).tail_reads == 1

    def test_pending_bit_set_during_write_then_cleared(self, make_deployment):
        # slow links widen the pending window so the 20us probe sees it
        dep, _, _ = make_deployment(3, control_op_latency=200e-6, latency=100e-6)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        dep.manager("s0").register_write(spec, "k", 1)
        # run just far enough for the chain update to pass s1 but not
        # for the ack to return
        state = dep.manager("s1").sro.groups[spec.group_id]
        slot = state.pending.slot_of("k")
        observed_pending = []

        def probe():
            observed_pending.append(state.pending.is_pending(slot))
            if len(observed_pending) < 500:
                dep.sim.schedule(20e-6, probe)

        dep.sim.schedule(20e-6, probe)
        dep.sim.run(until=0.05)
        assert any(observed_pending)  # was pending at some point
        assert not state.pending.is_pending(slot)  # cleared by the ack

    def test_ero_never_forwards_reads(self, make_deployment):
        dep, _, _ = make_deployment(3, control_op_latency=200e-6)
        spec = dep.declare(RegisterSpec("ero", Consistency.ERO))
        dep.manager("s0").register_write(spec, "k", 1)
        # read at another switch immediately, mid-write
        value = dep.manager("s1").register_read(spec, "k", "stale-default")
        stats = dep.manager("s1").sro.stats_for(spec.group_id)
        assert stats.forwarded_reads == 0
        assert value == "stale-default"  # write not yet applied: stale read
        dep.sim.run(until=0.1)
        assert dep.manager("s1").register_read(spec, "k", None) == 1


class TestLinearizability:
    def test_sro_history_linearizable_under_concurrency(self, make_deployment):
        dep, _, _ = make_deployment(3, record_history=True)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        sim = dep.sim

        # interleave writes from two switches with reads from all three
        for i in range(10):
            sim.schedule(
                i * 150e-6,
                lambda i=i: dep.manager(f"s{i % 2}").register_write(spec, "k", i),
            )
        for i in range(30):
            sim.schedule(
                7e-6 + i * 61e-6,
                lambda i=i: _read_ignoring_forward(dep.manager(f"s{i % 3}"), spec),
            )
        sim.run(until=0.1)
        report = check_history(dep.history)
        assert report.ok, f"violations: {report.violations}"

    def test_write_history_records_intervals(self, deployment):
        spec = declare_sro(deployment)
        deployment.manager("s0").register_write(spec, "k", 1)
        deployment.sim.run(until=0.05)
        writes = [op for op in deployment.history.operations() if op.kind == "write"]
        assert len(writes) == 1
        assert writes[0].complete
        assert writes[0].completed_at > writes[0].invoked_at


def _read_ignoring_forward(manager, spec):
    """Control-plane-style read helper for history tests."""
    manager.register_read(spec, "k", None)


class TestMemoryAccounting:
    def test_sro_group_charges_memory(self, make_deployment):
        dep, _, switches = make_deployment(2)
        before = switches[0].memory.used_bytes
        dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=100, key_bytes=8, value_bytes=8))
        used = switches[0].memory.used_bytes - before
        # store (100*16) + pending (100*13) + dedup (64*(12+value_bytes))
        assert used == 1600 + 1300 + 64 * (12 + 8)

    def test_ero_same_pending_table_layout(self, make_deployment):
        """ERO keeps sequence state; the saving is behavioral (no
        pending-bit protocol), and shared slots shrink both."""
        dep, _, switches = make_deployment(2)
        spec = dep.declare(
            RegisterSpec("ero", Consistency.ERO, capacity=100, pending_slots=10)
        )
        state = dep.manager("s0").sro.groups[spec.group_id]
        assert state.pending.slots == 10
        assert state.track_pending is False


class TestOrderingUnderLoss:
    def test_writes_commit_despite_link_loss(self, make_deployment):
        dep, _, _ = make_deployment(3, loss_rate=0.2)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        for i in range(10):
            dep.manager("s0").register_write(spec, f"k{i}", i)
        dep.sim.run(until=1.0)
        stats = dep.manager("s0").sro.stats_for(spec.group_id)
        assert stats.writes_committed == 10
        stores = dep.sro_stores(spec)
        assert all(store == stores[0] for store in stores)
        assert len(stores[0]) == 10

    def test_retries_counted_under_loss(self, make_deployment):
        dep, _, _ = make_deployment(3, loss_rate=0.3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        for i in range(20):
            dep.manager("s1").register_write(spec, f"k{i}", i)
        dep.sim.run(until=5.0)
        stats = dep.manager("s1").sro.stats_for(spec.group_id)
        assert stats.retries > 0
        assert stats.writes_committed == 20


class TestReorderStash:
    """Regression: a reordered chain update must not wedge its slot.

    The gap branch used to *drop* an update that arrived ahead of a
    missing predecessor, leaving every later sequence number in the
    slot to heal one writer-retry round at a time; under a bursty
    same-key write stream a single reordered packet convoyed the slot
    behind exponential backoffs until writers exhausted their attempts
    and the chain wedged permanently.  Members now hold the update in
    a bounded reorder stash and apply it the instant the gap fills."""

    def _reordering_deployment(self, make_deployment):
        from repro.chaos import Nemesis

        dep, topo, _ = make_deployment(3)
        # Delay every SwiShmem packet by up to 50us: back-to-back writes
        # to one slot are spaced ~µs apart, so reorders are guaranteed.
        Nemesis(seed=7, duplicate_prob=0.3, delay_prob=1.0, max_delay=50e-6).install(
            topo
        )
        return dep

    def test_burst_to_one_key_commits_every_write(self, make_deployment):
        dep = self._reordering_deployment(make_deployment)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        writer = dep.manager("s2")
        for i in range(40):
            dep.sim.schedule(
                i * 2e-6, writer.register_write, spec, "hot", i, label="burst"
            )
        dep.sim.run(until=2.0)
        stats = writer.sro.stats_for(spec.group_id)
        assert stats.writes_failed == 0
        assert stats.writes_committed == 40
        stores = dep.sro_stores(spec)
        assert all(store.get("hot") == stores[0].get("hot") for store in stores)
        # The stash did the healing: reorders were absorbed in transit.
        stashed = sum(
            dep.manager(f"s{i}").sro.stats_for(spec.group_id).reorder_stashed
            for i in range(3)
        )
        assert stashed > 0

    def test_chain_quiesces_after_reordered_burst(self, make_deployment):
        # The releveling drain polls quiesced(); a wedged slot would
        # park every future drain of this group forever.
        dep = self._reordering_deployment(make_deployment)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        for i in range(40):
            dep.sim.schedule(
                i * 2e-6,
                dep.manager(f"s{i % 3}").register_write,
                spec,
                "hot",
                i,
                label="burst",
            )
        dep.sim.run(until=2.0)
        for i in range(3):
            manager = dep.manager(f"s{i}")
            assert manager.sro.quiesced(spec.group_id)
            assert not manager.sro.groups[spec.group_id].reorder

    def test_stash_is_bounded(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO))
        state = dep.manager("s1").sro.groups[spec.group_id]
        assert state.reorder_capacity == 64
        # Overflow degrades to the old drop behavior, never unbounded.
        from repro.protocols.messages import ChainUpdate

        chain = tuple(dep.chains[spec.group_id].members)
        for seq in range(2, 2 + state.reorder_capacity + 8):
            dep.manager("s1").sro._process_chain_update(
                ChainUpdate(
                    group=spec.group_id,
                    key="k",
                    value=seq,
                    seq=seq,
                    slot=state.pending.slot_of("k"),
                    token=None,
                    chain=chain,
                )
            )
        assert len(state.reorder) == state.reorder_capacity
        assert state.stats.out_of_order_drops == 8
