"""Operation-history recording.

To *prove* that SRO registers are linearizable (and to *measure* how
far ERO/EWO registers deviate), every register operation can be recorded
as an interval: invocation time, completion time, the key, and the value
written or returned.  The recorder is deployment-global, so one history
interleaves operations from all switches — which is exactly what a
consistency checker needs.

Recording conventions:

* **SRO/ERO writes** span [initiation at the writer switch, commit ack
  at the writer's control plane] — the window during which the write is
  concurrent with other operations.
* **Reads** are recorded at their response time as zero-width intervals.
  This is conservative: a point interval imposes *stronger* real-time
  constraints than the true (wider) interval, so a history that passes
  the checker with point reads is certainly linearizable with the true
  intervals.
* **EWO writes** complete locally, so they are also zero-width.  EWO
  histories are expected to fail linearizability — the experiments
  measure the violation count, not a pass/fail.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Operation", "HistoryRecorder"]

_op_ids = itertools.count(1)


@dataclass
class Operation:
    """One recorded register operation."""

    op_id: int
    kind: str  # "read" | "write"
    group: int
    key: Any
    value: Any
    node: str
    invoked_at: float
    completed_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def overlaps(self, other: "Operation") -> bool:
        """Whether the two operations are concurrent in real time."""
        if not (self.complete and other.complete):
            return True
        return not (
            self.completed_at < other.invoked_at
            or other.completed_at < self.invoked_at
        )

    def __repr__(self) -> str:
        end = f"{self.completed_at * 1e6:.1f}us" if self.complete else "?"
        return (
            f"<{self.kind} g{self.group} {self.key!r}={self.value!r} "
            f"@{self.node} [{self.invoked_at * 1e6:.1f}us,{end}]>"
        )


class HistoryRecorder:
    """Collects operations, grouped by (register group, key)."""

    def __init__(self) -> None:
        self._operations: List[Operation] = []
        self._open: Dict[Any, Operation] = {}

    # ------------------------------------------------------------------
    def record_instant(
        self, kind: str, group: int, key: Any, value: Any, node: str, time: float
    ) -> Operation:
        """Record a zero-width operation (reads, EWO writes)."""
        op = Operation(
            op_id=next(_op_ids),
            kind=kind,
            group=group,
            key=key,
            value=value,
            node=node,
            invoked_at=time,
            completed_at=time,
        )
        self._operations.append(op)
        return op

    def begin(
        self, token: Any, kind: str, group: int, key: Any, value: Any, node: str, time: float
    ) -> Operation:
        """Open an interval operation, matched later by ``token``."""
        op = Operation(
            op_id=next(_op_ids),
            kind=kind,
            group=group,
            key=key,
            value=value,
            node=node,
            invoked_at=time,
        )
        self._operations.append(op)
        self._open[token] = op
        return op

    def complete(self, token: Any, time: float) -> Optional[Operation]:
        op = self._open.pop(token, None)
        if op is not None:
            op.completed_at = time
        return op

    def abort(self, token: Any) -> Optional[Operation]:
        """Mark an open operation as never completed (kept in the history
        as a potentially-applied pending op, which checkers must treat as
        optional)."""
        return self._open.pop(token, None)

    # ------------------------------------------------------------------
    def operations(self) -> List[Operation]:
        return list(self._operations)

    def for_key(self, group: int, key: Any) -> List[Operation]:
        return [
            op for op in self._operations if op.group == group and op.key == key
        ]

    def keys(self) -> List[Tuple[int, Any]]:
        seen = []
        seen_set = set()
        for op in self._operations:
            marker = (op.group, repr(op.key))
            if marker not in seen_set:
                seen_set.add(marker)
                seen.append((op.group, op.key))
        return seen

    def clear(self) -> None:
        self._operations.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self._operations)
