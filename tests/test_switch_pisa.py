"""Tests for the PISA switch: handlers, forwarding, atomicity, mirroring,
multicast, recirculation, control plane, packet generator, service rate."""

from __future__ import annotations

import pytest

from repro.net.endhost import AddressBook, EndHost
from repro.net.multicast import MulticastRegistry
from repro.net.packet import Packet, make_tcp_packet
from repro.net.routing import RoutingTable
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch
from repro.switch.pktgen import PacketGenerator


def make_fabric(n=3, hosts=2):
    sim = Simulator()
    topo = Topology(sim, SeededRng(11))
    book = AddressBook()
    switches = build_full_mesh(topo, lambda name: PisaSwitch(name, sim), n)
    host_list = []
    for i in range(hosts):
        host = topo.add_node(EndHost(f"h{i}", sim, f"10.0.0.{i+1}", book))
        topo.connect(f"h{i}", switches[i % n].name)
        host_list.append(host)
    routing = RoutingTable(topo)
    registry = MulticastRegistry()
    for switch in switches:
        switch.routing = routing
        switch.address_book = book
        switch.multicast = registry
    return sim, topo, switches, host_list, book, routing, registry


class TestForwarding:
    def test_l3_forwarding_host_to_host(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert len(hosts[1].received) == 1

    def test_unknown_ip_dropped(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        hosts[0].inject(make_tcp_packet("10.0.0.1", "99.9.9.9", 1, 2))
        sim.run()
        drops = sum(s.stats.dropped_packets for s in switches)
        assert drops == 1

    def test_ttl_expiry_drops(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        packet.ipv4.ttl = 1
        hosts[0].inject(packet)
        sim.run()
        assert len(hosts[1].received) == 0

    def test_forward_to_node_by_name(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        packet = Packet()
        switches[0].forward_to_node(packet, "s2")
        sim.run()
        assert switches[0].stats.tx_packets == 1

    def test_handler_priority_front(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        order = []
        switches[0].install_handler(lambda p, f: (order.append("back"), False)[1])
        switches[0].install_handler(lambda p, f: (order.append("front"), False)[1], front=True)
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert order[:2] == ["front", "back"]

    def test_consuming_handler_stops_chain(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        seen = []
        switches[0].install_handler(lambda p, f: True)  # consume everything
        switches[0].install_handler(lambda p, f: (seen.append(1), False)[1])
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert seen == []
        assert len(hosts[1].received) == 0

    def test_remove_handler(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        handler = lambda p, f: True
        switches[0].install_handler(handler)
        switches[0].remove_handler(handler)
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert len(hosts[1].received) == 1


class TestAtomicity:
    def test_reentrant_pipeline_pass_rejected(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        switch = switches[0]

        def evil_handler(packet, from_node):
            # Synchronously re-delivering violates atomicity.
            switch._pipeline_pass(Packet(), from_node)
            return True

        switch.install_handler(evil_handler)
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        with pytest.raises(RuntimeError, match="re-entrant"):
            sim.run()

    def test_meta_reset_per_switch(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        metas = []
        for switch in switches:
            switch.install_handler(
                lambda p, f, s=switch: (metas.append((s.name, dict(p.meta))), False)[1]
            )
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        packet.meta["junk"] = True
        hosts[0].inject(packet)
        sim.run()
        assert all("junk" not in meta for _, meta in metas)
        assert all("ingress_node" in meta for _, meta in metas)


class TestRecirculation:
    def test_recirculated_packet_reprocessed(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        switch = switches[0]
        passes = []

        def handler(packet, from_node):
            passes.append(sim.now)
            if len(passes) == 1:
                switch.recirculate(packet)
                return True
            return False

        switch.install_handler(handler)
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert len(passes) == 2
        assert passes[1] > passes[0]
        assert switch.stats.recirculated_packets == 1
        assert len(hosts[1].received) == 1


class TestMirrorAndMulticast:
    def test_mirror_session(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        switches[0].configure_mirror_session(1, "s1")
        received = []
        switches[1].install_handler(lambda p, f: (received.append(p), True)[1])
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)

        def mirror_then_forward(p, f):
            switches[0].mirror(p, 1)
            return False

        switches[0].install_handler(mirror_then_forward)
        hosts[0].inject(packet)
        sim.run()
        # s1 sees both the mirror clone and the original in transit to h1.
        assert len(received) == 2
        uids = {p.uid for p in received}
        assert packet.uid in uids  # the original passed through
        assert len(uids) == 2  # plus a distinct clone
        assert switches[0].stats.mirrored_packets == 1

    def test_mirror_unknown_session(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        assert switches[0].mirror(Packet(), 99) is False

    def test_multicast_to_group(self):
        sim, topo, switches, hosts, book, routing, registry = make_fabric()
        registry.create(7, ["s0", "s1", "s2"])
        hits = []
        for switch in switches[1:]:
            switch.install_handler(lambda p, f, s=switch: (hits.append(s.name), True)[1])
        copies = switches[0].multicast_to_group(Packet(), 7)
        sim.run()
        assert copies == 2
        assert sorted(hits) == ["s1", "s2"]
        assert switches[0].stats.multicast_copies == 2


class TestControlPlane:
    def test_punt_costs_cpu_latency(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        switch = switches[0]
        seen = []
        switch.install_handler(
            lambda p, f: (switch.punt_to_cpu(p, lambda pk: seen.append(sim.now)), True)[1]
        )
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert len(seen) == 1
        assert seen[0] >= switch.control.op_latency
        assert switch.control.ops_executed == 1

    def test_cpu_serializes_ops(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        control = switches[0].control
        done = []
        control.submit(lambda: done.append(sim.now))
        control.submit(lambda: done.append(sim.now))
        sim.run()
        assert done[1] - done[0] == pytest.approx(control.op_latency)

    def test_buffer_and_release(self):
        sim, topo, switches, hosts, book, *_ = make_fabric()
        control = switches[0].control
        packet = make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2)
        control.buffer_packet("tok", packet, "h1")
        assert control.buffered_count == 1
        sim.run(until=1e-3)
        held = control.release_packet("tok")
        assert held == pytest.approx(1e-3)
        sim.run()
        assert len(hosts[1].received) == 1
        assert control.release_packet("tok") is None  # double release

    def test_drop_buffered(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        control = switches[0].control
        control.buffer_packet("tok", Packet(), "h1")
        assert control.drop_buffered("tok") is True
        assert control.drop_buffered("tok") is False

    def test_timer_fires_via_cpu(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        control = switches[0].control
        fired = []
        control.set_timer(1e-3, lambda: fired.append(sim.now))
        sim.run()
        assert len(fired) == 1
        assert fired[0] >= 1e-3 + control.op_latency

    def test_failed_switch_cpu_inert(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        switch = switches[0]
        switch.fail()
        fired = []
        switch.control.submit(lambda: fired.append(1))
        sim.run()
        assert fired == []

    def test_max_buffered_tracked(self):
        sim, topo, switches, *_ = make_fabric()
        control = switches[0].control
        control.buffer_packet("a", Packet(), "s1")
        control.buffer_packet("b", Packet(), "s1")
        control.drop_buffered("a")
        assert control.max_buffered == 2


class TestServiceRate:
    def test_finite_rate_serializes(self):
        sim = Simulator()
        topo = Topology(sim, SeededRng(1))
        book = AddressBook()
        switch = topo.add_node(PisaSwitch("s0", sim, pipeline_rate_pps=1000.0))
        host_a = topo.add_node(EndHost("a", sim, "10.0.0.1", book))
        host_b = topo.add_node(EndHost("b", sim, "10.0.0.2", book))
        topo.connect("a", "s0")
        topo.connect("b", "s0")
        switch.routing = RoutingTable(topo)
        switch.address_book = book
        for _ in range(5):
            host_a.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        # 5 packets at 1000 pps -> last service at ~5 ms
        assert sim.now >= 5e-3
        assert len(host_b.received) == 5

    def test_queue_overflow_drops(self):
        sim = Simulator()
        topo = Topology(sim, SeededRng(1))
        book = AddressBook()
        switch = topo.add_node(
            PisaSwitch("s0", sim, pipeline_rate_pps=10.0, queue_capacity=3)
        )
        host_a = topo.add_node(EndHost("a", sim, "10.0.0.1", book))
        host_b = topo.add_node(EndHost("b", sim, "10.0.0.2", book))
        topo.connect("a", "s0")
        topo.connect("b", "s0")
        switch.routing = RoutingTable(topo)
        switch.address_book = book
        for _ in range(10):
            host_a.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert switch.stats.queue_drops == 7
        assert len(host_b.received) == 3


class TestPacketGenerator:
    def test_periodic_generation(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        sent = []
        generator = PacketGenerator(
            switches[0], period=1e-3,
            body=lambda: sent.append(switches[0].generate_packet(Packet(), "s1")),
        ).start()
        sim.run(until=5.5e-3)
        assert len(sent) == 5
        assert switches[0].stats.generated_packets == 5

    def test_stops_on_switch_failure(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        ticks = []
        generator = PacketGenerator(switches[0], period=1e-3, body=lambda: ticks.append(1)).start()
        sim.run(until=2.5e-3)
        switches[0].fail()
        sim.run(until=10e-3)
        assert len(ticks) == 2
        assert not generator.alive

    def test_phase_staggering(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        ticks = []
        PacketGenerator(
            switches[0], period=1e-3, body=lambda: ticks.append(sim.now), phase=0.3e-3
        ).start()
        sim.run(until=1.5e-3)
        assert ticks[0] == pytest.approx(0.3e-3)


class TestFailStop:
    def test_failed_switch_drops_traffic(self):
        sim, topo, switches, hosts, *_ = make_fabric()
        for switch in switches:
            switch.fail()
        hosts[0].inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        sim.run()
        assert len(hosts[1].received) == 0

    def test_generate_packet_fails_when_dead(self):
        sim, topo, switches, *_ = make_fabric()
        switches[0].fail()
        assert switches[0].generate_packet(Packet(), "s1") is False
