"""Tests for linearizable fetch-add and the in-network sequencer."""

from __future__ import annotations

import pytest

from repro.core.registers import Consistency, EwoMode, FetchAdd, RegisterSpec
from repro.net.packet import make_udp_packet
from repro.nf.sequencer import SequencerNF

from tests.nfworld import build_nf_world


class TestFetchAdd:
    def test_sequential_fetch_adds_are_dense(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("seq", Consistency.SRO))
        for i in range(10):
            dep.sim.schedule(
                i * 100e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_fetch_add(spec, "n"),
            )
        dep.sim.run(until=0.1)
        assert all(s.get("n") == 10 for s in dep.sro_stores(spec))

    def test_concurrent_fetch_adds_never_lose_updates(self, make_deployment):
        """The difference from blind writes: concurrent +1s all count."""
        dep, _, _ = make_deployment(3)
        spec = dep.declare(RegisterSpec("seq", Consistency.SRO))
        # all at once from all three switches
        for i in range(15):
            dep.sim.schedule(
                i * 1e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_fetch_add(spec, "n"),
            )
        dep.sim.run(until=0.2)
        assert all(s.get("n") == 15 for s in dep.sro_stores(spec))

    def test_retry_does_not_double_add(self, make_deployment):
        """Head dedup must replay the *assigned* value on retries."""
        dep, _, _ = make_deployment(3, loss_rate=0.3)
        spec = dep.declare(RegisterSpec("seq", Consistency.SRO))
        for i in range(12):
            dep.sim.schedule(
                i * 200e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_fetch_add(spec, "n"),
            )
        dep.sim.run(until=3.0)
        stats_sum = sum(
            dep.manager(n).sro.stats_for(spec.group_id).retries
            for n in dep.switch_names
        )
        assert stats_sum > 0  # retries actually happened
        assert all(s.get("n") == 12 for s in dep.sro_stores(spec))

    def test_rejected_on_ewo_groups(self, make_deployment):
        dep, _, _ = make_deployment(2)
        spec = dep.declare(RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        with pytest.raises(TypeError):
            dep.manager("s0").register_fetch_add(spec, "k")

    def test_fetch_add_amount(self, make_deployment):
        dep, _, _ = make_deployment(2)
        spec = dep.declare(RegisterSpec("seq", Consistency.SRO))
        dep.manager("s0").register_fetch_add(spec, "n", amount=5)
        dep.manager("s1").register_fetch_add(spec, "n", amount=3)
        dep.sim.run(until=0.1)
        assert all(s.get("n") == 8 for s in dep.sro_stores(spec))


class TestSequencerNF:
    def _world(self, dataplane=True, **kwargs):
        world = build_nf_world(responder_servers=False, **kwargs)
        instances = world.deployment.install_nf(
            SequencerNF, sequenced_port=9000, dataplane=dataplane
        )
        return world, instances

    def test_packets_stamped_with_unique_dense_numbers(self):
        world, instances = self._world()
        client, server = world.clients[0], world.servers[0]
        for i in range(12):
            world.sim.schedule(
                i * 50e-6,
                lambda p=5000 + i: client.inject(
                    make_udp_packet(client.ip, server.ip, p, 9000, payload_size=32)
                ),
            )
        world.sim.run(until=0.1)
        stamps = sorted(r.packet.ipv4.identification for r in server.received)
        assert stamps == list(range(1, 13))  # unique, gap-free, from 1

    def test_numbers_unique_across_entry_switches(self):
        """Different clients (different ECMP paths / sequencing switches)
        still draw from one global sequence."""
        world, instances = self._world(clients=4)
        server = world.servers[0]
        for i in range(16):
            client = world.clients[i % 4]
            world.sim.schedule(
                i * 50e-6,
                lambda c=client, p=5000 + i: c.inject(
                    make_udp_packet(c.ip, server.ip, p, 9000, payload_size=32)
                ),
            )
        world.sim.run(until=0.2)
        stamps = [r.packet.ipv4.identification for r in server.received]
        assert len(stamps) == 16
        assert sorted(stamps) == list(range(1, 17))

    def test_unsequenced_traffic_untouched(self):
        world, instances = self._world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_udp_packet(client.ip, server.ip, 1, 80, payload_size=32))
        world.sim.run(until=0.05)
        assert len(server.received) == 1
        assert server.received[0].packet.ipv4.identification == 0
        assert sum(i.sequenced_packets for i in instances) == 0

    def test_sequencing_adds_no_cpu_work(self):
        world, instances = self._world(dataplane=True)
        client, server = world.clients[0], world.servers[0]
        for i in range(6):
            world.sim.schedule(
                i * 50e-6,
                lambda p=5000 + i: client.inject(
                    make_udp_packet(client.ip, server.ip, p, 9000, payload_size=32)
                ),
            )
        world.sim.run(until=0.1)
        assert len(server.received) == 6
        total_cpu = sum(s.control.ops_executed for s in world.switches)
        assert total_cpu == 0

    def test_control_plane_variant_also_correct(self):
        world, instances = self._world(dataplane=False)
        client, server = world.clients[0], world.servers[0]
        for i in range(6):
            world.sim.schedule(
                i * 300e-6,
                lambda p=5000 + i: client.inject(
                    make_udp_packet(client.ip, server.ip, p, 9000, payload_size=32)
                ),
            )
        world.sim.run(until=0.2)
        stamps = sorted(r.packet.ipv4.identification for r in server.received)
        assert stamps == list(range(1, 7))
        total_cpu = sum(s.control.ops_executed for s in world.switches)
        assert total_cpu > 0  # the CPU path was exercised
