"""The determinism lint: the repo is clean, and violations are caught.

Chaos replays and benchmark digests are only byte-identical per seed if
no code path reaches the process-global :mod:`random` generator.  The
lint in ``tools/lint_determinism.py`` enforces that statically; these
tests pin its behavior and keep the tree clean under it.
"""

import importlib.util
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT_PATH = os.path.join(REPO_ROOT, "tools", "lint_determinism.py")

spec = importlib.util.spec_from_file_location("lint_determinism", LINT_PATH)
lint = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lint)


class TestRepoIsClean:
    def test_cli_passes_on_repo(self):
        proc = subprocess.run(
            [sys.executable, LINT_PATH],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "determinism lint: OK" in proc.stdout

    def test_scans_all_source_roots(self):
        roots = [
            r for r in lint.DEFAULT_ROOTS
            if os.path.isdir(os.path.join(REPO_ROOT, r))
        ]
        assert "src" in roots and "benchmarks" in roots and "tests" in roots


class TestViolationsCaught:
    def _lint_source(self, tmp_path, source):
        target = tmp_path / "snippet.py"
        target.write_text(source)
        return lint.lint_file(str(target))

    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrandom.random()\n",
            "import random\nrandom.seed(42)\n",
            "import random\nx = random.randint(0, 9)\n",
            "import random as rnd\nrnd.shuffle([1, 2])\n",
            "from random import randint\n",
            "from random import Random, choice\n",
        ],
    )
    def test_global_generator_use_flagged(self, tmp_path, source):
        violations = self._lint_source(tmp_path, source)
        assert len(violations) == 1
        path, line, message = violations[0]
        assert line > 0
        assert "unseeded" in message

    @pytest.mark.parametrize(
        "source",
        [
            # derived seeds are the sanctioned construction
            "import random\nrng = random.Random(derive_seed(0, 'x'))\n",
            "import random\nrng = random.Random(seed)\n",
            "from random import Random\nrng = Random(derive_seed(1, 'y'))\n",
            # no-arg Random() seeds from the OS; out of this rule's scope
            "import random\nrng = random.Random()\n",
            "from repro.sim.random import SeededRng\n",
            # attribute named like the module on another object is fine
            "class C:\n    random = 1\nc = C()\nc.random\n",
            # a different class merely named Random is not random.Random
            "class Random:\n    pass\nrng = Random(7)\n",
        ],
    )
    def test_seeded_use_allowed(self, tmp_path, source):
        assert self._lint_source(tmp_path, source) == []

    @pytest.mark.parametrize(
        "source",
        [
            "import random\nrng = random.Random(7)\n",
            "import random\nrng = random.Random(0)\n",
            "from random import Random\nrng = Random(7)\n",
            "from random import Random as R\nrng = R(42)\n",
            "import random as rnd\nrng = rnd.Random('salt')\n",
        ],
    )
    def test_literal_seed_flagged(self, tmp_path, source):
        violations = self._lint_source(tmp_path, source)
        assert len(violations) == 1
        path, line, message = violations[0]
        assert line > 0
        assert "literal seed" in message
        assert "derive" in message

    @pytest.mark.parametrize(
        "source",
        [
            'import sys\nsys.path.insert(0, ".")\n',
            'import sys\nsys.path.insert(0, "")\n',
            'import sys\nsys.path.append("src")\n',
            'import sys as system\nsystem.path.insert(0, ".")\n',
        ],
    )
    def test_cwd_relative_sys_path_flagged(self, tmp_path, source):
        violations = self._lint_source(tmp_path, source)
        assert len(violations) == 1
        assert "CWD" in violations[0][2]

    @pytest.mark.parametrize(
        "source",
        [
            # __file__-derived: the sanctioned pattern
            "import os\nimport sys\n"
            "sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))\n",
            # absolute literal is CWD-independent
            'import sys\nsys.path.insert(0, "/opt/somewhere")\n',
            # path methods on other objects are not sys.path
            'route = object()\nroute.path.insert(0, ".")\n',
        ],
    )
    def test_file_derived_sys_path_allowed(self, tmp_path, source):
        assert self._lint_source(tmp_path, source) == []

    def _lint_obs_source(self, tmp_path, source):
        """Place the snippet under a repro/obs/ directory so the
        wall-clock scope rule applies."""
        obs_dir = tmp_path / "repro" / "obs"
        obs_dir.mkdir(parents=True)
        target = obs_dir / "snippet.py"
        target.write_text(source)
        return lint.lint_file(str(target))

    @pytest.mark.parametrize(
        "source",
        [
            "import time\ntime.time()\n",
            "import time\nstamp = time.time_ns()\n",
            "import time as clk\nclk.time()\n",
            "from time import time\n",
            "from datetime import datetime\ndatetime.now()\n",
            "import datetime\ndatetime.datetime.utcnow()\n",
            "from datetime import date\ndate.today()\n",
        ],
    )
    def test_wall_clock_in_obs_flagged(self, tmp_path, source):
        violations = self._lint_obs_source(tmp_path, source)
        assert len(violations) == 1
        assert "wall clock" in violations[0][2]

    @pytest.mark.parametrize(
        "source",
        [
            # the sim profiler's host-cost clock stays allowed
            "import time\nclock = time.perf_counter\n",
            # parsing/formatting does not read the clock
            "from datetime import datetime\n"
            "datetime.fromtimestamp(0.0)\n",
            # attribute named like the module on another object is fine
            "class C:\n    time = 1\nC().time\n",
        ],
    )
    def test_non_wall_clock_time_use_allowed(self, tmp_path, source):
        assert self._lint_obs_source(tmp_path, source) == []

    def test_wall_clock_outside_obs_not_flagged(self, tmp_path):
        """The rule is scoped: benchmark harness code may read the host
        clock (it reports wall time, not simulated results)."""
        violations = self._lint_source(tmp_path, "import time\ntime.time()\n")
        assert violations == []

    @pytest.mark.parametrize(
        "source",
        [
            "d = {}\ntotal = sum(d.values())\n",
            "d = {}\ntotal = sum(v for v in d.values())\n",
            "d = {}\ntotal = sum(c for k, c in d.items())\n",
            "d = {}\ntotal = sum([v * 2 for v in d.values()])\n",
            "d = {}\ntotal = sum(c for k, c in d.items() if k != 'x')\n",
        ],
    )
    def test_sum_over_unordered_dict_in_obs_flagged(self, tmp_path, source):
        violations = self._lint_obs_source(tmp_path, source)
        assert len(violations) == 1
        assert "unordered dict iteration" in violations[0][2]
        assert "sorted" in violations[0][2]

    @pytest.mark.parametrize(
        "source",
        [
            # sorted(...) pins the accumulation order — sanctioned
            "d = {}\ntotal = sum(sorted(d.values()))\n",
            "d = {}\ntotal = sum(c for k, c in sorted(d.items()))\n",
            # lists/tuples iterate in a fixed order already
            "xs = []\ntotal = sum(xs)\n",
            "xs = []\ntotal = sum(x * 2 for x in xs)\n",
            # non-sum consumers of dict views are out of scope
            "d = {}\ntotal = max(d.values(), default=0)\n",
            # a method merely named sum on another object is not sum()
            "class C:\n    def sum(self, xs):\n        return 0\n"
            "d = {}\nC().sum(d.values())\n",
        ],
    )
    def test_ordered_or_non_dict_sum_in_obs_allowed(self, tmp_path, source):
        assert self._lint_obs_source(tmp_path, source) == []

    def test_sum_over_dict_outside_obs_not_flagged(self, tmp_path):
        """Scoped like the wall-clock rule: only obs feeds committed
        sidecars that compare float aggregates exactly."""
        violations = self._lint_source(tmp_path, "d = {}\ntotal = sum(d.values())\n")
        assert violations == []

    def test_exempt_module_skipped(self):
        exempt = os.path.join(REPO_ROOT, "src", lint.EXEMPT_SUFFIX)
        assert os.path.exists(exempt)
        assert lint.lint_file(exempt) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        violations = self._lint_source(tmp_path, "def broken(:\n")
        assert len(violations) == 1
        assert "syntax error" in violations[0][2]
