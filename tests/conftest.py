"""Shared fixtures for the test suite.

Most fixtures build small deployments; tests that need special
parameters (loss, sync periods, pending-slot sharing) construct their
own via the ``make_deployment`` factory fixture.

Also installs a per-test wall-clock timeout (``--per-test-timeout``,
default 120 s) so a hung simulation — an event loop that never drains,
a process that reschedules forever — fails that one test instead of
wedging the whole CI job.  Hand-rolled on ``SIGALRM`` because the
environment has no pytest-timeout plugin; on platforms without
``SIGALRM`` (or off the main thread) it degrades to a no-op.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, List, Optional, Tuple

import pytest

from repro.core.manager import SwiShmemDeployment
from repro.net.endhost import AddressBook, EndHost
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


def pytest_addoption(parser):
    parser.addoption(
        "--per-test-timeout",
        type=float,
        default=120.0,
        help="wall-clock seconds allowed per test (0 disables); enforced "
        "via SIGALRM, so a runaway simulation fails loudly instead of "
        "hanging the run",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    limit = item.config.getoption("--per-test-timeout")
    can_alarm = (
        limit > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not can_alarm:
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded --per-test-timeout={limit:g}s"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(seed=1234)


@pytest.fixture
def make_deployment(sim: Simulator, rng: SeededRng) -> Callable:
    """Factory: build an n-switch full-mesh deployment.

    Returns ``(deployment, topology, switches)``.  Keyword arguments are
    forwarded to :class:`SwiShmemDeployment`, plus ``loss_rate`` and
    ``latency`` for the mesh links and ``memory_bytes`` /
    ``control_op_latency`` for the switches.
    """

    def build(
        n: int = 3,
        loss_rate: float = 0.0,
        latency: float = 5e-6,
        memory_bytes: int = 10 * 1024 * 1024,
        control_op_latency: float = 20e-6,
        **kwargs,
    ) -> Tuple[SwiShmemDeployment, Topology, List[PisaSwitch]]:
        topo = Topology(sim, rng)
        switches = build_full_mesh(
            topo,
            lambda name: PisaSwitch(
                name,
                sim,
                memory_bytes=memory_bytes,
                control_op_latency=control_op_latency,
            ),
            n,
            loss_rate=loss_rate,
            latency=latency,
        )
        deployment = SwiShmemDeployment(sim, topo, switches, **kwargs)
        return deployment, topo, switches

    return build


@pytest.fixture
def deployment(make_deployment) -> SwiShmemDeployment:
    """A plain three-switch deployment with history recording."""
    dep, _, _ = make_deployment(3, record_history=True)
    return dep
