"""Approximate data structures: count-min sketch, Bloom filter, heavy hitters."""

from repro.sketch.bloom import BloomFilter
from repro.sketch.countmin import CountMinSketch, row_hash
from repro.sketch.heavyhitter import (
    HeavyHitterTracker,
    empirical_entropy,
    normalized_entropy,
)

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "row_hash",
    "HeavyHitterTracker",
    "empirical_entropy",
    "normalized_entropy",
]
