"""Tests for switch memory accounting and P4 stateful objects."""

from __future__ import annotations

import pytest

from repro.switch.memory import DEFAULT_SWITCH_MEMORY_BYTES, MemoryBudget, OutOfSwitchMemory
from repro.switch.objects import Counter, MatchTable, Meter, MeterColor, RegisterArray


class TestMemoryBudget:
    def test_default_is_ten_megabytes(self):
        assert DEFAULT_SWITCH_MEMORY_BYTES == 10 * 1024 * 1024

    def test_allocate_and_free_accounting(self):
        budget = MemoryBudget(1000)
        budget.allocate("a", 300)
        budget.allocate("b", 200)
        assert budget.used_bytes == 500
        assert budget.free_bytes == 500
        assert budget.utilization() == pytest.approx(0.5)

    def test_over_allocation_raises(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 90)
        with pytest.raises(OutOfSwitchMemory) as excinfo:
            budget.allocate("b", 20)
        assert excinfo.value.requested == 20
        assert excinfo.value.available == 10

    def test_release_returns_bytes(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 60)
        assert budget.release("a") == 60
        assert budget.free_bytes == 100
        assert budget.release("a") == 0

    def test_usage_map_sorted_largest_first(self):
        budget = MemoryBudget(1000)
        budget.allocate("small", 10)
        budget.allocate("big", 500)
        assert budget.usage_by_owner()[0] == ("big", 500)

    def test_repeat_owner_accumulates(self):
        budget = MemoryBudget(100)
        budget.allocate("a", 30)
        budget.allocate("a", 30)
        assert budget.used_bytes == 60

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)
        budget = MemoryBudget(10)
        with pytest.raises(ValueError):
            budget.allocate("a", -1)


class TestRegisterArray:
    def _array(self, size=8, width=4):
        return RegisterArray("r", size, width, MemoryBudget(1 << 20))

    def test_memory_charged(self):
        budget = MemoryBudget(100)
        RegisterArray("r", 10, 4, budget)
        assert budget.used_bytes == 40

    def test_read_write(self):
        reg = self._array()
        reg.write(3, 42)
        assert reg.read(3) == 42
        assert reg.read(0) == 0  # initial

    def test_update_read_modify_write(self):
        reg = self._array()
        result = reg.update(1, lambda v: v + 5)
        assert result == 5
        assert reg.read(1) == 5

    def test_bounds_checked(self):
        reg = self._array(size=4)
        with pytest.raises(IndexError):
            reg.read(4)
        with pytest.raises(IndexError):
            reg.write(-1, 0)

    def test_counters_track_accesses(self):
        reg = self._array()
        reg.read(0)
        reg.write(0, 1)
        reg.update(0, lambda v: v)
        assert reg.read_count == 2  # read + update
        assert reg.write_count == 2  # write + update

    def test_snapshot_is_copy(self):
        reg = self._array()
        reg.write(0, 7)
        snap = reg.snapshot()
        reg.write(0, 8)
        assert snap[0] == 7

    def test_fill(self):
        reg = self._array(size=3)
        reg.fill(9)
        assert [reg.read(i) for i in range(3)] == [9, 9, 9]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0, 4, MemoryBudget(100))
        with pytest.raises(ValueError):
            RegisterArray("r", 4, 0, MemoryBudget(100))


class TestMatchTable:
    def _table(self, max_entries=4):
        return MatchTable("t", max_entries, 8, 8, MemoryBudget(1 << 20))

    def test_lookup_hit_and_miss(self):
        table = self._table()
        table.insert("k", "v")
        assert table.lookup("k") == "v"
        assert table.lookup("nope") is None
        assert table.lookup("nope", miss="default") == "default"
        assert table.hit_count == 1 and table.lookup_count == 3

    def test_capacity_enforced(self):
        table = self._table(max_entries=2)
        table.insert("a", 1)
        table.insert("b", 2)
        with pytest.raises(OverflowError):
            table.insert("c", 3)
        table.insert("a", 99)  # overwrite existing is fine when full
        assert table.lookup("a") == 99

    def test_remove(self):
        table = self._table()
        table.insert("a", 1)
        assert table.remove("a") is True
        assert table.remove("a") is False
        assert "a" not in table

    def test_occupancy(self):
        table = self._table(max_entries=4)
        table.insert("a", 1)
        assert table.occupancy == pytest.approx(0.25)
        assert len(table) == 1

    def test_memory_charged(self):
        budget = MemoryBudget(1000)
        MatchTable("t", 10, 8, 8, budget)
        assert budget.used_bytes == 160

    def test_entries_iteration_sorted(self):
        table = self._table()
        table.insert("b", 2)
        table.insert("a", 1)
        assert [k for k, _ in table.entries()] == ["a", "b"]


class TestMeter:
    def test_green_within_rate(self):
        meter = Meter("m", 1, MemoryBudget(1 << 20), rate_bps=8e6, burst_bytes=1000)
        assert meter.execute(0, 500, now=0.0) == MeterColor.GREEN

    def test_red_when_burst_exhausted(self):
        meter = Meter("m", 1, MemoryBudget(1 << 20), rate_bps=8e6, burst_bytes=1000)
        meter.execute(0, 1000, now=0.0)
        assert meter.execute(0, 1000, now=0.0) == MeterColor.RED

    def test_refills_over_time(self):
        meter = Meter("m", 1, MemoryBudget(1 << 20), rate_bps=8e6, burst_bytes=1000)
        meter.execute(0, 1000, now=0.0)
        # 8e6 bps = 1e6 B/s -> 1 ms refills 1000 bytes (capped at burst)
        assert meter.execute(0, 1000, now=1e-3) == MeterColor.GREEN

    def test_tokens_capped_at_burst(self):
        meter = Meter("m", 1, MemoryBudget(1 << 20), rate_bps=8e6, burst_bytes=1000)
        meter.execute(0, 0, now=100.0)
        assert meter.tokens(0) == 1000.0

    def test_independent_indices(self):
        meter = Meter("m", 2, MemoryBudget(1 << 20), rate_bps=8e6, burst_bytes=1000)
        meter.execute(0, 1000, now=0.0)
        assert meter.execute(1, 1000, now=0.0) == MeterColor.GREEN

    def test_bounds(self):
        meter = Meter("m", 1, MemoryBudget(1 << 20))
        with pytest.raises(IndexError):
            meter.execute(1, 10, now=0.0)


class TestCounter:
    def test_counts_packets_and_bytes(self):
        counter = Counter("c", 2, MemoryBudget(1 << 20))
        counter.count(0, 100)
        counter.count(0, 50)
        counter.count(1)
        assert counter.packets(0) == 2 and counter.bytes(0) == 150
        assert counter.packets(1) == 1 and counter.bytes(1) == 0

    def test_reset_single_and_all(self):
        counter = Counter("c", 2, MemoryBudget(1 << 20))
        counter.count(0, 10)
        counter.count(1, 10)
        counter.reset(0)
        assert counter.packets(0) == 0 and counter.packets(1) == 1
        counter.reset()
        assert counter.packets(1) == 0

    def test_bounds(self):
        counter = Counter("c", 1, MemoryBudget(1 << 20))
        with pytest.raises(IndexError):
            counter.count(5)
