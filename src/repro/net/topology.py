"""Topology container and builders.

The paper's deployment scenarios (section 3.2) motivate the shapes we
provide:

* ``build_chain`` — the replication chain itself, and the simplest
  multi-switch deployment;
* ``build_leaf_spine`` — "NF processing placed in switches in the network
  fabric", where traffic crosses different switches via ECMP;
* ``build_nf_cluster`` — "a dedicated cluster of switches near the
  ingress point serving purely as NF accelerators";
* ``build_full_mesh`` — the inter-switch replication overlay (every
  replica can reach every other directly, as EWO multicast assumes).

A :class:`Topology` owns the simulator handle, the nodes, the links, and
the RNG so that experiments build everything through one object.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.net.link import Link, Node
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer

__all__ = [
    "Topology",
    "build_chain",
    "build_full_mesh",
    "build_leaf_spine",
    "build_nf_cluster",
]


class Topology:
    """A named collection of nodes and the links between them."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[SeededRng] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.sim = sim
        self.rng = rng if rng is not None else SeededRng(0)
        self.tracer = tracer
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []

    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def connect(
        self,
        a: str,
        b: str,
        latency: float = 5e-6,
        bandwidth_bps: float = 100e9,
        loss_rate: float = 0.0,
    ) -> Link:
        """Create a bidirectional link between two existing nodes."""
        link = Link(
            self.sim,
            self.nodes[a],
            self.nodes[b],
            latency=latency,
            bandwidth_bps=bandwidth_bps,
            loss_rate=loss_rate,
            rng=self.rng,
            tracer=self.tracer,
        )
        self.links.append(link)
        return link

    def link_between(self, a: str, b: str) -> Optional[Link]:
        for link in self.links:
            ends = {link.a.name, link.b.name}
            if ends == {a, b}:
                return link
        return None

    def adjacency(self) -> Dict[str, List[str]]:
        """Adjacency map considering only links that are up and live nodes."""
        adj: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for link in self.links:
            if not link.up:
                continue
            if link.a.failed or link.b.failed:
                continue
            adj[link.a.name].append(link.b.name)
            adj[link.b.name].append(link.a.name)
        for peers in adj.values():
            peers.sort()
        return adj

    def fail_node(self, name: str) -> None:
        """Fail-stop a node (paper section 6.3 failure model)."""
        self.nodes[name].fail()

    def recover_node(self, name: str) -> None:
        self.nodes[name].recover()

    def total_bytes_sent(self, category: Optional[Callable[[Link], bool]] = None) -> int:
        """Sum of bytes transmitted over all (or filtered) links."""
        total = 0
        for link in self.links:
            if category is not None and not category(link):
                continue
            total += link.ab.stats.bytes_sent + link.ba.stats.bytes_sent
        return total


# ----------------------------------------------------------------------
# Builders.  Each returns (topology, <shape-specific node name lists>).
# Node factories let callers decide what a "switch" or a "host" is, so
# the builders do not depend on repro.switch.
# ----------------------------------------------------------------------

NodeFactory = Callable[[str], Node]


def build_chain(
    topo: Topology,
    switch_factory: NodeFactory,
    length: int,
    latency: float = 5e-6,
    bandwidth_bps: float = 100e9,
    loss_rate: float = 0.0,
) -> List[Node]:
    """A linear chain of ``length`` switches: s0 - s1 - ... - s{n-1}."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    switches = [topo.add_node(switch_factory(f"s{i}")) for i in range(length)]
    for left, right in zip(switches, switches[1:]):
        topo.connect(left.name, right.name, latency, bandwidth_bps, loss_rate)
    return switches


def build_full_mesh(
    topo: Topology,
    switch_factory: NodeFactory,
    count: int,
    latency: float = 5e-6,
    bandwidth_bps: float = 100e9,
    loss_rate: float = 0.0,
    prefix: str = "s",
) -> List[Node]:
    """``count`` switches, every pair directly connected."""
    if count < 1:
        raise ValueError("mesh size must be >= 1")
    switches = [topo.add_node(switch_factory(f"{prefix}{i}")) for i in range(count)]
    for i, left in enumerate(switches):
        for right in switches[i + 1 :]:
            topo.connect(left.name, right.name, latency, bandwidth_bps, loss_rate)
    return switches


def build_leaf_spine(
    topo: Topology,
    switch_factory: NodeFactory,
    host_factory: NodeFactory,
    leaves: int = 4,
    spines: int = 2,
    hosts_per_leaf: int = 2,
    fabric_latency: float = 5e-6,
    edge_latency: float = 2e-6,
    bandwidth_bps: float = 100e9,
    loss_rate: float = 0.0,
) -> Tuple[List[Node], List[Node], List[Node]]:
    """A two-tier leaf/spine fabric with hosts under each leaf.

    Returns ``(leaf_switches, spine_switches, hosts)``.  Every leaf
    connects to every spine, so host-to-host traffic has ``spines``
    equal-cost paths — the multipath scenario of paper section 3.2.
    """
    if leaves < 1 or spines < 1:
        raise ValueError("need at least one leaf and one spine")
    leaf_nodes = [topo.add_node(switch_factory(f"leaf{i}")) for i in range(leaves)]
    spine_nodes = [topo.add_node(switch_factory(f"spine{i}")) for i in range(spines)]
    hosts: List[Node] = []
    for leaf_index, leaf in enumerate(leaf_nodes):
        for spine in spine_nodes:
            topo.connect(leaf.name, spine.name, fabric_latency, bandwidth_bps, loss_rate)
        for host_index in range(hosts_per_leaf):
            host = topo.add_node(host_factory(f"h{leaf_index}_{host_index}"))
            topo.connect(leaf.name, host.name, edge_latency, bandwidth_bps, loss_rate)
            hosts.append(host)
    return leaf_nodes, spine_nodes, hosts


def build_nf_cluster(
    topo: Topology,
    switch_factory: NodeFactory,
    host_factory: NodeFactory,
    cluster_size: int = 3,
    clients: int = 4,
    servers: int = 4,
    latency: float = 5e-6,
    bandwidth_bps: float = 100e9,
    loss_rate: float = 0.0,
) -> Tuple[List[Node], List[Node], List[Node], Node, Node]:
    """The dedicated NF-accelerator cluster of paper section 3.2.

    An ingress switch spreads incoming client traffic over a cluster of NF
    switches (full mesh among themselves for replication), which forward
    to an egress switch in front of the servers.  Returns
    ``(cluster, client_hosts, server_hosts, ingress, egress)``.
    """
    if cluster_size < 1:
        raise ValueError("cluster must have at least one switch")
    ingress = topo.add_node(switch_factory("ingress"))
    egress = topo.add_node(switch_factory("egress"))
    cluster = [topo.add_node(switch_factory(f"nf{i}")) for i in range(cluster_size)]
    for i, left in enumerate(cluster):
        topo.connect("ingress", left.name, latency, bandwidth_bps, loss_rate)
        topo.connect(left.name, "egress", latency, bandwidth_bps, loss_rate)
        for right in cluster[i + 1 :]:
            topo.connect(left.name, right.name, latency, bandwidth_bps, loss_rate)
    client_hosts = []
    for i in range(clients):
        host = topo.add_node(host_factory(f"client{i}"))
        topo.connect(host.name, "ingress", latency, bandwidth_bps, loss_rate)
        client_hosts.append(host)
    server_hosts = []
    for i in range(servers):
        host = topo.add_node(host_factory(f"server{i}"))
        topo.connect("egress", host.name, latency, bandwidth_bps, loss_rate)
        server_hosts.append(host)
    return cluster, client_hosts, server_hosts, ingress, egress
