"""Text dashboard: render observability snapshots for terminals and logs.

Benchmarks and the chaos soak call :func:`render` at the end of a run
to show live counters alongside their usual tables.  Every renderer
works from JSON-ready snapshots (not live instruments), so it can also
replay a snapshot loaded from a ``BENCH_*.json`` sidecar or a JSONL
export.

The dashboard is built from *panels* — each a list of pre-indented
lines — stitched under one rule by :func:`render_panels`:

* :func:`counters_panel`, :func:`gauges_panel`, :func:`histograms_panel`
  render a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`;
* :func:`access_profile_panel` renders a
  :meth:`~repro.obs.advisor.ConsistencyAdvisor.report` — per-group
  read/write mix, recommended vs declared consistency class, and the
  top-K hot registers;
* :func:`critpath_panel` renders a
  :meth:`~repro.obs.critpath.CritPathReport.as_dict` — the ranked
  per-cause latency attribution and the tail breakdown;
* :func:`slo_panel` renders an
  :meth:`~repro.obs.slo.SLOMonitor.as_dict` — per-objective burn state
  plus recent breach events;
* :func:`render_dashboard` combines every source into the full
  multi-panel view.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render",
    "render_registry",
    "render_panels",
    "render_dashboard",
    "render_access_profile",
    "render_critpath",
    "render_slo",
    "counters_panel",
    "gauges_panel",
    "histograms_panel",
    "access_profile_panel",
    "critpath_panel",
    "slo_panel",
]

#: Dashboard line width, shared by every panel.
WIDTH = 78


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.6g}"
    return f"{int(value):,}"


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.3f}us"


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.1f}/s"


# ----------------------------------------------------------------------
# Metric panels (one per instrument kind)
# ----------------------------------------------------------------------

def counters_panel(counters: Sequence[Dict[str, Any]]) -> List[str]:
    if not counters:
        return []
    lines = [f"  {'counter':<44} {'node':<16} {'value':>14}",
             "  " + "-" * (WIDTH - 2)]
    for record in counters:
        lines.append(
            f"  {record['name']:<44.44} {record['node']:<16.16} "
            f"{_fmt_value(record['value']):>14}"
        )
    return lines


def gauges_panel(gauges: Sequence[Dict[str, Any]]) -> List[str]:
    if not gauges:
        return []
    lines = [f"  {'gauge':<44} {'node':<16} {'value':>7} {'max':>6}",
             "  " + "-" * (WIDTH - 2)]
    for record in gauges:
        lines.append(
            f"  {record['name']:<44.44} {record['node']:<16.16} "
            f"{_fmt_value(record['value']):>7} {_fmt_value(record['max']):>6}"
        )
    return lines


def histograms_panel(histograms: Sequence[Dict[str, Any]]) -> List[str]:
    if not histograms:
        return []
    lines = [
        f"  {'histogram':<34} {'node':<12} {'count':>7} "
        f"{'p50':>9} {'p99':>9} {'p999':>9} {'max':>9}",
        "  " + "-" * (WIDTH - 2),
    ]
    for record in histograms:
        # Older snapshots may predate the p999 field; fall back to p99.
        p999 = record.get("p999", record["p99"])
        lines.append(
            f"  {record['name']:<34.34} {record['node']:<12.12} "
            f"{record['count']:>7} {_fmt_seconds(record['p50']):>9} "
            f"{_fmt_seconds(record['p99']):>9} {_fmt_seconds(p999):>9} "
            f"{_fmt_seconds(record['max']):>9}"
        )
    return lines


# ----------------------------------------------------------------------
# Access-profile panel (repro.obs.advisor report)
# ----------------------------------------------------------------------

def access_profile_panel(
    report: Dict[str, Any], top_keys: int = 8
) -> List[str]:
    """Render a :meth:`ConsistencyAdvisor.report` dict as panel lines.

    Three sections: the per-group classification table (read/write mix,
    declared vs recommended class, mismatches flagged ``<<``), the
    high-confidence mismatch report, and the ranked hot-key table.
    """
    groups = report.get("groups", [])
    if not groups:
        return ["  (no register groups profiled)"]
    lines = [
        f"  {'register group':<16} {'nf':<12} {'wr freq':<14} {'rd freq':<12} "
        f"{'pattern':<16} {'class':<12}",
        "  " + "-" * (WIDTH - 2),
    ]
    for g in groups:
        declared = g["declared"].upper()
        recommended = g["recommended"].upper()
        if g["mismatch"]:
            klass = f"{declared}->{recommended} <<"
        else:
            klass = declared
        lines.append(
            f"  {g['name']:<16.16} {(g['nf'] or '-'):<12.12} "
            f"{g['write_freq']:<14.14} {g['read_freq']:<12.12} "
            f"{g['pattern']:<16.16} {klass:<12}"
        )
    mismatches = report.get("mismatches", [])
    if mismatches:
        lines.append("")
        lines.append("  mismatch report (high confidence):")
        for g in mismatches:
            lines.append(
                f"    {g['name']}: declared {g['declared'].upper()}, "
                f"observed traffic suggests {g['recommended'].upper()}"
            )
            lines.append(f"      {g['rationale']}")
    hot = report.get("hot_keys", [])[:top_keys]
    if hot:
        lines.append("")
        lines.append(
            f"  {'hot key':<30} {'group':<16} {'reads':>8} {'writes':>8} "
            f"{'rate':>10}"
        )
        lines.append("  " + "-" * (WIDTH - 2))
        for record in hot:
            lines.append(
                f"  {record['key']:<30.30} {record['group']:<16.16} "
                f"{record['reads']:>8} {record['writes']:>8} "
                f"{_fmt_rate(record['windowed_rate']):>10}"
            )
    return lines


# ----------------------------------------------------------------------
# Critical-path attribution panel (repro.obs.critpath report)
# ----------------------------------------------------------------------

def critpath_panel(report: Dict[str, Any]) -> List[str]:
    """Render a :meth:`CritPathReport.as_dict` as panel lines.

    Two sections: the overall ranked cause table (seconds and share of
    all attributed time), and the tail table restricted to writes at or
    above the report's tail quantile, with the top tail cause flagged
    ``<<``.  Output is a pure function of the report dict — byte-stable
    under a fixed snapshot.
    """
    writes = report.get("writes_analyzed", 0)
    if not writes:
        return ["  (no committed writes analyzed)"]
    lat = report.get("latency_us", {})
    lines = [
        f"  writes analyzed {writes}  skipped {report.get('writes_skipped', 0)}"
        f"  merge hops {report.get('merge_hops', 0)}"
        f"  read detours {report.get('read_detours', 0)}",
        f"  commit latency  p50 {lat.get('p50', 0.0):.1f}us"
        f"  p99 {lat.get('p99', 0.0):.1f}us"
        f"  p999 {lat.get('p999', 0.0):.1f}us"
        f"  max {lat.get('max', 0.0):.1f}us",
        "",
        f"  {'cause':<20} {'seconds':>12} {'share':>8}",
        "  " + "-" * (WIDTH - 2),
    ]
    for row in report.get("causes", []):
        lines.append(
            f"  {row['cause']:<20.20} {row['seconds'] * 1e6:>10.1f}us "
            f"{row['fraction'] * 100:>7.2f}%"
        )
    tail = report.get("tail", {})
    if tail.get("writes"):
        lines.append("")
        lines.append(
            f"  tail (>= p{tail['quantile'] * 100:g}, {tail['writes']} write(s)):"
        )
        top = tail.get("top_cause")
        for row in tail.get("causes", []):
            marker = " <<" if row["cause"] == top else ""
            lines.append(
                f"  {row['cause']:<20.20} {row['seconds'] * 1e6:>10.1f}us "
                f"{row['fraction'] * 100:>7.2f}%{marker}"
            )
    return lines


# ----------------------------------------------------------------------
# SLO panel (repro.obs.slo monitor state)
# ----------------------------------------------------------------------

def slo_panel(state: Dict[str, Any], max_breaches: int = 5) -> List[str]:
    """Render an :meth:`SLOMonitor.as_dict` as panel lines: one row per
    objective (windows, breaches, burn rate, worst watermark), then the
    most recent breach events."""
    objectives = state.get("objectives", [])
    if not objectives:
        return ["  (no SLO objectives declared)"]
    lines = [
        f"  {'objective':<42} {'windows':>8} {'breach':>7} {'burn':>7} "
        f"{'worst':>9}",
        "  " + "-" * (WIDTH - 2),
    ]
    for obj in objectives:
        worst = obj.get("worst_value")
        if worst is None:
            shown = "-"
        elif obj["stat"] in ("availability", "count"):
            shown = f"{worst:.4g}"
        else:
            shown = _fmt_seconds(worst)
        lines.append(
            f"  {obj['objective']:<42.42} {obj['windows_evaluated']:>8} "
            f"{obj['windows_breached']:>7} {obj['burn_rate'] * 100:>6.1f}% "
            f"{shown:>9}"
        )
    breaches = state.get("breaches", [])
    if breaches:
        lines.append("")
        lines.append(f"  breach events ({len(breaches)} total, last {max_breaches}):")
        for breach in breaches[-max_breaches:]:
            if breach["stat"] in ("availability", "count"):
                observed = f"{breach['observed']:.4g}"
                threshold = f"{breach['threshold']:.4g}"
            else:
                observed = _fmt_seconds(breach["observed"])
                threshold = _fmt_seconds(breach["threshold"])
            lines.append(
                f"    [{breach['window_start'] * 1e3:9.3f}ms] {breach['metric']} "
                f"{breach['stat']} = {observed} (objective {breach['objective'].split(' over ')[0]},"
                f" threshold {threshold})"
            )
    return lines


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------

def render_panels(title: str, panels: Sequence[Tuple[str, List[str]]]) -> str:
    """Stitch named panels into one ruled dashboard.

    ``panels`` is ``[(heading, lines)]``; empty panels are skipped, and
    the first panel's heading is omitted when it matches the dashboard
    title (the legacy single-snapshot layout).
    """
    lines = ["=" * WIDTH, f"  {title}", "=" * WIDTH]
    rendered_any = False
    for heading, panel_lines in panels:
        if not panel_lines:
            continue
        if rendered_any:
            lines.append("")
        if heading and heading != title:
            lines.append(f"  -- {heading} --")
        lines.extend(panel_lines)
        rendered_any = True
    if not rendered_any:
        lines.append("  (no instruments recorded)")
    lines.append("=" * WIDTH)
    return "\n".join(lines)


def render(snapshot: Dict[str, List[Dict[str, Any]]], title: str = "metrics") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as a text dashboard."""
    return render_panels(
        title,
        [
            (title, counters_panel(snapshot.get("counters", []))),
            (title, gauges_panel(snapshot.get("gauges", []))),
            (title, histograms_panel(snapshot.get("histograms", []))),
        ],
    )


def render_registry(registry: MetricsRegistry, title: str = "metrics") -> str:
    """Convenience wrapper: snapshot + render in one call."""
    return render(registry.snapshot(), title=title)


def render_access_profile(
    report: Dict[str, Any], title: str = "access profile", top_keys: int = 8
) -> str:
    """Render an advisor report as a standalone dashboard section."""
    return render_panels(title, [(title, access_profile_panel(report, top_keys))])


def render_critpath(report: Dict[str, Any], title: str = "critical paths") -> str:
    """Render a :meth:`CritPathReport.as_dict` as a standalone section."""
    return render_panels(title, [(title, critpath_panel(report))])


def render_slo(state: Dict[str, Any], title: str = "slo") -> str:
    """Render an :meth:`SLOMonitor.as_dict` as a standalone section."""
    return render_panels(title, [(title, slo_panel(state))])


def render_dashboard(
    snapshot: Optional[Dict[str, List[Dict[str, Any]]]] = None,
    access_report: Optional[Dict[str, Any]] = None,
    title: str = "swishmem dashboard",
    top_keys: int = 8,
    critpath_report: Optional[Dict[str, Any]] = None,
    slo_state: Optional[Dict[str, Any]] = None,
) -> str:
    """The full multi-panel dashboard: metrics, access profile,
    critical-path attribution, and SLO burn state."""
    panels: List[Tuple[str, List[str]]] = []
    if snapshot is not None:
        panels.append(("counters", counters_panel(snapshot.get("counters", []))))
        panels.append(("gauges", gauges_panel(snapshot.get("gauges", []))))
        panels.append(("histograms", histograms_panel(snapshot.get("histograms", []))))
    if access_report is not None:
        panels.append(
            ("access profile", access_profile_panel(access_report, top_keys))
        )
    if critpath_report is not None:
        panels.append(("critical paths", critpath_panel(critpath_report)))
    if slo_state is not None:
        panels.append(("slo", slo_panel(slo_state)))
    return render_panels(title, panels)
