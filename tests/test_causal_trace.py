"""Tests for causal tracing: trace contexts, the flight recorder, and
span propagation across SRO chains, EWO merges, controller failover,
and recovery — plus the post-mortem engine that explains violations.

The two properties everything else leans on:

* stamping is digest-neutral (trace fields carry zero wire bytes and
  tick pure counters), so instrumented and uninstrumented replays stay
  byte-identical — asserted here by running the same seeded scenario
  with the recorder on and off;
* span ids are per-node counters, so the same seed reproduces the
  *identical* span tree, not just an isomorphic one.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultInjector, InvariantSuite
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.obs.causal import CausalClock, TraceContext
from repro.obs.flightrec import FlightRecorder, NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry
from repro.protocols.messages import ControllerCommand
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch


class TestCausalClock:
    def test_root_and_child_ids_are_deterministic(self):
        clock = CausalClock("s0")
        root = clock.root()
        child = clock.child(root)
        assert root.trace_id == "T:s0:1"
        assert root.span_id == "s0:1"
        assert root.parent_id is None
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.lamport > root.lamport

    def test_observe_advances_past_remote_lamport(self):
        a, b = CausalClock("a"), CausalClock("b")
        ctx = a.root()
        for _ in range(5):
            ctx = a.child(ctx)
        remote = b.child(ctx)
        assert remote.lamport == ctx.lamport + 1

    def test_two_clocks_same_node_produce_same_ids(self):
        ids_a = [CausalClock("s1").root().span_id for _ in range(1)]
        ids_b = [CausalClock("s1").root().span_id for _ in range(1)]
        assert ids_a == ids_b

    def test_context_str(self):
        ctx = TraceContext(trace_id="T:x:1", span_id="x:2", parent_id="x:1", lamport=3)
        assert "T:x:1" in str(ctx) and "x:2" in str(ctx)


class TestFlightRecorderBasics:
    def test_null_recorder_records_nothing(self):
        clock = CausalClock("s0")
        assert NULL_FLIGHT_RECORDER.record(clock.root(), "x", "s0", 0.0) is None
        assert not NULL_FLIGHT_RECORDER.enabled
        assert len(NULL_FLIGHT_RECORDER.spans) == 0

    def test_none_context_is_dropped(self):
        recorder = FlightRecorder()
        assert recorder.record(None, "x", "s0", 0.0) is None
        assert recorder.recorded == 0

    def test_ring_bounds_and_evictions(self):
        recorder = FlightRecorder(max_records=4)
        clock = CausalClock("s0")
        for i in range(10):
            recorder.record(clock.root(), f"e{i}", "s0", float(i))
        assert len(recorder.spans) == 4
        assert recorder.evictions == 6
        assert recorder.recorded == 10

    def test_bind_metrics_exports_gauges(self):
        recorder = FlightRecorder(max_records=2)
        clock = CausalClock("s0")
        for i in range(3):
            recorder.record(clock.root(), f"e{i}", "s0", 0.0)
        registry = MetricsRegistry()
        recorder.bind_metrics(registry)
        assert registry.value("gauge", "flightrec.evictions", "obs") == 1
        assert registry.value("gauge", "flightrec.spans", "obs") == 2
        assert registry.value("gauge", "flightrec.recorded", "obs") == 3

    def test_render_timeline_requires_selector(self):
        with pytest.raises(ValueError):
            FlightRecorder().render_timeline()

    def test_empty_selection_renders_placeholder(self):
        out = FlightRecorder().render_timeline(trace_id="T:none:1")
        assert "no spans recorded" in out


class TestChainTracing:
    """One SRO write must leave a causally connected span trail across
    every chain hop, from initiate to commit."""

    def _write_once(self, make_deployment, n=3):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(n, flight_recorder=recorder)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=16))
        dep.sim.schedule(1e-3, lambda: dep.manager("s0").register_write(spec, "k", 7))
        dep.sim.run(until=10e-3)
        return recorder, dep, spec

    def test_write_spans_every_chain_member(self, make_deployment):
        recorder, dep, spec = self._write_once(make_deployment)
        traces = recorder.traces_for_key(spec.group_id, "k")
        assert len(traces) == 1
        query = recorder.query(trace_id=traces[0])
        assert query.span_count("sro.write.initiate") == 1
        assert query.span_count("sro.chain.apply") == 3  # every member applies
        assert query.span_count("sro.pending.set") == 2  # all but the tail
        assert query.span_count("sro.write.commit") == 1
        assert set(query.nodes()) == {"s0", "s1", "s2"}

    def test_initiate_happens_before_commit(self, make_deployment):
        recorder, dep, spec = self._write_once(make_deployment)
        trace_id = recorder.traces_for_key(spec.group_id, "k")[0]
        query = recorder.query(trace_id=trace_id)
        query.assert_happens_before("sro.write.initiate", "sro.write.commit")
        query.assert_happens_before("sro.pending.set", "sro.ack.deliver")

    def test_chain_depth_grows_with_chain_length(self, make_deployment):
        recorder, dep, spec = self._write_once(make_deployment, n=4)
        trace_id = recorder.traces_for_key(spec.group_id, "k")[0]
        query = recorder.query(trace_id=trace_id)
        # initiate > send > sequence > apply > forward > apply ... > commit:
        # three forwards on a 4-chain push the depth past the member count.
        assert query.max_chain_depth() >= 4
        assert query.span_count("sro.chain.forward") == 3

    def test_happens_before_violation_raises_with_timeline(self, make_deployment):
        recorder, dep, spec = self._write_once(make_deployment)
        trace_id = recorder.traces_for_key(spec.group_id, "k")[0]
        query = recorder.query(trace_id=trace_id)
        with pytest.raises(AssertionError) as err:
            query.assert_happens_before("sro.write.commit", "sro.write.initiate")
        assert "timeline" in str(err.value)

    def test_missing_span_name_raises(self, make_deployment):
        recorder, dep, spec = self._write_once(make_deployment)
        trace_id = recorder.traces_for_key(spec.group_id, "k")[0]
        with pytest.raises(AssertionError):
            recorder.query(trace_id=trace_id).assert_happens_before(
                "sro.write.initiate", "no.such.span"
            )


class TestEwoMergeTracing:
    def test_broadcast_fans_into_merge_spans(self, make_deployment):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder, sync_period=1e-3)
        ctr = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.sim.schedule(1e-3, lambda: dep.manager("s0").register_increment(ctr, "c", 1))
        dep.sim.run(until=10e-3)
        broadcasts = [s for s in recorder.spans if s.name == "ewo.update.broadcast"]
        merges = [s for s in recorder.spans if s.name == "ewo.merge"]
        assert broadcasts and merges
        # every merge is a direct causal child of the broadcast that
        # carried it, recorded at a *different* node (fan-in evidence)
        broadcast_ids = {s.span_id: s for s in broadcasts}
        for merge in merges:
            parent = broadcast_ids.get(merge.parent_id)
            if parent is not None:
                assert merge.node != parent.node
                assert merge.lamport > parent.lamport
        origins = {broadcast_ids[m.parent_id].node
                   for m in merges if m.parent_id in broadcast_ids}
        assert "s0" in origins


class TestControllerTracing:
    def test_activation_roots_a_controller_trace(self, make_deployment):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder)
        activates = [s for s in recorder.spans if s.name == "controller.activate"]
        assert len(activates) == 1
        assert activates[0].node == "ctl0"
        assert activates[0].attrs["initial"] is True

    def test_failure_detection_and_repair_spans(self, make_deployment):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=16))
        injector = FaultInjector(dep, seed=3)
        injector.crash(2e-3, "s1")
        dep.sim.run(until=20e-3)
        detects = [s for s in recorder.spans if s.name == "controller.failure.detect"]
        assert len(detects) == 1
        assert detects[0].attrs["switch"] == "s1"
        sends = [s for s in recorder.spans if s.name == "controller.command.send"]
        applies = [s for s in recorder.spans if s.name == "controller.command.apply"]
        assert sends and applies
        # repair commands descend from the failure-detection span, which
        # descends from the activation root — one trace tells the story
        root_trace = detects[0].trace_id
        assert all(s.trace_id == root_trace for s in sends)
        repair_sends = [s for s in sends if s.attrs["kind"] == "set_chain"]
        assert {s.attrs["target"] for s in repair_sends} == {"s0", "s2"}

    def test_recovery_and_snapshot_spans(self, make_deployment):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=16))
        dep.sim.schedule(1e-3, lambda: dep.manager("s0").register_write(spec, "k", 1))
        injector = FaultInjector(dep, seed=3)
        injector.crash_recover(3e-3, "s2", down_for=10e-3)
        dep.sim.run(until=60e-3)
        names = {s.name for s in recorder.spans}
        assert "controller.recovery.begin" in names
        assert "controller.snapshot.start" in names
        assert "failover.snapshot.round" in names
        assert "failover.snapshot.apply" in names
        assert "failover.transfer.complete" in names
        assert "controller.promote" in names
        begin = next(s for s in recorder.spans if s.name == "controller.recovery.begin")
        promote = next(s for s in recorder.spans if s.name == "controller.promote")
        assert begin.attrs["switch"] == "s2"
        assert promote.trace_id == begin.trace_id
        assert promote.lamport > begin.lamport
        # snapshot applies happen at the recovering switch
        applies = [s for s in recorder.spans if s.name == "failover.snapshot.apply"]
        assert applies and all(s.node == "s2" for s in applies)

    def test_fenced_command_records_fencing_span(self, make_deployment):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=16))
        manager = dep.manager("s1")
        manager.observe_controller_epoch(99)
        leader = dep.controller.replicas[0]
        stale = ControllerCommand(
            epoch=1,
            kind="set_chain",
            group=spec.group_id,
            payload=dep.chains[spec.group_id],
            trace=leader.causal.child(leader.trace_ctx),
        )
        assert manager.apply_controller_command(stale) is False
        fenced = [s for s in recorder.spans if s.name == "controller.command.fenced"]
        assert len(fenced) == 1
        assert fenced[0].node == "s1"
        assert fenced[0].attrs["command_epoch"] == 1
        assert fenced[0].attrs["fencing_epoch"] == 99
        # the span descends from the deposed leader's reign trace
        assert fenced[0].trace_id == leader.trace_ctx.trace_id

    def test_takeover_roots_fresh_trace_under_new_epoch(self, make_deployment):
        recorder = FlightRecorder()
        dep, _, _ = make_deployment(3, flight_recorder=recorder, controller_replicas=2)
        dep.controller.crash_replica(0)
        dep.sim.run(until=60e-3)
        activates = [s for s in recorder.spans if s.name == "controller.activate"]
        assert len(activates) >= 2
        first, second = activates[0], activates[1]
        assert first.node == "ctl0" and second.node == "ctl1"
        assert second.attrs["epoch"] > first.attrs["epoch"]
        assert second.trace_id != first.trace_id  # a reign = a trace
        reconstruct = [
            s for s in recorder.spans if s.name == "controller.reconstruct.begin"
        ]
        assert reconstruct and reconstruct[0].trace_id == second.trace_id


class TestDeterminismAndDigestNeutrality:
    def _soak(self, seed, recorder, slo_monitor=None):
        from repro.obs.slo import NULL_SLO_MONITOR

        sim = Simulator()
        topo = Topology(sim, SeededRng(seed))
        nodes = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
        dep = SwiShmemDeployment(
            sim, topo, nodes, sync_period=1e-3, flight_recorder=recorder,
            slo_monitor=slo_monitor if slo_monitor is not None else NULL_SLO_MONITOR,
        )
        sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=32))
        ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))
        injector = FaultInjector(dep, seed=seed)
        injector.crash_recover(5e-3, "s1", down_for=8e-3)
        counter = [0]

        def workload():
            i = counter[0]
            counter[0] += 1
            dep.manager("s0").register_write(sro, f"k{i % 4}", i)
            dep.manager("s2").register_increment(ctr, "c", 1)
            if sim.now < 25e-3:
                sim.schedule(500e-6, workload)

        sim.schedule(1e-3, workload)
        sim.run(until=40e-3)
        stores = tuple(tuple(sorted(s.items())) for s in dep.sro_stores(sro))
        return stores, sim.events_processed

    @staticmethod
    def _tree(recorder):
        return [
            (s.name, s.node, s.span_id, s.parent_id, s.trace_id, s.lamport,
             s.time, s.group, s.key, tuple(sorted(s.attrs.items())))
            for s in recorder.spans
        ]

    def test_same_seed_identical_span_tree(self):
        first, second = FlightRecorder(), FlightRecorder()
        out_a = self._soak(11, first)
        out_b = self._soak(11, second)
        assert out_a == out_b
        assert first.recorded == second.recorded > 0
        assert self._tree(first) == self._tree(second)

    def test_recorder_does_not_perturb_the_simulation(self):
        baseline = self._soak(11, NULL_FLIGHT_RECORDER)
        traced = self._soak(11, FlightRecorder())
        assert baseline == traced

    def test_slo_monitor_does_not_perturb_the_simulation(self):
        """Live SLO evaluation (plus critical-path span recording) is
        digest-neutral: the instrumented replay matches the bare run
        while the monitor demonstrably saw the traffic."""
        from repro.obs.critpath import CriticalPathAnalyzer
        from repro.obs.slo import SLOMonitor

        baseline = self._soak(11, NULL_FLIGHT_RECORDER)
        monitor = SLOMonitor()
        monitor.add_objective("sro.write_commit p99 < 1s over 10ms windows")
        monitor.add_objective("sro.write availability >= 0.5 over 10ms windows")
        recorder = FlightRecorder()
        instrumented = self._soak(11, recorder, slo_monitor=monitor)
        assert baseline == instrumented
        assert monitor.samples > 0
        # and the same spans decompose into an honest attribution
        report = CriticalPathAnalyzer(recorder).report()
        assert report.writes
        assert report.fraction_sum_error_max <= 1e-9


class TestPostMortem:
    def _force_lost_apply(self, make_deployment, recorder):
        dep, _, _ = make_deployment(3, flight_recorder=recorder)
        spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=16))
        injector = FaultInjector(dep, seed=5)
        suite = InvariantSuite(dep).start(period=1e-3)
        injector.drop_chain_applies(0.5e-3, "s1", spec.group_id, count=1)
        dep.sim.schedule(1e-3, lambda: dep.manager("s0").register_write(spec, "k", 42))
        dep.sim.run(until=6e-3)
        return suite.finalize(), injector

    def test_dropped_apply_violates_no_lost_write(self, make_deployment):
        report, injector = self._force_lost_apply(make_deployment, FlightRecorder())
        assert not report.ok
        assert report.count("no_lost_write") >= 1
        assert any(r.kind == "drop-applies" for r in injector.log)

    def test_post_mortem_names_the_losing_hop(self, make_deployment):
        report, _ = self._force_lost_apply(make_deployment, FlightRecorder())
        story = report.post_mortems()[0]
        assert "LOST HOP" in story
        assert "forwarded to s1" in story
        assert "sro.write.commit" in story  # the write did commit at the tail
        # the plain violation line stays recorder-independent
        assert str(report.violations[0]).startswith("[")
        assert "timeline" not in str(report.violations[0])

    def test_without_recorder_post_mortem_degrades_gracefully(self, make_deployment):
        report, _ = self._force_lost_apply(make_deployment, NULL_FLIGHT_RECORDER)
        assert not report.ok
        assert report.violations[0].timeline is None
        assert report.post_mortems()[0] == str(report.violations[0])

    def test_drop_chain_applies_validates_arguments(self, make_deployment):
        dep, _, _ = make_deployment(2)
        injector = FaultInjector(dep, seed=1)
        with pytest.raises(ValueError):
            injector.drop_chain_applies(1e-3, "s0", 0, count=0)


class TestLinearizabilityExplanations:
    def test_explanation_renders_intervals_and_timeline(self, make_deployment):
        from repro.analysis.history import HistoryRecorder
        from repro.analysis.linearizability import check_history

        history = HistoryRecorder()
        recorder = FlightRecorder()
        clock = CausalClock("s0")
        recorder.record(clock.root(), "sro.write.commit", "s0", 1e-3, group=0, key="k")
        # w(1) completes, then a later read returns a stale 0 — not
        # linearizable by construction
        history.begin("t1", "write", 0, "k", 1, "s0", 0.0)
        history.complete("t1", 1e-3)
        history.record_instant("read", 0, "k", 0, "s1", 2e-3)
        report = check_history(history, initial=0, flight_recorder=recorder)
        assert not report.ok
        explanation = report.explain()
        assert "non-linearizable history" in explanation
        assert "write" in explanation and "read" in explanation
        assert "timeline for group=0" in explanation
        assert "sro.write.commit" in explanation

    def test_linearizable_history_has_no_explanations(self, deployment):
        from repro.analysis.linearizability import check_history

        spec = deployment.declare(RegisterSpec("reg", Consistency.SRO, capacity=8))
        deployment.sim.schedule(
            1e-3, lambda: deployment.manager("s0").register_write(spec, "k", 1)
        )
        deployment.sim.run(until=10e-3)
        report = check_history(deployment.history)
        assert report.ok
        assert report.explanations == []
        assert report.explain() == "linearizable: no violations"


class TestTracerMetricsExport:
    def test_tracer_evictions_exported_as_gauges(self):
        from repro.sim.trace import Tracer

        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.emit(float(i), "cat", "s0", f"m{i}")
        registry = MetricsRegistry()
        tracer.bind_metrics(registry)
        assert registry.value("gauge", "tracer.evictions", "obs") == 3
        assert registry.value("gauge", "tracer.records", "obs") == 2

    def test_bind_metrics_noop_on_disabled_registry(self):
        from repro.obs.metrics import NULL_REGISTRY
        from repro.sim.trace import Tracer

        tracer = Tracer()
        tracer.emit(0.0, "cat", "s0", "m")
        tracer.bind_metrics(NULL_REGISTRY)  # must not raise or allocate
