"""Deterministic, schedulable fault injection.

:class:`FaultInjector` composes the fault primitives the paper's system
model allows ("packets can be dropped, and links and switches may
fail", section 5) into schedules riding the simulator's event queue:

* ``crash`` / ``recover`` — fail-stop a switch, later bring it back
  through the controller's recovery protocol (wiped state by default);
* ``link_flap`` — administratively down one link for a while;
* ``loss_burst`` — temporarily raise the loss rate on some or all
  channels (correlated loss, unlike the i.i.d. baseline);
* ``partition`` — bipartition the topology by downing every crossing
  link, healing after a duration;
* ``crash_controller`` / ``recover_controller`` — fail-stop one
  controller replica (default: whoever leads when the fault fires),
  exercising lease expiry, standby takeover, and state reconstruction;
* ``partition_controller`` — sever one replica's management
  connectivity (to switches and to its peers) for a while: a
  partitioned leader stops hearing beacons and renewing its lease, so
  it self-fences and a connected standby takes over.

Every applied fault is appended to :attr:`FaultInjector.log`, which —
together with the deployment's event counters and final state — forms
the determinism digest chaos runs compare across identical seeds.

``schedule_random`` draws a randomized-but-seeded schedule from the
injector's own named RNG streams, so two injectors with the same seed
against the same deployment plan byte-identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.registers import Consistency, EwoMode
from repro.protocols.antientropy import DivergenceEvent
from repro.sim.random import SeededRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment

__all__ = ["FaultInjector", "FaultRecord"]


@dataclass(frozen=True)
class FaultRecord:
    """One fault as actually applied (not merely scheduled)."""

    at: float
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.at * 1e3:8.3f} ms] {self.kind}: {self.detail}"


class FaultInjector:
    """Schedulable, seed-driven fault composition for one deployment."""

    def __init__(self, deployment: "SwiShmemDeployment", seed: int = 0) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.rng = SeededRng(seed)
        self.log: List[FaultRecord] = []
        # Overlapping loss bursts: per-channel true pre-burst rate and
        # the stack of active burst rates (effective = max of all).
        self._burst_base: Dict[object, float] = {}
        self._burst_active: Dict[object, List[float]] = {}

    def _record(self, kind: str, detail: str) -> None:
        self.log.append(FaultRecord(at=self.sim.now, kind=kind, detail=detail))

    # ------------------------------------------------------------------
    # Switch crash / recovery
    # ------------------------------------------------------------------
    def crash(self, at: float, name: str) -> None:
        self.sim.schedule_at(at, self._crash, name, label="chaos:crash")

    def _crash(self, name: str) -> None:
        if self.deployment.manager(name).switch.failed:
            return  # already down; crashing twice is a no-op
        self.deployment.controller.note_failure_time(name)
        self.deployment.fail_switch(name)
        self._record("crash", name)

    def recover(self, at: float, name: str, wipe_state: bool = True) -> None:
        self.sim.schedule_at(at, self._recover, name, wipe_state, label="chaos:recover")

    def _recover(self, name: str, wipe_state: bool) -> None:
        if not self.deployment.manager(name).switch.failed:
            return  # came back some other way (or never crashed)
        self.deployment.controller.recover_switch(name, wipe_state=wipe_state)
        self._record("recover", f"{name} (wipe={wipe_state})")

    def crash_recover(
        self, at: float, name: str, down_for: float, wipe_state: bool = True
    ) -> None:
        self.crash(at, name)
        self.recover(at + down_for, name, wipe_state=wipe_state)

    # ------------------------------------------------------------------
    # Silent data-plane corruption
    # ------------------------------------------------------------------
    def drop_chain_applies(
        self, at: float, name: str, group_id: int, count: int = 1
    ) -> None:
        """Arm ``name`` to silently lose its next ``count`` chain applies
        in ``group_id``: the member forwards each update downstream but
        never applies it locally, so the tail still commits while the
        victim's store develops a gap.  This is the canonical "lost
        chain hop" fault the flight recorder's post-mortem is built to
        explain — no crash, no detector signal, just a replica quietly
        diverging from the committed history.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.sim.schedule_at(
            at, self._drop_chain_applies, name, group_id, count,
            label="chaos:drop-applies",
        )

    def _drop_chain_applies(self, name: str, group_id: int, count: int) -> None:
        manager = self.deployment.manager(name)
        state = manager.sro.groups.get(group_id)
        if state is None:
            raise ValueError(f"{name} does not replicate group {group_id}")
        state.chaos_drop_applies += count
        self._record("drop-applies", f"{name} group {group_id} x{count}")

    def corrupt_register(
        self, at: float, name: str, group_id: int, key: Any = None
    ) -> None:
        """Bit-flip one stored register value on ``name`` at ``at``.

        The silent-divergence fault the anti-entropy scrubber exists
        for: no crash, no drop, no detector signal — the replica simply
        holds the wrong value.  ``key=None`` picks a live key from the
        seeded ``corrupt`` stream at fire time.  SRO values flip a low
        bit (sequence numbers stay intact, so only the scrubber can
        notice); EWO counters lose the top bit of a peer slot (the true,
        higher value wins the eventual max-merge); LWW cells flip the
        value under an unchanged version stamp — the case plain gossip
        can only resolve through the merge tiebreak.  Every applied
        corruption logs a :class:`DivergenceEvent` for the invariant
        suite to track to detection and heal.
        """
        self.sim.schedule_at(
            at, self._corrupt_register, name, group_id, key, label="chaos:corrupt"
        )

    @staticmethod
    def _flip_value(value: Any, stream) -> Any:
        if isinstance(value, bool) or not isinstance(value, int):
            return ("corrupt", stream.randint(1, 1 << 16))
        return value ^ (1 << stream.randint(0, 7))

    def _corrupt_register(self, name: str, group_id: int, key: Any) -> None:
        manager = self.deployment.manager(name)
        if manager.switch.failed:
            self._record("corrupt-noop", f"{name} group {group_id} (down)")
            return
        spec = self.deployment.specs[group_id]
        stream = self.rng.stream("corrupt")
        detail = None
        if spec.consistency is not Consistency.EWO:
            state = manager.sro.groups[group_id]
            if key is None:
                live = sorted(state.store, key=repr)
                key = stream.choice(live) if live else None
            if key is None or key not in state.store:
                self._record("corrupt-noop", f"{name} group {group_id} (empty)")
                return
            state.store[key] = self._flip_value(state.store[key], stream)
            detail = f"{name} group {group_id} key {key!r} (sro store)"
        elif spec.ewo_mode is EwoMode.COUNTER:
            ewo = manager.ewo.groups[group_id]
            if key is None:
                live = sorted(ewo.vectors, key=repr)
                key = stream.choice(live) if live else None
            vector = ewo.vectors.get(key) if key is not None else None
            # Corrupt a *peer* slot (never our own: local increments
            # build on the local slot, and must stay truthful), and only
            # downward — the true value re-wins the max-merge.
            slots = (
                [s for s, v in enumerate(vector) if v > 0 and s != ewo.my_slot]
                if vector is not None
                else []
            )
            if not slots:
                self._record("corrupt-noop", f"{name} group {group_id} (empty)")
                return
            slot = stream.choice(slots)
            vector[slot] &= ~(1 << (vector[slot].bit_length() - 1))
            detail = f"{name} group {group_id} key {key!r} slot {slot} (counter)"
        elif spec.ewo_mode is EwoMode.LWW:
            ewo = manager.ewo.groups[group_id]
            if key is None:
                live = sorted(
                    (k for k, c in ewo.cells.items() if c.version.node_id >= 0),
                    key=repr,
                )
                key = stream.choice(live) if live else None
            cell = ewo.cells.get(key) if key is not None else None
            if cell is None or cell.version.node_id < 0:
                self._record("corrupt-noop", f"{name} group {group_id} (empty)")
                return
            cell._value = self._flip_value(cell.value, stream)
            detail = f"{name} group {group_id} key {key!r} (lww)"
        else:
            raise ValueError("corrupt_register does not support OR-Set groups")
        self.deployment.divergence_log.append(
            DivergenceEvent(
                group=group_id, switch=name, kind="corrupt", key=key,
                at=self.sim.now, detail=detail,
            )
        )
        self._record("corrupt", detail)

    def stale_replica(
        self, at: float, name: str, group_id: int, duration: float
    ) -> None:
        """Freeze ``name``'s apply unit for ``group_id`` for ``duration``.

        While frozen the replica silently drops every incoming apply —
        SRO chain updates cut through without applying, EWO merges are
        consumed without merging — so it serves increasingly stale state
        while looking perfectly healthy.  The :class:`DivergenceEvent`
        is logged at *thaw* time: a frozen replica is not repairable
        (it drops scrub repairs too), so the heal clock starts when the
        freeze lifts.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        self.sim.schedule_at(
            at, self._stale_replica, name, group_id, duration, label="chaos:stale"
        )

    def _stale_replica(self, name: str, group_id: int, duration: float) -> None:
        manager = self.deployment.manager(name)
        if manager.switch.failed:
            self._record("stale-noop", f"{name} group {group_id} (down)")
            return
        spec = self.deployment.specs[group_id]
        if spec.consistency is Consistency.EWO:
            state = manager.ewo.groups[group_id]
        else:
            state = manager.sro.groups[group_id]
        state.chaos_frozen_until = max(
            state.chaos_frozen_until, self.sim.now + duration
        )
        self._record(
            "stale-replica", f"{name} group {group_id} for {duration * 1e3:.1f} ms"
        )
        self.sim.schedule(
            duration, self._thaw_replica, name, group_id, label="chaos:stale-thaw"
        )

    def _thaw_replica(self, name: str, group_id: int) -> None:
        manager = self.deployment.manager(name)
        if manager.switch.failed:
            return  # crash recovery resets the replica anyway
        spec = self.deployment.specs[group_id]
        if spec.consistency is Consistency.EWO:
            state = manager.ewo.groups[group_id]
        else:
            state = manager.sro.groups[group_id]
        if state.chaos_frozen_until > self.sim.now:
            return  # an overlapping freeze extended the window
        self.deployment.divergence_log.append(
            DivergenceEvent(
                group=group_id, switch=name, kind="stale", key=None,
                at=self.sim.now,
                detail=f"{name} group {group_id} thawed",
            )
        )
        self._record("stale-thaw", f"{name} group {group_id}")

    # ------------------------------------------------------------------
    # Controller faults (high availability, protocols.election)
    # ------------------------------------------------------------------
    def _pick_replica(self, replica: Optional[int]):
        cluster = self.deployment.controller
        if replica is None:
            target = cluster.active_leader()
            if target is None:
                return cluster, None
            replica = target.replica_id
        return cluster, replica

    def crash_controller(self, at: float, replica: Optional[int] = None) -> None:
        """Fail-stop a controller replica.  ``replica=None`` targets
        whichever replica holds the lease when the fault fires — the
        interesting case."""
        self.sim.schedule_at(
            at, self._crash_controller, replica, label="chaos:controller-crash"
        )

    def _crash_controller(self, replica: Optional[int]) -> None:
        cluster, replica = self._pick_replica(replica)
        if replica is None or cluster.replicas[replica].failed:
            return  # no active leader to kill / already down
        cluster.crash_replica(replica)
        self._record("controller-crash", f"replica {replica}")

    def recover_controller(self, at: float, replica: int) -> None:
        self.sim.schedule_at(
            at, self._recover_controller, replica, label="chaos:controller-recover"
        )

    def _recover_controller(self, replica: int) -> None:
        cluster = self.deployment.controller
        if not cluster.replicas[replica].failed:
            return
        cluster.restore_replica(replica)
        self._record("controller-recover", f"replica {replica}")

    def crash_leader_for(self, at: float, down_for: float) -> None:
        """Crash whichever replica leads at ``at`` and restore that same
        replica ``down_for`` later.  Unlike :meth:`crash_controller` +
        :meth:`recover_controller`, the victim's identity is only known
        at fire time, so the restore is scheduled from inside the crash."""
        self.sim.schedule_at(
            at, self._crash_leader_for, down_for, label="chaos:controller-crash"
        )

    def _crash_leader_for(self, down_for: float) -> None:
        cluster, replica = self._pick_replica(None)
        if replica is None or cluster.replicas[replica].failed:
            return
        cluster.crash_replica(replica)
        self._record("controller-crash", f"replica {replica}")
        self.sim.schedule(
            down_for,
            self._recover_controller,
            replica,
            label="chaos:controller-recover",
        )

    def partition_controller(
        self, at: float, duration: float, replica: Optional[int] = None
    ) -> None:
        """Sever one replica's management connectivity for ``duration``.
        ``replica=None`` targets the acting leader at fire time."""
        self.sim.schedule_at(
            at,
            self._partition_controller,
            replica,
            duration,
            label="chaos:controller-partition",
        )

    def _partition_controller(self, replica: Optional[int], duration: float) -> None:
        cluster, replica = self._pick_replica(replica)
        if replica is None:
            return
        cluster.set_mgmt_partition(replica, True)
        self._record(
            "controller-partition",
            f"replica {replica} for {duration * 1e3:.1f} ms",
        )
        self.sim.schedule(
            duration, self._heal_controller, replica, label="chaos:controller-heal"
        )

    def _heal_controller(self, replica: int) -> None:
        self.deployment.controller.set_mgmt_partition(replica, False)
        self._record("controller-heal", f"replica {replica}")

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    def link_flap(self, at: float, a: str, b: str, down_for: float) -> None:
        self.sim.schedule_at(at, self._set_link, a, b, False, label="chaos:link-down")
        self.sim.schedule_at(
            at + down_for, self._set_link, a, b, True, label="chaos:link-up"
        )

    def _set_link(self, a: str, b: str, up: bool) -> None:
        link = self.deployment.topo.link_between(a, b)
        if link is None:
            raise ValueError(f"no link between {a} and {b}")
        if link.up == up:
            return
        link.set_up(up)
        self._record("link-up" if up else "link-down", f"{a}<->{b}")

    def loss_burst(
        self,
        at: float,
        duration: float,
        loss_rate: float,
        pairs: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> None:
        """Raise the loss rate on the given links (default: all links)
        for ``duration``, then restore the original rates."""
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        pair_list = list(pairs) if pairs is not None else None
        self.sim.schedule_at(
            at, self._start_burst, pair_list, loss_rate, duration, label="chaos:loss-burst"
        )

    def _burst_links(self, pair_list):
        if pair_list is None:
            return list(self.deployment.topo.links)
        links = []
        for a, b in pair_list:
            link = self.deployment.topo.link_between(a, b)
            if link is None:
                raise ValueError(f"no link between {a} and {b}")
            links.append(link)
        return links

    def _start_burst(self, pair_list, loss_rate: float, duration: float) -> None:
        """Push one burst onto each affected channel.

        Bursts may overlap: each channel keeps its true pre-burst rate
        plus a stack of active burst rates, and its effective rate is
        the max of all of them — so ending one burst while another still
        covers the channel never restores a stale intermediate rate.
        """
        links = self._burst_links(pair_list)
        channels = []
        for link in links:
            channels.extend((link.ab, link.ba))
        for channel in channels:
            if channel not in self._burst_base:
                self._burst_base[channel] = channel.loss_rate
            self._burst_active.setdefault(channel, []).append(loss_rate)
            channel.loss_rate = max(
                self._burst_base[channel], *self._burst_active[channel]
            )
        scope = "all links" if pair_list is None else f"{len(links)} links"
        self._record("loss-burst", f"{scope} at {loss_rate:.0%} for {duration * 1e3:.1f} ms")
        self.sim.schedule(
            duration, self._end_burst, channels, loss_rate, label="chaos:loss-burst-end"
        )

    def _end_burst(self, channels, loss_rate: float) -> None:
        for channel in channels:
            active = self._burst_active[channel]
            active.remove(loss_rate)
            if active:
                channel.loss_rate = max(self._burst_base[channel], *active)
            else:
                channel.loss_rate = self._burst_base.pop(channel)
                del self._burst_active[channel]
        self._record("loss-burst-end", f"{len(channels) // 2} links restored")

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(
        self,
        at: float,
        duration: float,
        side_a: Sequence[str],
        side_b: Optional[Sequence[str]] = None,
    ) -> None:
        """Bipartition the deployment: down every link crossing the cut,
        heal after ``duration``.  ``side_b`` defaults to the complement."""
        side_a = list(side_a)
        if side_b is None:
            side_b = [n for n in self.deployment.switch_names if n not in side_a]
        else:
            side_b = list(side_b)
        overlap = set(side_a) & set(side_b)
        if overlap:
            raise ValueError(f"sides overlap: {sorted(overlap)}")
        self.sim.schedule_at(
            at, self._apply_partition, side_a, side_b, duration, label="chaos:partition"
        )

    def _apply_partition(self, side_a, side_b, duration: float) -> None:
        crossing = []
        set_a, set_b = set(side_a), set(side_b)
        for link in self.deployment.topo.links:
            ends = {link.a.name, link.b.name}
            if ends & set_a and ends & set_b and link.up:
                link.set_up(False)
                crossing.append(link)
        self._record(
            "partition",
            f"{{{','.join(sorted(set_a))}}} | {{{','.join(sorted(set_b))}}}"
            f" ({len(crossing)} links) for {duration * 1e3:.1f} ms",
        )
        self.sim.schedule(duration, self._heal_partition, crossing, label="chaos:heal")

    def _heal_partition(self, crossing) -> None:
        for link in crossing:
            link.set_up(True)
        self._record("heal", f"{len(crossing)} links restored")

    # ------------------------------------------------------------------
    # Randomized-but-seeded schedules
    # ------------------------------------------------------------------
    def schedule_random(
        self,
        start: float,
        horizon: float,
        crashes: int = 1,
        flaps: int = 1,
        bursts: int = 1,
        partitions: int = 1,
        crash_downtime: Tuple[float, float] = (5e-3, 20e-3),
        flap_downtime: Tuple[float, float] = (1e-3, 5e-3),
        burst_duration: Tuple[float, float] = (2e-3, 10e-3),
        burst_loss: float = 0.05,
        partition_duration: Tuple[float, float] = (5e-3, 20e-3),
        protect: Sequence[str] = (),
        controller_crashes: int = 0,
        controller_downtime: Tuple[float, float] = (15e-3, 40e-3),
        corruptions: int = 0,
        stale_replicas: int = 0,
        stale_duration: Tuple[float, float] = (3e-3, 8e-3),
    ) -> List[str]:
        """Plan a random schedule inside ``[start, start + horizon]``.

        Victims and times come from this injector's seeded streams, so
        identical seeds plan identical schedules.  ``protect`` names
        switches exempt from crashes (e.g. a designated writer whose
        liveness an experiment's assertions require).  Crash downtime
        should comfortably exceed the controller's detection bound so
        each crash is detected before the recovery begins.

        Returns human-readable descriptions of the planned faults.
        """
        stream = self.rng.stream("schedule")
        names = [n for n in self.deployment.switch_names if n not in set(protect)]
        links = [
            (link.a.name, link.b.name) for link in self.deployment.topo.links
        ]
        planned: List[str] = []

        def when(tail_margin: float) -> float:
            span = max(horizon - tail_margin, 1e-9)
            return start + stream.random() * span

        for _ in range(crashes):
            if not names:
                break
            victim = stream.choice(names)
            down = stream.uniform(*crash_downtime)
            at = when(down)
            self.crash_recover(at, victim, down_for=down)
            planned.append(f"crash {victim} at {at * 1e3:.2f} ms for {down * 1e3:.2f} ms")
        for _ in range(flaps):
            if not links:
                break
            a, b = stream.choice(links)
            down = stream.uniform(*flap_downtime)
            at = when(down)
            self.link_flap(at, a, b, down_for=down)
            planned.append(f"flap {a}<->{b} at {at * 1e3:.2f} ms for {down * 1e3:.2f} ms")
        for _ in range(bursts):
            duration = stream.uniform(*burst_duration)
            at = when(duration)
            self.loss_burst(at, duration=duration, loss_rate=burst_loss)
            planned.append(
                f"loss burst {burst_loss:.0%} at {at * 1e3:.2f} ms"
                f" for {duration * 1e3:.2f} ms"
            )
        all_names = list(self.deployment.switch_names)
        for _ in range(partitions):
            if len(all_names) < 2:
                break
            size = stream.randint(1, len(all_names) - 1)
            side = stream.sample(all_names, size)
            duration = stream.uniform(*partition_duration)
            at = when(duration)
            self.partition(at, duration=duration, side_a=side)
            planned.append(
                f"partition {{{','.join(sorted(side))}}} at {at * 1e3:.2f} ms"
                f" for {duration * 1e3:.2f} ms"
            )
        # Controller crashes draw last, so schedules planned before this
        # knob existed (controller_crashes=0) remain byte-identical.
        n_replicas = len(self.deployment.controller.replicas)
        for _ in range(controller_crashes):
            if n_replicas < 2:
                break  # killing a solo controller just halts the run
            victim = stream.randint(0, n_replicas - 1)
            down = stream.uniform(*controller_downtime)
            at = when(down)
            self.crash_controller(at, victim)
            self.recover_controller(at + down, victim)
            planned.append(
                f"controller crash replica {victim} at {at * 1e3:.2f} ms"
                f" for {down * 1e3:.2f} ms"
            )
        # Silent-divergence faults draw after the controller draws, so
        # schedules planned before these knobs existed stay byte-identical.
        specs = self.deployment.specs
        corruptible = [
            gid
            for gid, spec in sorted(specs.items())
            if not (
                spec.consistency is Consistency.EWO
                and spec.ewo_mode is EwoMode.ORSET
            )
        ]
        for _ in range(corruptions):
            if not names or not corruptible:
                break
            victim = stream.choice(names)
            gid = stream.choice(corruptible)
            at = when(0.0)
            self.corrupt_register(at, victim, gid)
            planned.append(
                f"corrupt {victim} group {gid} at {at * 1e3:.2f} ms"
            )
        freezable = sorted(specs)
        for _ in range(stale_replicas):
            if not names or not freezable:
                break
            victim = stream.choice(names)
            gid = stream.choice(freezable)
            duration = stream.uniform(*stale_duration)
            at = when(duration)
            self.stale_replica(at, victim, gid, duration=duration)
            planned.append(
                f"stale {victim} group {gid} at {at * 1e3:.2f} ms"
                f" for {duration * 1e3:.2f} ms"
            )
        return planned

    # ------------------------------------------------------------------
    def log_digest(self) -> Tuple[Tuple[float, str, str], ...]:
        """Canonical form of the applied-fault log for determinism checks."""
        return tuple((r.at, r.kind, r.detail) for r in self.log)
