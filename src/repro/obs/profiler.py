"""Sim-time profiler: attribute wall-clock cost to event-handler labels.

The discrete-event kernel dispatches every action in the reproduction
through :meth:`Simulator.run`, and each :class:`~repro.sim.engine.Event`
carries a ``label`` (heartbeat processes, link deliveries, pipeline
serves...).  The profiler hooks the dispatch loop and aggregates, per
label, how many events ran and how much *host* wall-clock time they
consumed — which is exactly the signal needed to decide which hot path
to optimize in a future perf PR.

Events scheduled without a label are attributed to the callback's
qualified name (e.g. ``PisaSwitch._serve_next``), so nothing hides in
an "unlabelled" bucket.

Usage::

    profiler = SimProfiler()
    profiler.install(sim)      # sim.run()/sim.step() now route through it
    sim.run(until=0.1)
    print(profiler.report())   # top-k table
    profiler.uninstall(sim)
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["HandlerStats", "SimProfiler"]


class HandlerStats:
    """Accumulated cost of one handler label."""

    __slots__ = ("label", "events", "wall_seconds", "max_seconds")

    def __init__(self, label: str) -> None:
        self.label = label
        self.events = 0
        self.wall_seconds = 0.0
        self.max_seconds = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.wall_seconds / self.events if self.events else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "events": self.events,
            "wall_seconds": self.wall_seconds,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
        }


class SimProfiler:
    """Times event callbacks by label via the kernel's profiler hook.

    ``clock`` is injectable for deterministic tests; it defaults to
    :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = _time.perf_counter) -> None:
        self._clock = clock
        self._stats: Dict[str, HandlerStats] = {}
        self.events_profiled = 0
        self.total_wall_seconds = 0.0

    # -- kernel hook ----------------------------------------------------
    def install(self, sim: Any) -> "SimProfiler":
        """Attach to a :class:`~repro.sim.engine.Simulator`."""
        sim.profiler = self
        return self

    def uninstall(self, sim: Any) -> None:
        if getattr(sim, "profiler", None) is self:
            sim.profiler = None

    def dispatch(self, event: Any) -> None:
        """Run ``event``'s callback, attributing its wall time to its label.

        Called by the kernel's dispatch loop in place of a direct
        ``event.callback(*event.args)`` invocation.
        """
        label = event.label
        if not label:
            callback = event.callback
            label = getattr(callback, "__qualname__", None) or repr(callback)
        stats = self._stats.get(label)
        if stats is None:
            stats = self._stats[label] = HandlerStats(label)
        start = self._clock()
        try:
            event.callback(*event.args)
        finally:
            elapsed = self._clock() - start
            stats.events += 1
            stats.wall_seconds += elapsed
            if elapsed > stats.max_seconds:
                stats.max_seconds = elapsed
            self.events_profiled += 1
            self.total_wall_seconds += elapsed

    # -- reporting ------------------------------------------------------
    def top(self, k: int = 10) -> List[HandlerStats]:
        """The ``k`` labels with the largest total wall time."""
        ranked = sorted(
            self._stats.values(), key=lambda s: (-s.wall_seconds, s.label)
        )
        return ranked[:k]

    def stats(self, label: str) -> Optional[HandlerStats]:
        return self._stats.get(label)

    def as_dict(self, k: int = 20) -> Dict[str, Any]:
        return {
            "events_profiled": self.events_profiled,
            "total_wall_seconds": self.total_wall_seconds,
            "top": [s.as_dict() for s in self.top(k)],
        }

    def report(self, k: int = 10) -> str:
        """A text table of the top-``k`` hot handlers."""
        lines = [
            f"sim profiler: {self.events_profiled} events, "
            f"{self.total_wall_seconds * 1e3:.2f} ms wall",
            f"{'handler':<40} {'events':>10} {'total ms':>10} {'mean us':>10} {'share':>7}",
        ]
        total = self.total_wall_seconds or 1.0
        for s in self.top(k):
            lines.append(
                f"{s.label:<40.40} {s.events:>10} "
                f"{s.wall_seconds * 1e3:>10.3f} {s.mean_seconds * 1e6:>10.3f} "
                f"{s.wall_seconds / total:>6.1%}"
            )
        return "\n".join(lines)
