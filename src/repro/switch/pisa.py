"""The PISA switch model.

A :class:`PisaSwitch` is a :class:`~repro.net.link.Node` that processes
packets through a parser -> match-action pipeline -> deparser flow
(paper section 2), with these modeled hardware features:

* **Atomic per-packet processing** — one packet's pipeline pass runs as
  a single simulator event; no other packet observes intermediate state
  on the same switch.  A re-entrancy guard enforces this.
* **Handlers** — programs (SwiShmem protocol engines, NFs) install
  packet handlers consulted in order; the first handler that consumes a
  packet terminates processing.  Unconsumed packets fall through to
  plain L3 forwarding.
* **Pipeline service rate** — an optional packets-per-second capacity;
  when set, arrivals queue FIFO and the capacity benchmark (experiment
  C1) can compare switch and server service rates.
* **Egress mirroring, multicast, recirculation, packet generator** —
  the features paper section 7 uses to implement EWO.
* **A control plane** (:class:`~repro.switch.control.ControlPlaneAgent`)
  with DRAM buffering and timers, used by SRO.

Handlers receive ``(packet, from_node)`` and return True when they
consumed the packet.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.net.endhost import AddressBook
from repro.net.link import Node
from repro.net.multicast import MulticastRegistry
from repro.net.packet import Packet
from repro.net.routing import RoutingTable
from repro.obs.inttel import IntHopRecord, IntTelemetry
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.trace import NULL_TRACER, Tracer
from repro.switch.control import ControlPlaneAgent, DEFAULT_OP_LATENCY
from repro.switch.memory import DEFAULT_SWITCH_MEMORY_BYTES, MemoryBudget

__all__ = ["PisaSwitch", "SwitchStats", "PacketHandler"]

PacketHandler = Callable[[Packet, str], bool]

#: Per-packet pipeline latency: parser + stages + deparser.  Constant and
#: tiny, as in hardware (the pipeline is a fixed-depth conveyor belt).
PIPELINE_LATENCY = 400e-9

#: Delay for a recirculated packet to re-enter the parser.
RECIRCULATION_LATENCY = 800e-9

#: Latency for the control plane to inject a packet into the data plane.
CPU_INJECT_LATENCY = 5e-6


class SwitchStats:
    """Forwarding-plane counters."""

    __slots__ = (
        "rx_packets",
        "tx_packets",
        "dropped_packets",
        "punted_packets",
        "recirculated_packets",
        "mirrored_packets",
        "multicast_copies",
        "generated_packets",
        "queue_drops",
    )

    def __init__(self) -> None:
        self.rx_packets = 0
        self.tx_packets = 0
        self.dropped_packets = 0
        self.punted_packets = 0
        self.recirculated_packets = 0
        self.mirrored_packets = 0
        self.multicast_copies = 0
        self.generated_packets = 0
        self.queue_drops = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class PisaSwitch(Node):
    """A programmable data-plane switch."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        routing: Optional[RoutingTable] = None,
        address_book: Optional[AddressBook] = None,
        multicast: Optional[MulticastRegistry] = None,
        memory_bytes: int = DEFAULT_SWITCH_MEMORY_BYTES,
        control_op_latency: float = DEFAULT_OP_LATENCY,
        pipeline_rate_pps: Optional[float] = None,
        queue_capacity: int = 1024,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ) -> None:
        super().__init__(name)
        self.sim = sim
        self.routing = routing
        self.address_book = address_book
        self.multicast = multicast
        self.memory = MemoryBudget(memory_bytes)
        self.control = ControlPlaneAgent(self, op_latency=control_op_latency)
        self.tracer = tracer
        # Tracer category decisions and event labels are fixed per switch;
        # resolve them once instead of on every packet (the tracer is
        # bound at construction and never swapped).
        self._trace_fwd = tracer.enabled("fwd")
        self._trace_drop = tracer.enabled("drop")
        self._serve_label = f"{name}:serve"
        self._recirc_label = f"{name}:recirc"
        self._cpu_inject_label = f"{name}:cpu-inject"
        self.stats = SwitchStats()
        self._handlers: List[PacketHandler] = []
        #: Immutable snapshot iterated by the pipeline, refreshed on
        #: install/remove so the per-packet pass never copies the list.
        self._handlers_snapshot: Tuple[PacketHandler, ...] = ()
        #: Mirror sessions: session id -> destination node name.
        self._mirror_sessions: Dict[int, str] = {}
        # Optional finite-capacity service model (experiment C1).
        self.pipeline_rate_pps = pipeline_rate_pps
        self.queue_capacity = queue_capacity
        self._queue: Deque[Tuple[Packet, str, float, int]] = deque()
        self._serving = False
        # Atomicity guard (paper section 2).
        self._in_pipeline = False
        # INT mode: stamp a per-hop telemetry record onto each packet.
        self.int_enabled = False
        self.int_max_hops = 16
        self.bind_metrics(metrics)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """(Re)bind telemetry instruments; deployments call this to turn
        a pre-constructed switch's metrics on after the fact."""
        self.metrics = metrics
        self._metrics_on = metrics.enabled
        self._m_rx = metrics.counter("switch.rx_packets", self.name)
        self._m_tx = metrics.counter("switch.tx_packets", self.name)
        self._m_drops = metrics.counter("switch.dropped_packets", self.name)
        self._m_punts = metrics.counter("switch.punted_packets", self.name)
        self._m_queue_depth = metrics.gauge("switch.queue_depth", self.name)
        self._m_queue_drops = metrics.counter("switch.queue_drops", self.name)
        self._m_queue_wait = metrics.histogram("switch.queue_wait_seconds", self.name)

    # ------------------------------------------------------------------
    # Program installation
    # ------------------------------------------------------------------
    def install_handler(self, handler: PacketHandler, front: bool = False) -> None:
        """Install a packet handler; ``front=True`` gives it priority.

        Protocol engines (SwiShmem) install at the front so replication
        traffic never reaches NF code; NFs install at the back.
        """
        if front:
            self._handlers.insert(0, handler)
        else:
            self._handlers.append(handler)
        self._handlers_snapshot = tuple(self._handlers)

    def remove_handler(self, handler: PacketHandler) -> None:
        self._handlers.remove(handler)
        self._handlers_snapshot = tuple(self._handlers)

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, from_node: str) -> None:
        self.stats.rx_packets += 1
        if self._metrics_on:
            self._m_rx.inc()
        if self.pipeline_rate_pps is None:
            self._pipeline_pass(packet, from_node)
            return
        # Finite service rate: FIFO queue + serialized service events.
        depth = len(self._queue)
        if depth >= self.queue_capacity:
            self.stats.queue_drops += 1
            self.stats.dropped_packets += 1
            if self._metrics_on:
                self._m_queue_drops.inc()
                self._m_drops.inc()
            return
        self._queue.append((packet, from_node, self.sim.now, depth))
        if self._metrics_on:
            self._m_queue_depth.set(depth + 1)
        if not self._serving:
            self._serving = True
            self.sim.schedule(
                1.0 / self.pipeline_rate_pps, self._serve_next, label=self._serve_label
            )

    def _serve_next(self) -> None:
        if self.failed:
            self._queue.clear()
            self._serving = False
            return
        if not self._queue:
            self._serving = False
            return
        packet, from_node, enqueued_at, depth = self._queue.popleft()
        if self._metrics_on:
            self._m_queue_depth.set(len(self._queue))
            self._m_queue_wait.observe(self.sim.now - enqueued_at)
        self._pipeline_pass(packet, from_node, arrived_at=enqueued_at, queue_depth=depth)
        if self._queue:
            self.sim.schedule(
                1.0 / self.pipeline_rate_pps, self._serve_next, label=self._serve_label
            )
        else:
            self._serving = False

    def _pipeline_pass(
        self,
        packet: Packet,
        from_node: str,
        arrived_at: Optional[float] = None,
        queue_depth: int = 0,
    ) -> None:
        """One atomic parser -> pipeline -> deparser pass."""
        if self._in_pipeline:
            raise RuntimeError(
                f"{self.name}: re-entrant pipeline pass — a handler synchronously "
                "re-delivered a packet; use recirculate() or the simulator instead"
            )
        self._in_pipeline = True
        ingress = arrived_at if arrived_at is not None else self.sim.now
        try:
            packet.meta.clear()  # fresh PISA metadata at each switch
            packet.meta["ingress_node"] = from_node
            # The snapshot tuple makes handler add/remove during a pass
            # safe without copying the list for every packet.
            for handler in self._handlers_snapshot:
                if handler(packet, from_node):
                    return
            # Replication packets addressed to another switch are, on the
            # wire, ordinary IP packets to that switch's loopback: any
            # switch — including one running no SwiShmem program at all —
            # forwards them toward their destination.
            if (
                packet.swishmem is not None
                and packet.swishmem.dst_node is not None
                and packet.swishmem.dst_node != self.name
            ):
                self.forward_to_node(packet, packet.swishmem.dst_node)
                return
            self.forward_by_ip(packet)
        finally:
            self._in_pipeline = False
            if self.int_enabled:
                self._stamp_int_hop(packet, ingress, queue_depth)

    def _stamp_int_hop(self, packet: Packet, ingress: float, queue_depth: int) -> None:
        """Push this hop's INT record (INT-MD: metadata rides the packet).

        Hop latency covers queue wait plus the service slot; the
        ``int_state_ops`` metadata key is incremented by the SwiShmem
        manager for every register operation the pass executed.
        """
        telemetry = packet.int_data
        if telemetry is None:
            telemetry = packet.int_data = IntTelemetry(max_hops=self.int_max_hops)
        telemetry.push(
            IntHopRecord(
                node=self.name,
                ingress_time=ingress,
                egress_time=self.sim.now,
                queue_depth=queue_depth,
                state_ops=packet.meta.get("int_state_ops", 0),
            )
        )

    # ------------------------------------------------------------------
    # Egress actions (the API programs use)
    # ------------------------------------------------------------------
    def forward_to_node(self, packet: Packet, dst_node: str) -> bool:
        """Forward toward a node by name (switch-to-switch traffic)."""
        if dst_node == self.name:
            # Delivered to ourselves: re-enter the pipeline via recirculation.
            self.recirculate(packet)
            return True
        if self.routing is None:
            raise RuntimeError(f"{self.name} has no routing table")
        hop = self.routing.next_hop(self.name, dst_node, packet)
        if hop is None:
            self.drop(packet, reason="unreachable")
            return False
        sent = self.send(packet, hop) if hop in self.links else self._send_via_routing(packet, hop)
        if sent:
            self.stats.tx_packets += 1
            if self._metrics_on:
                self._m_tx.inc()
            if self._trace_fwd:
                self.tracer.emit(self.sim.now, "fwd", self.name, "tx", to=hop, pkt=packet.uid)
        return sent

    def _send_via_routing(self, packet: Packet, hop: str) -> bool:
        # next_hop always returns a direct neighbor; anything else is a bug.
        raise RuntimeError(f"{self.name}: next hop {hop} is not a neighbor")

    def forward_by_ip(self, packet: Packet) -> bool:
        """Default L3 forwarding using the address book + routing."""
        if packet.ipv4 is None or self.address_book is None:
            self.drop(packet, reason="no-route")
            return False
        dst_node = self.address_book.lookup(packet.ipv4.dst)
        if dst_node is None:
            self.drop(packet, reason="unknown-ip")
            return False
        packet.ipv4.ttl -= 1
        if packet.ipv4.ttl <= 0:
            self.drop(packet, reason="ttl-expired")
            return False
        return self.forward_to_node(packet, dst_node)

    def drop(self, packet: Packet, reason: str = "") -> None:
        self.stats.dropped_packets += 1
        if self._metrics_on:
            self._m_drops.inc()
        if self._trace_drop:
            self.tracer.emit(self.sim.now, "drop", self.name, reason or "drop", pkt=packet.uid)

    def punt_to_cpu(self, packet: Packet, handler: Callable[[Packet], None]) -> None:
        """Send a packet to the local control plane (paper section 2)."""
        self.stats.punted_packets += 1
        if self._metrics_on:
            self._m_punts.inc()
        self.control.submit(handler, packet, label="punt")

    def recirculate(self, packet: Packet) -> None:
        """Send a packet back through the pipeline (paper section 2)."""
        self.stats.recirculated_packets += 1
        ingress = packet.meta.get("ingress_node", self.name)
        self.sim.schedule(
            RECIRCULATION_LATENCY,
            self._pipeline_pass,
            packet,
            ingress,
            label=self._recirc_label,
        )

    def inject_from_cpu(self, packet: Packet, dst_node: str) -> None:
        """Control plane injects a packet into the data plane for egress."""
        self.sim.schedule(
            CPU_INJECT_LATENCY,
            self._inject,
            packet,
            dst_node,
            label=self._cpu_inject_label,
        )

    def _inject(self, packet: Packet, dst_node: str) -> None:
        if self.failed:
            return
        self.forward_to_node(packet, dst_node)

    # ------------------------------------------------------------------
    # Mirroring and multicast (paper section 7, EWO implementation)
    # ------------------------------------------------------------------
    def configure_mirror_session(self, session_id: int, dst_node: str) -> None:
        self._mirror_sessions[session_id] = dst_node

    def mirror(self, packet: Packet, session_id: int) -> bool:
        """Egress-mirror a copy of ``packet`` to the session destination."""
        dst = self._mirror_sessions.get(session_id)
        if dst is None:
            return False
        self.stats.mirrored_packets += 1
        return self.forward_to_node(packet.clone(), dst)

    def multicast_to_group(self, packet: Packet, group_id: int) -> int:
        """Replicate ``packet`` to every other member of a multicast group.

        Returns the number of copies sent.  The packet itself is not
        consumed — EWO sends copies while the original proceeds to its
        destination.
        """
        if self.multicast is None:
            raise RuntimeError(f"{self.name} has no multicast registry")
        group = self.multicast.get(group_id)
        copies = 0
        for member in group.others(self.name):
            copy = packet.clone()
            if copy.swishmem is not None:
                # The multicast engine stamps each copy's egress
                # destination, so transit switches forward rather than
                # consume copies addressed to someone else.
                copy.swishmem.dst_node = member
            if self.forward_to_node(copy, member):
                copies += 1
                self.stats.multicast_copies += 1
        return copies

    # ------------------------------------------------------------------
    # Packet generator (paper section 7: periodic EWO sync)
    # ------------------------------------------------------------------
    def generate_packet(self, packet: Packet, dst_node: str) -> bool:
        """Emit a locally generated packet (packet-generator feature)."""
        if self.failed:
            return False
        self.stats.generated_packets += 1
        packet.created_at = self.sim.now
        return self.forward_to_node(packet, dst_node)

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Fail-stop: drop queued work too."""
        super().fail()
        self._queue.clear()
