"""Compatibility shim: the NF-cluster world builder moved into the
library proper (`repro.testing`) so examples and downstream users can
build realistic deployments without vendoring test helpers."""

from repro.testing import NfWorld, build_nf_world

__all__ = ["NfWorld", "build_nf_world"]
