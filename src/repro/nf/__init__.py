"""The six Table 1 network functions, written against SwiShmem registers."""

from repro.nf.base import NetworkFunction, NfStats
from repro.nf.ddos import DdosDetectorNF
from repro.nf.firewall import ConnState, FirewallNF
from repro.nf.heavyhitter import (
    ControllerHeavyHitterNF,
    HeavyHitterCoordinator,
    HeavyHitterNF,
)
from repro.nf.ips import IpsNF, packet_signature
from repro.nf.loadbalancer import LoadBalancerNF
from repro.nf.nat import NatNF
from repro.nf.ratelimiter import RateLimiterNF, user_of_packet
from repro.nf.sequencer import SequencerNF

__all__ = [
    "NetworkFunction",
    "NfStats",
    "DdosDetectorNF",
    "ConnState",
    "FirewallNF",
    "ControllerHeavyHitterNF",
    "HeavyHitterCoordinator",
    "HeavyHitterNF",
    "IpsNF",
    "packet_signature",
    "LoadBalancerNF",
    "NatNF",
    "RateLimiterNF",
    "user_of_packet",
    "SequencerNF",
]
