"""The single-switch -> distributed translation layer.

Paper section 5: "a compiler could be used to translate regular P4
register accesses into SwiShmem operations", and section 9 envisions
"automatic transformation of a single-switch program into a distributed
one".  This module provides both halves of that story at the Python
level:

* :func:`distribute` — take a *single-switch program* (register
  declarations + a packet-processing function written as if one switch
  existed) and instantiate it on every switch of a deployment, with its
  register accesses transparently routed through SwiShmem protocols.

* :class:`AccessProfiler` / :func:`recommend_consistency` — the
  analysis behind Table 1: run a program, measure each register group's
  read/write frequency, and recommend the register type per the paper's
  observations (read-intensive + strong-needs -> SRO, read-intensive +
  weak -> ERO, write-intensive -> EWO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec

__all__ = [
    "SingleSwitchProgram",
    "distribute",
    "AccessProfile",
    "AccessProfiler",
    "recommend_consistency",
]


class SingleSwitchProgram:
    """Base class for programs written against the one-big-switch model.

    Subclasses declare their shared state in :meth:`registers` and their
    packet logic in :meth:`process`; they never mention switches, chains,
    or replication.
    """

    def registers(self) -> List[RegisterSpec]:
        """The program's shared register groups."""
        raise NotImplementedError

    def process(self, ctx, handles: Dict[str, Any]):
        """Handle one packet.  ``handles`` maps register name -> handle.

        Returns a :class:`~repro.core.manager.Decision` (or None for
        default forwarding).
        """
        raise NotImplementedError


class _ProgramAdapter:
    """Binds one program instance to one switch's register handles."""

    def __init__(self, program: SingleSwitchProgram, handles: Dict[str, Any]) -> None:
        self.program = program
        self.handles = handles

    def process(self, ctx):
        return self.program.process(ctx, self.handles)


def distribute(
    program_factory: Callable[[], SingleSwitchProgram],
    deployment: SwiShmemDeployment,
) -> List[_ProgramAdapter]:
    """Deploy a single-switch program across every switch.

    A fresh program instance runs on each switch (per-switch local
    variables stay local, as on real hardware); shared state is exactly
    the declared registers.  Register groups are declared once from the
    first instance's specs.
    """
    template = program_factory()
    specs = template.registers()
    for spec in specs:
        deployment.declare(spec)
    adapters = []
    for index, switch in enumerate(deployment.switches):
        manager = deployment.managers[switch.name]
        program = template if index == 0 else program_factory()
        handles = {spec.name: manager.handle(spec) for spec in specs}
        adapter = _ProgramAdapter(program, handles)
        manager.install_nf(adapter)
        adapters.append(adapter)
    return adapters


# ----------------------------------------------------------------------
# Access-pattern analysis (Table 1 reproduction)
# ----------------------------------------------------------------------


@dataclass
class AccessProfile:
    """Measured access pattern of one register group."""

    group_name: str
    reads: int = 0
    writes: int = 0
    packets: int = 0
    needs_strong: bool = True

    @property
    def reads_per_packet(self) -> float:
        return self.reads / self.packets if self.packets else 0.0

    @property
    def writes_per_packet(self) -> float:
        return self.writes / self.packets if self.packets else 0.0

    @property
    def write_fraction(self) -> float:
        total = self.reads + self.writes
        return self.writes / total if total else 0.0

    def frequency_label(
        self,
        per_packet_threshold: float = 0.5,
        occasional_threshold: float = 0.02,
    ) -> Tuple[str, str]:
        """(write frequency, read frequency) in Table 1's vocabulary.

        Three tiers: accesses on (nearly) every packet, accesses tied to
        occasional events (new connections for writes, periodic windows
        for reads), and rare control-plane-only accesses ("Low").
        """
        writes = (
            "Every packet" if self.writes_per_packet >= per_packet_threshold
            else "New connection" if self.writes_per_packet >= occasional_threshold
            else "Low"
        )
        reads = (
            "Every packet" if self.reads_per_packet >= per_packet_threshold
            else "Every window" if self.reads_per_packet > 0.0
            else "Low"
        )
        return writes, reads


class AccessProfiler:
    """Counts register accesses per group while a workload runs.

    Attach to a deployment *before* traffic, then read profiles after:
    the profiler snapshots engine counters at start and diffs at the
    end, so it composes with any protocol configuration.
    """

    def __init__(self, deployment: SwiShmemDeployment) -> None:
        self.deployment = deployment
        self._start_counts: Dict[int, Tuple[int, int]] = {}
        self._start_packets = 0
        self.begin()

    def _counts(self) -> Dict[int, Tuple[int, int]]:
        totals: Dict[int, Tuple[int, int]] = {}
        for group_id, spec in self.deployment.specs.items():
            reads = writes = 0
            for manager in self.deployment.managers.values():
                if spec.consistency is Consistency.EWO:
                    stats = manager.ewo.groups[group_id].stats
                    reads += stats.local_reads
                    writes += stats.local_writes
                else:
                    stats = manager.sro.groups[group_id].stats
                    reads += stats.local_reads + stats.forwarded_reads + stats.tail_reads
                    writes += stats.writes_initiated
            totals[group_id] = (reads, writes)
        return totals

    def _packet_count(self) -> int:
        return sum(s.stats.rx_packets for s in self.deployment.switches)

    def begin(self) -> None:
        self._start_counts = self._counts()
        self._start_packets = self._packet_count()

    def profiles(
        self,
        needs_strong: Optional[Dict[str, bool]] = None,
        packets: Optional[int] = None,
    ) -> List[AccessProfile]:
        """Access profiles accumulated since :meth:`begin`.

        ``needs_strong`` optionally maps group names to the application's
        stated consistency requirement (an application property the
        profiler cannot infer from counts alone — Table 1's last column).

        ``packets`` overrides the denominator.  The default counts every
        switch-level receive, which inflates per-hop and replication
        traffic; workloads that know how many data packets they injected
        should pass that number for per-packet ratios in the sense Table
        1 uses them.
        """
        needs_strong = needs_strong or {}
        end = self._counts()
        if packets is None:
            packets = self._packet_count() - self._start_packets
        profiles = []
        for group_id, spec in sorted(self.deployment.specs.items()):
            start_r, start_w = self._start_counts.get(group_id, (0, 0))
            reads, writes = end[group_id]
            profiles.append(
                AccessProfile(
                    group_name=spec.name,
                    reads=reads - start_r,
                    writes=writes - start_w,
                    packets=packets,
                    needs_strong=needs_strong.get(spec.name, spec.is_strong),
                )
            )
        return profiles


def recommend_consistency(
    profile: AccessProfile, write_intensive_threshold: float = 0.5
) -> Consistency:
    """The paper's register-type choice, from measured behavior.

    * Write-intensive state cannot afford chain writes; the paper's
      Observation 2 sends it to EWO (and asserts such NFs tolerate it).
    * Read-intensive state that *requires* strong consistency -> SRO
      (Observation 1: infrequent writes make the chain affordable).
    * Read-intensive state with weak requirements -> ERO, keeping the
      cheap chain-ordered write path but avoiding pending-bit costs.
    """
    if profile.writes_per_packet >= write_intensive_threshold:
        return Consistency.EWO
    if profile.needs_strong:
        return Consistency.SRO
    return Consistency.ERO
