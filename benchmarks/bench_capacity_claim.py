"""[C1] Section 3.1 capacity claim: switch vs. software middlebox.

"Whereas a software-based load balancer can process approximately 15
million packets per second on a single server, a single switch can
process 5 billion packets per second … several hundred times as many
packets."

Both processors are simulated with the same finite-service-rate queue
model (the PISA switch with ``pipeline_rate_pps``); only the service
rates differ.  Absolute rates are scaled down 1000x so the simulation
stays laptop-sized — the claim under test is the *ratio* (~333x) and
the saturation behavior, both scale-free.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.routing import RoutingTable
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_rate, print_header, print_table

#: Paper numbers (pps) and the 1000x simulation scale factor.
SWITCH_PPS = 5e9
SERVER_PPS = 15e6
SCALE = 1e-3


@dataclass
class CapacityResult:
    name: str
    service_pps: float
    offered_pps: float
    delivered_pps: float
    drop_fraction: float


def _run_one(name: str, service_pps: float, offered_pps: float, duration: float = 0.05) -> CapacityResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(31))
    book = AddressBook()
    node = topo.add_node(
        PisaSwitch(
            name, sim, pipeline_rate_pps=service_pps, queue_capacity=256
        )
    )
    src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
    topo.connect("src", name, bandwidth_bps=1e12)
    topo.connect(name, "dst", bandwidth_bps=1e12)
    node.routing = RoutingTable(topo)
    node.address_book = book
    count = int(offered_pps * duration)
    gap = 1.0 / offered_pps
    for i in range(count):
        sim.schedule(
            i * gap,
            lambda: src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2, payload_size=64)),
        )
    # Cut measurement off exactly at the offered-load window so the
    # delivered rate is comparable to the service rate.
    sim.run(until=duration)
    delivered = len(dst.received)
    return CapacityResult(
        name=name,
        service_pps=service_pps,
        offered_pps=offered_pps,
        delivered_pps=delivered / duration,
        drop_fraction=1.0 - delivered / count,
    )


def run_experiment():
    switch_rate = SWITCH_PPS * SCALE
    server_rate = SERVER_PPS * SCALE
    results = []
    # Offered load below server capacity: both keep up.
    low = server_rate * 0.5
    results.append(_run_one("server-lb", server_rate, low))
    results.append(_run_one("switch-lb", switch_rate, low))
    # Offered load 20x server capacity: server saturates, switch does not.
    high = server_rate * 20
    results.append(_run_one("server-lb", server_rate, high))
    results.append(_run_one("switch-lb", switch_rate, high))
    return results


def report(results):
    print_header(
        "C1",
        "Section 3.1: switch vs server packet-processing capacity (scaled 1000x)",
        "a switch processes several hundred times as many packets per second "
        "(5 Gpps vs 15 Mpps ~ 333x)",
    )
    print_table(
        ["processor", "service rate", "offered", "delivered", "drops"],
        [
            (
                r.name,
                fmt_rate(r.service_pps / SCALE),
                fmt_rate(r.offered_pps / SCALE),
                fmt_rate(r.delivered_pps / SCALE),
                f"{r.drop_fraction * 100:.1f}%",
            )
            for r in results
        ],
    )
    ratio = SWITCH_PPS / SERVER_PPS
    print(f"capacity ratio switch/server = {ratio:.0f}x (paper: 'several hundred times')")


@pytest.mark.benchmark(group="experiment")
def test_capacity_shape_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    server_low, switch_low, server_high, switch_high = (
        results[0], results[1], results[2], results[3]
    )
    # Under light load both deliver everything.
    assert server_low.drop_fraction < 0.01
    assert switch_low.drop_fraction < 0.01
    # Under 20x-server load, the server saturates at its service rate...
    assert server_high.drop_fraction > 0.5
    assert server_high.delivered_pps == pytest.approx(server_high.service_pps, rel=0.1)
    # ...while the switch is untroubled.
    assert switch_high.drop_fraction < 0.01
    # The headline ratio is "several hundred times".
    assert 300 <= SWITCH_PPS / SERVER_PPS <= 400


@pytest.mark.benchmark(group="capacity")
def test_benchmark_capacity(benchmark):
    benchmark.pedantic(run_experiment, rounds=1, iterations=1)
