"""Observed-remove set (OR-Set) CRDT.

Paper section 6.2 closes with: "While many other CRDTs have been
designed (e.g., sets and their variants), whether they are useful for
in-switch NF applications or implementable in a switch data plane is an
open question."

We implement the OR-Set to explore that open question concretely: the
IPS signature set (section 4.1) is a natural candidate — signatures are
added and occasionally retired, and weak consistency is acceptable.  The
implementation tracks per-element add tags (switch id, counter) and a
tombstone set of removed tags, the standard state-based OR-Set.  Its
footprint accounting makes the "is it implementable in a data plane"
question quantitative: the benchmarks report bytes per element versus a
register-array budget.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Set, Tuple

__all__ = ["ORSet"]

Tag = Tuple[int, int]  # (switch id, per-switch add counter)


class ORSet:
    """State-based observed-remove set."""

    #: Estimated on-wire/in-switch bytes per tag: element hash (4) +
    #: switch id (2) + counter (4).
    TAG_BYTES = 10

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._next_tag = 0
        #: element -> set of live add-tags
        self._adds: Dict[Hashable, Set[Tag]] = {}
        #: removed tags (tombstones), per element
        self._removes: Dict[Hashable, Set[Tag]] = {}

    # ------------------------------------------------------------------
    def add(self, element: Hashable) -> Tag:
        """Add an element with a fresh unique tag."""
        self._next_tag += 1
        tag = (self.node_id, self._next_tag)
        self._adds.setdefault(element, set()).add(tag)
        return tag

    def remove(self, element: Hashable) -> bool:
        """Remove by tombstoning every *observed* add tag.

        Concurrent adds not yet seen survive — the defining OR-Set
        behavior (add wins over concurrent remove).
        """
        live = self._live_tags(element)
        if not live:
            return False
        self._removes.setdefault(element, set()).update(live)
        return True

    def __contains__(self, element: Hashable) -> bool:
        return bool(self._live_tags(element))

    # --- delta application (replication wire format) --------------------
    def apply_add(self, element: Hashable, tag: Tag) -> bool:
        """Merge one remote add tag.  Returns True if it was new."""
        tags = self._adds.setdefault(element, set())
        if tag in tags:
            return False
        tags.add(tag)
        return True

    def apply_remove(self, element: Hashable, tags: Iterable[Tag]) -> bool:
        """Merge remote remove tombstones.  Returns True if any was new."""
        mine = self._removes.setdefault(element, set())
        before = len(mine)
        mine.update(tags)
        return len(mine) != before

    def element_state(self, element: Hashable) -> Tuple[FrozenSet[Tag], FrozenSet[Tag]]:
        """(add tags, remove tags) for one element — the sync payload."""
        return (
            frozenset(self._adds.get(element, ())),
            frozenset(self._removes.get(element, ())),
        )

    def known_elements(self) -> Set[Hashable]:
        """Every element with any tag state, live or tombstoned."""
        return set(self._adds) | set(self._removes)

    def elements(self) -> Set[Hashable]:
        return {e for e in self._adds if self._live_tags(e)}

    def _live_tags(self, element: Hashable) -> Set[Tag]:
        return self._adds.get(element, set()) - self._removes.get(element, set())

    # ------------------------------------------------------------------
    def merge(self, other_state: Tuple[Dict[Hashable, FrozenSet[Tag]], Dict[Hashable, FrozenSet[Tag]]]) -> bool:
        """Union-merge remote (adds, removes).  Returns True if changed."""
        remote_adds, remote_removes = other_state
        changed = False
        for element, tags in remote_adds.items():
            mine = self._adds.setdefault(element, set())
            before = len(mine)
            mine.update(tags)
            changed = changed or len(mine) != before
        for element, tags in remote_removes.items():
            mine = self._removes.setdefault(element, set())
            before = len(mine)
            mine.update(tags)
            changed = changed or len(mine) != before
        return changed

    def state(self) -> Tuple[Dict[Hashable, FrozenSet[Tag]], Dict[Hashable, FrozenSet[Tag]]]:
        return (
            {e: frozenset(tags) for e, tags in self._adds.items()},
            {e: frozenset(tags) for e, tags in self._removes.items()},
        )

    # ------------------------------------------------------------------
    @property
    def state_bytes(self) -> int:
        """Estimated in-switch footprint (the open-question metric)."""
        tag_count = sum(len(t) for t in self._adds.values()) + sum(
            len(t) for t in self._removes.values()
        )
        return tag_count * self.TAG_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ORSet):
            return NotImplemented
        return self.state() == other.state()

    def __len__(self) -> int:
        return len(self.elements())

    def __repr__(self) -> str:
        return f"<ORSet node={self.node_id} elements={sorted(map(repr, self.elements()))}>"
