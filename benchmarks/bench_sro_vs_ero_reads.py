"""[P2] SRO vs ERO read behavior under concurrent writes.

Paper section 6.1: ERO "provides eventual consistency by always
performing reads locally, rather than forwarding them to the tail when
there are concurrent writes.  This guarantees bounded read latency, and
also saves space by eliminating the need for pending bits."

The read path under test is the *data-plane* one — a packet whose NF
reads a register — so the experiment drives reads with real packets
through a one-register NF while a control-plane writer updates the
register.  Compared across protocols:

* read disposition: SRO forwards reads that hit pending slots to the
  tail, ERO never forwards (bounded read latency);
* consistency: SRO histories check out linearizable, ERO histories show
  stale reads (the price of bounded latency).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.analysis.linearizability import check_history
from repro.analysis.metrics import count_stale_reads
from repro.core.manager import Decision, SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.topology import Topology, build_full_mesh
from repro.nf.base import NetworkFunction
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import print_header, print_table


class ReaderNF(NetworkFunction):
    """Reads the shared register once per packet, then forwards."""

    CONSISTENCY = Consistency.SRO

    @classmethod
    def build_specs(cls, **kwargs):
        return [
            RegisterSpec(
                "hotreg", cls.CONSISTENCY, capacity=16, control_plane_state=True
            )
        ]

    def process(self, ctx):
        self.handles["hotreg"].read("hot")
        return Decision.forward()


class SroReaderNF(ReaderNF):
    CONSISTENCY = Consistency.SRO


class EroReaderNF(ReaderNF):
    CONSISTENCY = Consistency.ERO


@dataclass
class ReadResult:
    protocol: str
    local_reads: int
    forwarded_reads: int
    tail_reads: int
    stale_reads: int
    linearizability_violations: int
    packets_delivered: int


def run_protocol(nf_class, seed: int = 88) -> ReadResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    # slow control plane widens write windows so reads race writes often
    switches = build_full_mesh(
        topo, lambda n: PisaSwitch(n, sim, control_op_latency=150e-6), 3
    )
    book = AddressBook()
    sources = []
    for i, switch in enumerate(switches):
        host = topo.add_node(EndHost(f"src{i}", sim, f"10.0.0.{i+1}", book))
        topo.connect(host.name, switch.name)
        sources.append(host)
    sink = topo.add_node(EndHost("sink", sim, "10.0.9.9", book))
    topo.connect("sink", "s0")
    deployment = SwiShmemDeployment(
        sim, topo, switches, address_book=book, record_history=True
    )
    deployment.install_nf(nf_class)
    spec = deployment.spec_by_name("hotreg")

    for i in range(12):
        sim.schedule(
            i * 800e-6,
            lambda i=i: deployment.manager("s0").register_write(spec, "hot", i),
        )
    for i in range(200):
        source = sources[i % len(sources)]
        sim.schedule(
            13e-6 + i * 47e-6,
            lambda s=source: s.inject(make_udp_packet(s.ip, "10.0.9.9", 1, 2)),
        )
    sim.run(until=0.1)
    lin = check_history(deployment.history)
    stats = [
        deployment.manager(n).sro.stats_for(spec.group_id)
        for n in deployment.switch_names
    ]
    return ReadResult(
        protocol=spec.consistency.value.upper(),
        local_reads=sum(s.local_reads for s in stats),
        forwarded_reads=sum(s.forwarded_reads for s in stats),
        tail_reads=sum(s.tail_reads for s in stats),
        stale_reads=count_stale_reads(deployment.history),
        linearizability_violations=len(lin.violations),
        packets_delivered=len(sink.received),
    )


def run_experiment():
    return run_protocol(SroReaderNF), run_protocol(EroReaderNF)


def report(sro: ReadResult, ero: ReadResult) -> None:
    print_header(
        "P2",
        "SRO vs ERO data-plane read disposition under concurrent writes",
        "SRO forwards pending reads to the tail (linearizable); ERO always "
        "reads locally (bounded latency, eventual consistency)",
    )
    print_table(
        ["protocol", "local", "forwarded", "at tail", "stale reads",
         "linearizability violations", "delivered"],
        [
            (r.protocol, r.local_reads, r.forwarded_reads, r.tail_reads,
             r.stale_reads, r.linearizability_violations, r.packets_delivered)
            for r in (sro, ero)
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_sro_vs_ero_shape_matches_paper(benchmark):
    sro, ero = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(sro, ero)
    # SRO pays with forwarded reads; ERO never forwards.
    assert sro.forwarded_reads > 0
    assert ero.forwarded_reads == 0
    # SRO stays linearizable; ERO trades that away (stale reads appear).
    assert sro.linearizability_violations == 0
    assert sro.stale_reads == 0
    assert ero.stale_reads > 0
    # Both deliver all traffic (forwarded reads are re-processed, not lost).
    assert sro.packets_delivered == 200
    assert ero.packets_delivered == 200


@pytest.mark.benchmark(group="sro-vs-ero")
def test_benchmark_ero_reads(benchmark):
    benchmark.pedantic(lambda: run_protocol(EroReaderNF), rounds=1, iterations=1)
