"""SRO recovery: snapshot transfer to a rejoining switch (paper section 6.3).

"To recover, we add a new switch to the end of the chain.  The new
switch starts to process writes, but does not replace the tail.  Some
control plane support is needed for the initial data transfer.  The
control plane on one of the switches takes a snapshot of its shared
state, and then uses it to resend the write requests for each value
through the normal data plane protocol.  These writes contain the
sequence number at the time of the snapshot, to prevent overwriting new
values with old ones.  Once the new switch has acknowledged all writes,
it has the latest complete state, and can replace the tail in processing
reads."

:class:`FailoverCoordinator` implements the transfer mechanics:

* the *source* switch (normally the current read tail) snapshots the
  group in its control plane and streams ``SnapshotWrite`` packets to
  the *target* over the data plane;
* the target applies each entry under the sequence-number guard and
  answers with ``SnapshotAck``;
* unacknowledged entries are retransmitted by the source's control
  plane until everything is confirmed, at which point the registered
  completion callback fires (the controller then promotes the target to
  read tail).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.protocols.messages import SnapshotAck, SnapshotWrite

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment, SwiShmemManager

__all__ = ["FailoverCoordinator", "SnapshotTransfer"]

#: Retransmit unacked snapshot entries after this long.
SNAPSHOT_RETRY_TIMEOUT = 2e-3
#: Abandon a transfer after this many full retry rounds.
MAX_SNAPSHOT_ROUNDS = 20

_transfer_ids = itertools.count(1)


@dataclass
class SnapshotTransfer:
    """State of one in-progress snapshot transfer at the source."""

    group_id: int
    source: str
    target: str
    #: Globally unique id echoed on every SnapshotWrite/SnapshotAck of
    #: this transfer.  Transfers are keyed ``(group_id, target)``, so a
    #: superseded transfer's stray acks carry a stale id and are dropped
    #: instead of completing the replacement early.
    transfer_id: int = 0
    entries: Dict[Any, Tuple[Any, int, int]] = field(default_factory=dict)
    unacked: Set[Any] = field(default_factory=set)
    rounds: int = 0
    on_complete: Optional[Callable[[], None]] = None
    #: Invoked with the transfer when it is abandoned (source died or the
    #: retry budget ran out) so the controller can restart the recovery
    #: from another live chain member instead of stranding the target in
    #: catch-up mode forever.
    on_failure: Optional[Callable[["SnapshotTransfer"], None]] = None
    done: bool = False
    failed: bool = False
    #: Causal context rooting this transfer's span subtree (from the
    #: controller's ``controller.snapshot.start`` span).
    trace: Any = None

    @property
    def total_entries(self) -> int:
        return len(self.entries)


class FailoverCoordinator:
    """Deployment-wide snapshot-transfer bookkeeping."""

    def __init__(self, deployment: "SwiShmemDeployment") -> None:
        self.deployment = deployment
        self._transfers: Dict[Tuple[int, str], SnapshotTransfer] = {}
        self.transfers_completed = 0
        self.transfers_failed = 0

    # ------------------------------------------------------------------
    # Source side
    # ------------------------------------------------------------------
    def start_transfer(
        self,
        group_id: int,
        source: str,
        target: str,
        on_complete: Optional[Callable[[], None]] = None,
        on_failure: Optional[Callable[[SnapshotTransfer], None]] = None,
        trace: Any = None,
    ) -> SnapshotTransfer:
        """Snapshot ``group_id`` on ``source`` and replay it to ``target``."""
        transfer = SnapshotTransfer(
            group_id=group_id,
            source=source,
            target=target,
            transfer_id=next(_transfer_ids),
            on_complete=on_complete,
            on_failure=on_failure,
            trace=trace,
        )
        self._transfers[(group_id, target)] = transfer
        source_manager = self.deployment.manager(source)
        # Taking the snapshot is a control-plane operation on the source.
        source_manager.switch.control.submit(
            self._take_snapshot, transfer, label="snapshot-take"
        )
        return transfer

    def _take_snapshot(self, transfer: SnapshotTransfer) -> None:
        source_manager = self.deployment.manager(transfer.source)
        if source_manager.switch.failed:
            self._fail_transfer(transfer)
            return
        snapshot = source_manager.sro.snapshot(transfer.group_id)
        if not snapshot:
            # Nothing to transfer: complete immediately.
            self._complete(transfer)
            return
        for key, value, slot, seq in snapshot:
            transfer.entries[key] = (value, slot, seq)
            transfer.unacked.add(key)
        self._send_round(transfer)

    def _send_round(self, transfer: SnapshotTransfer) -> None:
        if transfer.done or transfer.failed:
            return
        source_manager = self.deployment.manager(transfer.source)
        if source_manager.switch.failed:
            self._fail_transfer(transfer)
            return
        transfer.rounds += 1
        if transfer.rounds > MAX_SNAPSHOT_ROUNDS:
            self._fail_transfer(transfer)
            return
        spec = self.deployment.specs[transfer.group_id]
        switch = source_manager.switch
        flightrec = self.deployment.flight_recorder
        round_ctx = None
        if transfer.trace is not None:
            # One span per retransmit round; the individual SnapshotWrite
            # packets all carry it (per-entry spans would swamp the ring).
            round_ctx = source_manager.causal.child(transfer.trace)
            if flightrec.enabled:
                flightrec.record(
                    round_ctx,
                    "failover.snapshot.round",
                    transfer.source,
                    self.deployment.sim.now,
                    group=transfer.group_id,
                    target=transfer.target,
                    entries=len(transfer.unacked),
                    round=transfer.rounds,
                )
        for key in sorted(transfer.unacked, key=repr):
            value, slot, seq = transfer.entries[key]
            message = SnapshotWrite(
                group=transfer.group_id,
                key=key,
                value=value,
                seq=seq,
                slot=slot,
                source=transfer.source,
                key_bytes=spec.key_bytes,
                value_bytes=spec.value_bytes,
                transfer_id=transfer.transfer_id,
                trace=round_ctx,
            )
            packet = Packet(
                swishmem=SwiShmemHeader(
                    op=SwiShmemOp.SNAPSHOT_WRITE,
                    register_group=transfer.group_id,
                    dst_node=transfer.target,
                ),
                swishmem_payload=message,
                trace=round_ctx,
            )
            switch.forward_to_node(packet, transfer.target)
        switch.control.set_timer(
            SNAPSHOT_RETRY_TIMEOUT, self._retry_round, transfer, label="snapshot-retry"
        )

    def _retry_round(self, transfer: SnapshotTransfer) -> None:
        if transfer.done or transfer.failed:
            return
        if not transfer.unacked:
            self._complete(transfer)
            return
        self._send_round(transfer)

    # ------------------------------------------------------------------
    # Target side
    # ------------------------------------------------------------------
    def handle_snapshot_write(self, manager: "SwiShmemManager", message: SnapshotWrite) -> None:
        """Apply a replayed entry at the recovering switch; always ack.

        Acking even when the guard rejects the value matters: rejection
        means the target already holds something newer, so the source
        must stop retransmitting.
        """
        manager.sro.apply_snapshot_write(
            message.key, message.value, message.slot, message.seq, message.group
        )
        ack_ctx = None
        if message.trace is not None:
            ack_ctx = manager.causal.child(message.trace)
            flightrec = self.deployment.flight_recorder
            if flightrec.enabled:
                flightrec.record(
                    ack_ctx,
                    "failover.snapshot.apply",
                    manager.switch.name,
                    self.deployment.sim.now,
                    group=message.group,
                    key=message.key,
                    seq=message.seq,
                    slot=message.slot,
                )
        ack = SnapshotAck(
            group=message.group,
            key=message.key,
            seq=message.seq,
            source=manager.switch.name,
            key_bytes=message.key_bytes,
            transfer_id=message.transfer_id,
            trace=ack_ctx,
        )
        packet = Packet(
            swishmem=SwiShmemHeader(
                op=SwiShmemOp.SNAPSHOT_ACK,
                register_group=message.group,
                dst_node=message.source,
            ),
            swishmem_payload=ack,
            trace=ack_ctx,
        )
        manager.switch.forward_to_node(packet, message.source)

    def handle_snapshot_ack(self, manager: "SwiShmemManager", message: SnapshotAck) -> None:
        transfer = self._transfers.get((message.group, message.source))
        if transfer is None or transfer.done or transfer.failed:
            return
        if message.transfer_id != transfer.transfer_id:
            # Stray ack from a superseded transfer to the same target —
            # acknowledging *its* entries says nothing about ours.
            return
        transfer.unacked.discard(message.key)
        if not transfer.unacked:
            self._complete(transfer)

    # ------------------------------------------------------------------
    def _complete(self, transfer: SnapshotTransfer) -> None:
        if transfer.done:
            return
        transfer.done = True
        self.transfers_completed += 1
        flightrec = self.deployment.flight_recorder
        if flightrec.enabled and transfer.trace is not None:
            source_manager = self.deployment.manager(transfer.source)
            flightrec.record(
                source_manager.causal.child(transfer.trace),
                "failover.transfer.complete",
                transfer.source,
                self.deployment.sim.now,
                group=transfer.group_id,
                target=transfer.target,
                entries=transfer.total_entries,
                rounds=transfer.rounds,
            )
        if transfer.on_complete is not None:
            transfer.on_complete()

    def _fail_transfer(self, transfer: SnapshotTransfer) -> None:
        if transfer.failed or transfer.done:
            return
        transfer.failed = True
        self.transfers_failed += 1
        if transfer.on_failure is not None:
            transfer.on_failure(transfer)

    def fail_transfers_from(self, source: str) -> None:
        """Abandon every live transfer sourced at ``source``.

        Called by the controller when it declares ``source`` failed.
        This matters because a dead switch's control CPU silently drops
        submitted ops and armed timers — without this hook a transfer
        whose source died between scheduling and execution would strand
        its target in catch-up mode with no failure callback.
        """
        for transfer in list(self._transfers.values()):
            if transfer.source == source and not transfer.done and not transfer.failed:
                self._fail_transfer(transfer)

    def transfer_for(self, group_id: int, target: str) -> Optional[SnapshotTransfer]:
        return self._transfers.get((group_id, target))
