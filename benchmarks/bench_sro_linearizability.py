"""[P1] SRO: per-register linearizability and write cost vs chain length.

Paper section 6.1: "SRO provides per-register linearizability, because
writes are blocking and reads concurrent to writes are processed by the
tail node.  Its write throughput is limited by the need to send packets
through the control plane."

The experiment runs concurrent writers and readers over chains of
length 2..5, verifies every per-key history with the Wing-Gong checker,
and measures write commit latency — which must grow with chain length
and be dominated by the control-plane hop (the paper's stated cost).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.analysis.linearizability import check_history
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.obs.flightrec import FlightRecorder
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.control import DEFAULT_OP_LATENCY
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_us, print_header, print_table


@dataclass
class ChainResult:
    chain_length: int
    writes: int
    reads: int
    mean_write_latency: float
    linearizable_keys: int
    checked_keys: int
    violations: int
    #: Full evidence for any violation: per-operation intervals plus the
    #: causal flight-recorder timeline (empty when linearizable).
    explanation: str = ""


def run_chain(length: int, seed: int = 77, keys: int = 4, writes_per_key: int = 6) -> ChainResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), length)
    flightrec = FlightRecorder()
    deployment = SwiShmemDeployment(
        sim, topo, switches, record_history=True, flight_recorder=flightrec
    )
    spec = deployment.declare(RegisterSpec("reg", Consistency.SRO, capacity=64))
    # concurrent writers on rotating switches, readers interleaved
    for k in range(keys):
        for i in range(writes_per_key):
            writer = deployment.manager(f"s{(k + i) % length}")
            sim.schedule(
                i * 120e-6 + k * 13e-6,
                lambda w=writer, k=k, i=i: w.register_write(spec, f"key{k}", i),
            )
    for k in range(keys):
        for i in range(writes_per_key * 3):
            reader = deployment.manager(f"s{i % length}")
            sim.schedule(
                5e-6 + i * 37e-6 + k * 7e-6,
                lambda r=reader, k=k: _read(r, spec, f"key{k}"),
            )
    sim.run(until=0.2)
    report = check_history(deployment.history, flight_recorder=flightrec)
    stats = [
        deployment.manager(name).sro.stats_for(spec.group_id)
        for name in deployment.switch_names
    ]
    committed = sum(s.writes_committed for s in stats)
    total_latency = sum(s.write_latency_sum for s in stats)
    reads = sum(s.local_reads + s.tail_reads + s.forwarded_reads for s in stats)
    return ChainResult(
        chain_length=length,
        writes=committed,
        reads=reads,
        mean_write_latency=total_latency / committed if committed else 0.0,
        linearizable_keys=report.linearizable_keys,
        checked_keys=report.checked_keys,
        violations=len(report.violations),
        explanation=report.explain() if not report.ok else "",
    )


def _read(manager, spec, key):
    from repro.core.registers import ReadForwarded

    try:
        manager.register_read(spec, key, None)
    except ReadForwarded:
        pass


def run_experiment() -> List[ChainResult]:
    return [run_chain(length) for length in (2, 3, 4, 5)]


def report(results: List[ChainResult]) -> None:
    print_header(
        "P1",
        "SRO linearizability and write cost vs chain length",
        "SRO is linearizable; write cost dominated by the control-plane hop "
        "and grows with chain length",
    )
    print_table(
        ["chain", "writes", "reads", "mean write latency", "linearizable keys", "violations"],
        [
            (
                r.chain_length,
                r.writes,
                r.reads,
                fmt_us(r.mean_write_latency),
                f"{r.linearizable_keys}/{r.checked_keys}",
                r.violations,
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_sro_linearizable_at_every_chain_length(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    for r in results:
        # On failure the message is the full post-mortem: each key's
        # operation intervals plus the causal timeline of its writes.
        assert r.violations == 0, (
            f"chain {r.chain_length}: {r.violations} violation(s)\n{r.explanation}"
        )
        assert r.writes == 24  # 4 keys x 6 writes all committed

    # Write latency includes at least the writer's control-plane op and
    # grows monotonically with chain length.
    latencies = [r.mean_write_latency for r in results]
    assert all(lat > DEFAULT_OP_LATENCY for lat in latencies)
    assert latencies == sorted(latencies)


@pytest.mark.benchmark(group="sro")
def test_benchmark_sro_chain3(benchmark):
    benchmark.pedantic(lambda: run_chain(3), rounds=1, iterations=1)
