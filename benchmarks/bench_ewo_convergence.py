"""[P3] EWO convergence under packet loss, vs sync period.

Paper section 6.2: asynchronous updates "may get lost"; instead of
data-plane retransmission, "switches periodically synchronize each EWO
register from the data plane" — loss only delays convergence by sync
rounds, and a shorter period buys faster convergence with more
bandwidth.

The experiment writes a burst of counter increments across a 3-switch
group at varying link-loss rates and sync periods, then measures the
time from the last write until all replicas agree, plus the sync
bandwidth spent.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List, Optional

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.analysis.metrics import convergence_time
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_us, print_header, print_table


@dataclass
class ConvergenceResult:
    loss_rate: float
    sync_period: float
    convergence: Optional[float]
    sync_packets: int


def run_point(
    loss_rate: float, sync_period: float, seed: int = 5, writes: int = 60
) -> ConvergenceResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(
        topo, lambda n: PisaSwitch(n, sim), 3, loss_rate=loss_rate
    )
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=sync_period)
    spec = deployment.declare(
        RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=64)
    )
    for i in range(writes):
        writer = deployment.manager(f"s{i % 3}")
        sim.schedule(i * 10e-6, lambda w=writer, i=i: w.register_increment(spec, f"k{i % 8}", 1))
    sim.run(until=writes * 10e-6)

    expected: dict = {}
    for i in range(writes):
        key = f"k{i % 8}"
        expected[key] = expected.get(key, 0) + 1

    def converged() -> bool:
        return all(state == expected for state in deployment.ewo_states(spec))

    elapsed = convergence_time(sim, converged, interval=50e-6, timeout=1.0)
    sync_packets = sum(
        deployment.manager(n).ewo.stats_for(spec.group_id).sync_packets_sent
        for n in deployment.switch_names
    )
    return ConvergenceResult(loss_rate, sync_period, elapsed, sync_packets)


def run_experiment() -> List[ConvergenceResult]:
    results = []
    for loss in (0.0, 0.02, 0.10, 0.30):
        for period in (0.5e-3, 1e-3, 4e-3):
            results.append(run_point(loss, period))
    return results


def report(results: List[ConvergenceResult]) -> None:
    print_header(
        "P3",
        "EWO convergence time vs loss rate and sync period",
        "periodic data-plane sync makes convergence robust to loss; "
        "convergence delay is bounded by sync rounds, not retransmission",
    )
    print_table(
        ["loss", "sync period", "convergence after last write", "sync packets"],
        [
            (
                f"{r.loss_rate * 100:.0f}%",
                fmt_us(r.sync_period),
                fmt_us(r.convergence) if r.convergence is not None else "NEVER",
                r.sync_packets,
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_ewo_convergence_shape_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    assert all(r.convergence is not None for r in results), "some point never converged"
    # Loss-free convergence is broadcast-fast (no sync round needed).
    lossless = [r for r in results if r.loss_rate == 0.0]
    assert all(r.convergence < 1e-3 for r in lossless)
    # Under heavy loss, convergence is sync-round bound: the faster sync
    # period converges sooner (compare 0.5 ms vs 4 ms at 30% loss).
    heavy = {r.sync_period: r.convergence for r in results if r.loss_rate == 0.30}
    assert heavy[0.5e-3] < heavy[4e-3]
    # And convergence degrades monotonically-ish with loss for a fixed
    # period (allow equal when broadcasts happened to survive).
    per_period = {}
    for r in results:
        per_period.setdefault(r.sync_period, []).append(r)
    for period, rows in per_period.items():
        rows.sort(key=lambda r: r.loss_rate)
        assert rows[0].convergence <= rows[-1].convergence


@pytest.mark.benchmark(group="ewo-convergence")
def test_benchmark_convergence_lossy(benchmark):
    benchmark.pedantic(lambda: run_point(0.10, 1e-3), rounds=1, iterations=1)
