"""Discrete-event simulation kernel.

Everything in the reproduction — links, switches, control planes,
replication protocols, traffic generators — runs on top of this kernel.
The kernel owns a single virtual clock (in seconds, as a float) and a
priority queue of pending events.  An *event* is a plain callback scheduled
for some future simulation time.

Two properties matter for faithfulness to the paper:

* **Determinism.**  Given the same seed and the same schedule of calls,
  a simulation always produces the same history.  Ties in event time are
  broken by a monotonically increasing sequence number, so insertion order
  is preserved and no wall-clock nondeterminism can leak in.

* **Atomic processing** (paper section 2).  A PISA switch processes each
  packet atomically: all register updates made while handling one packet
  are visible to the next packet as a unit.  In this kernel that property
  falls out naturally — one event runs to completion before the next
  begins — but switch code additionally asserts that it never yields
  mid-packet (see ``repro.switch.pisa``).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    has already been stopped, or cancelling an event twice.
    """


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry: orders by (time, sequence)."""

    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel a pending
    event (e.g. a retransmission timer that is no longer needed).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Cancel this event; it will be skipped when its time arrives.

        Cancelling an event that already fired is a no-op rather than an
        error, because timers routinely race with the work they guard.
        """
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {self.label or self.callback!r} {state}>"


class Simulator:
    """The discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock unit is seconds.  All component delays in the reproduction
    (link latency, pipeline service time, control-plane processing) are
    expressed in seconds so that bandwidth and rate arithmetic stays in
    SI units.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Optional dispatch interceptor (see ``repro.obs.profiler``).
        #: When set, events run through ``profiler.dispatch(event)`` so
        #: wall-clock cost can be attributed per handler label.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.  Returns the
        :class:`Event`, which may be cancelled until it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        event = Event(self._now + delay, callback, args, label=label)
        heapq.heappush(self._queue, _QueueEntry(event.time, next(self._seq), event))
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, *args, label=label)

    def call_soon(self, callback: Callable[..., None], *args: Any, label: str = "") -> Event:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or stopped.

        Returns the simulation time at which execution stopped.  If
        ``until`` is given, the clock is advanced to exactly ``until``
        even when the queue drains earlier, so periodic measurements can
        rely on a full window having elapsed.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                entry = self._queue[0]
                if until is not None and entry.time > until:
                    break
                heapq.heappop(self._queue)
                event = entry.event
                if event.cancelled:
                    continue
                self._now = event.time
                if self.profiler is None:
                    event.callback(*event.args)
                else:
                    self.profiler.dispatch(event)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.event.cancelled:
                continue
            self._now = entry.event.time
            if self.profiler is None:
                entry.event.callback(*entry.event.args)
            else:
                self.profiler.dispatch(entry.event)
            self.events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Stop a running simulation after the current event completes."""
        self._stopped = True

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for entry in self._queue if not entry.event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        for entry in sorted(self._queue):
            if not entry.event.cancelled:
                return entry.time
        return None


class Process:
    """A named periodic activity pinned to a simulator.

    Many components in the reproduction are periodic: the EWO
    packet-generator sync (paper section 6.2), controller heartbeats
    (section 6.3), rate-limiter window resets (section 4.2).  ``Process``
    wraps the schedule/reschedule dance and supports clean teardown, which
    matters for fault injection (a dead switch must stop synchronizing).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        body: Callable[[], None],
        name: str = "process",
        jitter: Callable[[], float] = None,
        start_after: float = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"process period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.body = body
        self.name = name
        self.jitter = jitter
        self._event: Optional[Event] = None
        self._alive = False
        self._ticks = 0
        first_delay = period if start_after is None else start_after
        self._first_delay = first_delay

    @property
    def ticks(self) -> int:
        """How many times the body has run."""
        return self._ticks

    @property
    def alive(self) -> bool:
        return self._alive

    def start(self) -> "Process":
        if self._alive:
            return self
        self._alive = True
        self._event = self.sim.schedule(self._first_delay, self._tick, label=self.name)
        return self

    def stop(self) -> None:
        self._alive = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._alive:
            return
        self._ticks += 1
        self.body()
        if not self._alive:  # body may have stopped us
            return
        delay = self.period
        if self.jitter is not None:
            delay = max(0.0, delay + self.jitter())
        self._event = self.sim.schedule(delay, self._tick, label=self.name)


def format_time(t: float) -> str:
    """Human-readable simulation timestamp (microsecond precision)."""
    return f"{t * 1e6:,.3f}us"
