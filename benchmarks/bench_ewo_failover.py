"""[F2] EWO failover robustness (paper section 6.3).

"The synchronization protocol is inherently robust to switch and link
failures.  If a switch fails while broadcasting its updates, any switch
that did receive the update can then synchronize the other switches …
other than removing the failed switch from the multicast group, no
explicit failover protocol is needed.  Recovery is equally simple: we
add the new switch … and wait for the first periodic synchronization."

The experiment kills a replica *mid-broadcast* (its update reached only
a subset of peers), verifies the survivors converge to a state that
includes every increment any switch ever observed, and measures how
long a wiped, recovered switch takes to refill — which must be on the
order of one sync period.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List, Optional

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.analysis.metrics import convergence_time, replica_divergence
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_us, print_header, print_table


@dataclass
class EwoFailoverResult:
    scenario: str
    survivors_converged: bool
    survivor_value: int
    writer_increments_preserved: bool
    refill_time: Optional[float]
    sync_period: float


def run_point(sync_period: float, seed: int = 12) -> EwoFailoverResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    # partial loss makes "update reached only some peers" likely
    switches = build_full_mesh(
        topo, lambda n: PisaSwitch(n, sim), 4, loss_rate=0.3
    )
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=sync_period)
    spec = deployment.declare(
        RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=32)
    )
    # s1 is the doomed writer: it increments, then dies immediately after
    # its last broadcast (which 30% loss will have partially delivered).
    for i in range(20):
        sim.schedule(i * 20e-6, lambda: deployment.manager("s1").register_increment(spec, "k", 1))
    for i in range(30):
        sim.schedule(3e-6 + i * 15e-6, lambda i=i: deployment.manager(f"s{(i % 2) * 2}").register_increment(spec, "k", 1))
    kill_at = 20 * 20e-6 + 1e-6

    def kill():
        deployment.controller.note_failure_time("s1")
        deployment.fail_switch("s1")

    sim.schedule_at(kill_at, kill)
    sim.run(until=kill_at + 1e-6)

    total_expected = 50  # all increments applied locally before the kill

    def survivors_agree() -> bool:
        states = deployment.ewo_states(spec)
        return (
            replica_divergence(states) == 0
            and all(state.get("k") == total_expected for state in states)
        )

    converged = convergence_time(sim, survivors_agree, interval=100e-6, timeout=1.0)
    states = deployment.ewo_states(spec)
    survivor_value = states[0].get("k", 0)
    # the dead writer's own slot must have survived on its peers
    writer_slot_preserved = all(
        manager.ewo.groups[spec.group_id].vector_for("k")[1] == 20
        for name, manager in deployment.managers.items()
        if name != "s1" and not manager.switch.failed
    )
    # recovery: wipe + rejoin, measure refill
    deployment.controller.recover_switch("s1")
    refill_start = sim.now

    def refilled() -> bool:
        return deployment.manager("s1").ewo.local_state(spec.group_id).get("k") == total_expected

    refill = convergence_time(sim, refilled, interval=100e-6, timeout=2.0)
    return EwoFailoverResult(
        scenario=f"kill writer mid-broadcast @30% loss",
        survivors_converged=converged is not None,
        survivor_value=survivor_value,
        writer_increments_preserved=writer_slot_preserved,
        refill_time=refill,
        sync_period=sync_period,
    )


def run_experiment() -> List[EwoFailoverResult]:
    return [run_point(p) for p in (0.5e-3, 1e-3, 2e-3)]


def report(results: List[EwoFailoverResult]) -> None:
    print_header(
        "F2",
        "EWO failover: kill a replica mid-broadcast, then recover it",
        "no explicit failover protocol needed; survivors gossip the dead "
        "switch's updates; a recovered switch refills in ~one sync round",
    )
    print_table(
        ["sync period", "survivors converged", "value (exp 50)",
         "dead writer's increments kept", "refill time"],
        [
            (
                fmt_us(r.sync_period),
                r.survivors_converged,
                r.survivor_value,
                r.writer_increments_preserved,
                fmt_us(r.refill_time) if r.refill_time is not None else "NEVER",
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_ewo_failover_shape_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    for r in results:
        assert r.survivors_converged
        assert r.survivor_value == 50
        assert r.writer_increments_preserved
        assert r.refill_time is not None
        # refill is sync-round bound: a handful of periods at worst
        # (gossip picks random targets, so a couple of rounds may miss)
        assert r.refill_time < 10 * r.sync_period + 5e-3


@pytest.mark.benchmark(group="failover")
def test_benchmark_ewo_failover(benchmark):
    benchmark.pedantic(lambda: run_point(1e-3), rounds=1, iterations=1)
