"""SwiShmem reproduction: distributed shared state for programmable switches.

This package reproduces *SwiShmem: Distributed Shared State Abstractions
for Programmable Switches* (Zeno, Ports, Nelson, Silberstein — HotNets
2020) as a complete, simulation-backed Python library:

* ``repro.sim`` — discrete-event kernel (clock, scheduler, seeded RNG);
* ``repro.net`` — packets, lossy links, topologies, ECMP routing,
  multicast;
* ``repro.switch`` — the PISA switch model: pipeline, registers, tables,
  meters, control plane, packet generator, ~10 MB memory budget;
* ``repro.core`` — the paper's contribution: SRO/ERO/EWO shared
  registers, the per-switch runtime, the deployment ("one big switch")
  facade, the compiler/profiler, and the directory-service extension;
* ``repro.protocols`` — the replication protocols: chain replication
  with pending bits and control-plane write buffering, CRAQ-style read
  forwarding, EWO broadcast + periodic sync, failover and recovery;
* ``repro.crdt`` / ``repro.sketch`` — CRDTs (G/PN counters, LWW,
  OR-Set) and sketches (count-min, Bloom, heavy hitters);
* ``repro.nf`` — the six Table 1 network functions;
* ``repro.workload`` — deterministic traffic generation;
* ``repro.analysis`` — history recording, a linearizability checker,
  and measurement collectors.

Quickstart::

    from repro import (
        Simulator, SeededRng, Topology, build_full_mesh, PisaSwitch,
        SwiShmemDeployment, RegisterSpec, Consistency,
    )

    sim = Simulator()
    topo = Topology(sim, SeededRng(seed=7))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    deployment = SwiShmemDeployment(sim, topo, switches)
    counters = deployment.declare(
        RegisterSpec("hits", Consistency.EWO)
    )
"""

from repro.analysis import (
    HistoryRecorder,
    LinearizabilityReport,
    RateMeter,
    SampleSeries,
    check_history,
    check_key_linearizable,
    convergence_time,
    count_stale_reads,
    replica_divergence,
)
from repro.core import (
    AccessProfiler,
    ChainDescriptor,
    Consistency,
    Decision,
    DirectoryService,
    EwoMode,
    FetchAdd,
    PacketContext,
    ReadForwarded,
    RegisterHandle,
    RegisterSpec,
    SingleSwitchProgram,
    SwiShmemDeployment,
    SwiShmemManager,
    distribute,
    recommend_consistency,
)
from repro.crdt import GCounter, LwwRegister, ORSet, PNCounter, Timestamp
from repro.net import (
    AddressBook,
    EndHost,
    FiveTuple,
    Packet,
    RoutingTable,
    TcpFlags,
    Topology,
    build_chain,
    build_full_mesh,
    build_leaf_spine,
    build_nf_cluster,
    make_tcp_packet,
    make_udp_packet,
)
from repro.sim import SeededRng, Simulator, Tracer
from repro.sketch import BloomFilter, CountMinSketch, HeavyHitterTracker
from repro.switch import (
    DEFAULT_SWITCH_MEMORY_BYTES,
    MemoryBudget,
    OutOfSwitchMemory,
    PisaSwitch,
)

__version__ = "1.0.0"

__all__ = [
    "HistoryRecorder",
    "LinearizabilityReport",
    "RateMeter",
    "SampleSeries",
    "check_history",
    "check_key_linearizable",
    "convergence_time",
    "count_stale_reads",
    "replica_divergence",
    "AccessProfiler",
    "ChainDescriptor",
    "Consistency",
    "Decision",
    "DirectoryService",
    "EwoMode",
    "FetchAdd",
    "PacketContext",
    "ReadForwarded",
    "RegisterHandle",
    "RegisterSpec",
    "SingleSwitchProgram",
    "SwiShmemDeployment",
    "SwiShmemManager",
    "distribute",
    "recommend_consistency",
    "GCounter",
    "LwwRegister",
    "ORSet",
    "PNCounter",
    "Timestamp",
    "AddressBook",
    "EndHost",
    "FiveTuple",
    "Packet",
    "RoutingTable",
    "TcpFlags",
    "Topology",
    "build_chain",
    "build_full_mesh",
    "build_leaf_spine",
    "build_nf_cluster",
    "make_tcp_packet",
    "make_udp_packet",
    "SeededRng",
    "Simulator",
    "Tracer",
    "BloomFilter",
    "CountMinSketch",
    "HeavyHitterTracker",
    "DEFAULT_SWITCH_MEMORY_BYTES",
    "MemoryBudget",
    "OutOfSwitchMemory",
    "PisaSwitch",
    "__version__",
]
