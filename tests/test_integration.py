"""Cross-module integration tests: full NF stacks, multipath fabrics,
failure + recovery end-to-end, and deployment-level determinism."""

from __future__ import annotations

import pytest

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.net.topology import Topology, build_leaf_spine
from repro.nf.firewall import FirewallNF
from repro.nf.loadbalancer import LoadBalancerNF
from repro.nf.nat import NatNF
from repro.nf.ratelimiter import RateLimiterNF
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch
from repro.workload.flows import FlowGenerator

from tests.nfworld import build_nf_world

VIP = "100.0.0.100"


class TestStackedNfs:
    """Firewall + rate limiter stacked on the same switches."""

    def test_two_nfs_coexist(self):
        world = build_nf_world()
        world.deployment.install_nf(FirewallNF)
        world.deployment.install_nf(RateLimiterNF, limit_bps=1e9)
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        assert len(server.received) == 1
        assert len(client.received) == 1  # SYN|ACK allowed back

    def test_firewall_drop_prevents_limiter_count(self):
        world = build_nf_world()
        world.deployment.install_nf(FirewallNF)
        limiters = world.deployment.install_nf(RateLimiterNF, limit_bps=1e9)
        client, server = world.clients[0], world.servers[0]
        # unsolicited inbound: firewall drops before the limiter sees it
        server.inject(make_tcp_packet(server.ip, client.ip, 80, 1000, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        usage = sum(sum(l.bytes_admitted.values()) for l in limiters)
        assert usage == 0


class TestLeafSpineMultipath:
    """The section 3.2 motivation: flows cross different switches via
    ECMP, so per-connection state must be global."""

    def _build(self, shared_state: bool):
        sim = Simulator()
        topo = Topology(sim, SeededRng(21))
        book = AddressBook()
        hosts = {"n": 0}

        def host_factory(name):
            hosts["n"] += 1
            responder = name.startswith("h1")  # server side under leaf1+
            ip = f"10.0.{name[1]}.{hosts['n']}"
            return EndHost(name, sim, ip, book, responder=False)

        leaves, spines, host_list = build_leaf_spine(
            topo,
            lambda n: PisaSwitch(n, sim),
            host_factory,
            leaves=2,
            spines=2,
            hosts_per_leaf=2,
        )
        switches = leaves + spines
        deployment = SwiShmemDeployment(sim, topo, switches, address_book=book)
        dips = [h.ip for h in host_list if h.name.startswith("h1")]
        book.register(VIP, host_list[-1].name)  # VIP parks behind leaf1
        deployment.install_nf(
            LoadBalancerNF, vip=VIP, dips=dips, shared_state=shared_state
        )
        clients = [h for h in host_list if h.name.startswith("h0")]
        servers = [h for h in host_list if h.name.startswith("h1")]
        return sim, deployment, clients, servers

    def _run_flows(self, sim, deployment, clients, servers, flows=30):
        sent = []
        for i in range(flows):
            client = clients[i % len(clients)]
            port = 6000 + i
            client.inject(make_tcp_packet(client.ip, VIP, port, 80, flags=TcpFlags.SYN))
            sent.append((client.ip, port))
        sim.run(until=0.3)
        # follow-up packets for every flow
        for client_ip, port in sent:
            client = next(c for c in clients if c.ip == client_ip)
            for _ in range(3):
                client.inject(make_tcp_packet(client.ip, VIP, port, 80, payload_size=10))
        sim.run(until=0.8)
        assignments = {}
        violations = 0
        for server in servers:
            for record in server.received:
                tup = record.packet.five_tuple()
                key = (tup.src_ip, tup.src_port)
                previous = assignments.get(key)
                if previous is not None and previous != server.ip:
                    violations += 1
                assignments[key] = server.ip
        return violations, assignments

    def test_shared_state_preserves_pcc_under_multipath(self):
        sim, deployment, clients, servers = self._build(shared_state=True)
        violations, assignments = self._run_flows(sim, deployment, clients, servers)
        assert violations == 0
        assert len(assignments) > 0

    def test_flows_actually_cross_multiple_switches(self):
        sim, deployment, clients, servers = self._build(shared_state=True)
        self._run_flows(sim, deployment, clients, servers)
        spine_rx = [deployment.managers[n].switch.stats.rx_packets for n in ("spine0", "spine1")]
        assert all(rx > 0 for rx in spine_rx)  # ECMP used both spines


class TestEndToEndFailureRecovery:
    def test_nat_service_continues_through_failure_and_recovery(self):
        world = build_nf_world()
        world.book.register("100.0.0.1", "egress")
        world.deployment.install_nf(NatNF, nat_ip="100.0.0.1")
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        victim = world.cluster[1].name
        world.deployment.controller.note_failure_time(victim)
        world.deployment.fail_switch(victim)
        world.sim.run(until=0.15)
        # new connection during the outage
        client.inject(make_tcp_packet(client.ip, server.ip, 2222, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.3)
        # recover and keep serving
        world.deployment.controller.recover_switch(victim)
        world.sim.run(until=0.6)
        client.inject(make_tcp_packet(client.ip, server.ip, 3333, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.8)
        syn_count = sum(
            1 for r in server.received if r.packet.tcp.flags & TcpFlags.SYN
        )
        assert syn_count == 3
        # the recovered switch holds the full NAT table again
        spec = world.deployment.spec_by_name("nat_table")
        stores = world.deployment.sro_stores(spec)
        assert all(store == stores[0] for store in stores)
        assert len(stores[0]) == 6  # 3 connections x (fwd + rev)


class TestDeterminism:
    def _run_once(self, seed: int):
        world = build_nf_world(seed=seed)
        world.deployment.install_nf(FirewallNF)
        generator = FlowGenerator(
            world.sim,
            world.clients,
            world.server_ips(),
            world.rng,
            flow_rate=3000,
            data_packets=3,
        )
        generator.start(duration=0.02)
        world.sim.run(until=0.1)
        spec = world.deployment.spec_by_name("fw_conntrack")
        deliveries = tuple(len(s.received) for s in world.servers)
        store = tuple(sorted(map(repr, world.deployment.sro_stores(spec)[0].items())))
        return deliveries, store, world.sim.events_processed

    def test_identical_seed_identical_world(self):
        assert self._run_once(42) == self._run_once(42)

    def test_different_seed_different_world(self):
        assert self._run_once(42) != self._run_once(43)


class TestMemoryPressure:
    def test_register_groups_respect_switch_budget(self):
        sim = Simulator()
        topo = Topology(sim, SeededRng(1))
        from repro.net.topology import build_full_mesh
        from repro.switch.memory import OutOfSwitchMemory

        switches = build_full_mesh(
            topo, lambda n: PisaSwitch(n, sim, memory_bytes=64 * 1024), 2
        )
        deployment = SwiShmemDeployment(sim, topo, switches)
        deployment.declare(RegisterSpec("fits", Consistency.SRO, capacity=1024))
        with pytest.raises(OutOfSwitchMemory):
            deployment.declare(
                RegisterSpec("too-big", Consistency.SRO, capacity=100_000)
            )

    def test_pending_slot_sharing_reduces_footprint(self):
        sim = Simulator()
        topo = Topology(sim, SeededRng(1))
        from repro.net.topology import build_full_mesh

        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 2)
        deployment = SwiShmemDeployment(sim, topo, switches)
        before = switches[0].memory.used_bytes
        deployment.declare(
            RegisterSpec("dedicated", Consistency.SRO, capacity=4096)
        )
        dedicated = switches[0].memory.used_bytes - before
        before = switches[0].memory.used_bytes
        deployment.declare(
            RegisterSpec("shared", Consistency.SRO, capacity=4096, pending_slots=64)
        )
        shared = switches[0].memory.used_bytes - before
        assert shared < dedicated
