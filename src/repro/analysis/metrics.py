"""Measurement collectors shared by the experiments.

Small, dependency-free statistics helpers: latency/size samples with
percentiles, windowed rate meters, and staleness/convergence probes for
eventually consistent state.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "SampleSeries",
    "RateMeter",
    "convergence_time",
    "count_stale_reads",
    "replica_divergence",
]


class SampleSeries:
    """A series of numeric samples with summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._samples.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    @property
    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / (len(self._samples) - 1))

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self._samples:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(p / 100 * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.p50,
            "p99": self.p99,
            "max": self.maximum,
        }

    def samples(self) -> List[float]:
        return list(self._samples)


class RateMeter:
    """Counts events against elapsed simulation time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.events = 0
        self.units = 0.0
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    def mark(self, now: float, units: float = 1.0) -> None:
        if self._start is None:
            self._start = now
        self._end = now
        self.events += 1
        self.units += units

    def rate(self, window: Optional[float] = None) -> float:
        """Events per second over the observed (or given) window."""
        if self._start is None or self._end is None:
            return 0.0
        elapsed = window if window is not None else (self._end - self._start)
        if elapsed <= 0:
            return 0.0
        return self.events / elapsed

    def unit_rate(self, window: Optional[float] = None) -> float:
        """Units (e.g. bytes) per second."""
        if self._start is None or self._end is None:
            return 0.0
        elapsed = window if window is not None else (self._end - self._start)
        if elapsed <= 0:
            return 0.0
        return self.units / elapsed


def count_stale_reads(recorder, group: Optional[int] = None, key: Any = None) -> int:
    """Stale reads in a recorded history: a completed read returning a
    value older than one already returned by an earlier-completed read
    of the same (group, key).

    This is the ERO/EWO inconsistency metric (experiment P2): it counts
    user-visible time-travel, which linearizable protocols must never
    exhibit.  Values must be mutually comparable per key (the recorders
    in this repo write monotone integers in the experiments that use
    this).
    """
    floors: Dict[Any, Any] = {}
    stale = 0
    ops = sorted(
        (op for op in recorder.operations() if op.complete and op.kind == "read"),
        key=lambda op: op.completed_at,
    )
    for op in ops:
        if group is not None and op.group != group:
            continue
        if key is not None and op.key != key:
            continue
        if op.value is None:
            continue
        marker = (op.group, repr(op.key))
        floor = floors.get(marker)
        if floor is not None and op.value < floor:
            stale += 1
        else:
            floors[marker] = op.value
    return stale


def replica_divergence(states: Sequence[Dict[Any, Any]]) -> int:
    """How many keys disagree across a set of replica state dicts."""
    all_keys = set()
    for state in states:
        all_keys.update(state.keys())
    divergent = 0
    for key in all_keys:
        values = {repr(state.get(key)) for state in states}
        if len(values) > 1:
            divergent += 1
    return divergent


def convergence_time(
    sim,
    probe: Callable[[], bool],
    interval: float,
    timeout: float,
) -> Optional[float]:
    """Run the simulator until ``probe()`` is True; return elapsed time.

    Polls every ``interval`` simulated seconds; returns None if the
    probe never fires within ``timeout``.  Used by the EWO convergence
    experiments ("how long after the last write until all replicas
    agree").
    """
    start = sim.now
    deadline = start + timeout
    while sim.now < deadline:
        next_stop = min(sim.now + interval, deadline)
        sim.run(until=next_stop)
        if probe():
            return sim.now - start
    return None
