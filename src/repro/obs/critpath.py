"""Critical-path latency attribution over flight-recorder span trees.

The metrics layer can say *how slow* a committed write was (the
``sro.write_commit_latency_seconds`` histogram); this module says
*why*.  Every committed SRO write leaves a causal span chain in the
:class:`~repro.obs.flightrec.FlightRecorder` — initiate, one send per
attempt, head sequencing, per-hop apply/forward, ack fan-out, commit —
and walking the parent links back from the ``sro.write.commit`` span
recovers the *blocking* critical path, retries and backoff gaps
included.  :class:`CriticalPathAnalyzer` attributes every nanosecond of
the end-to-end latency of each such write to a small fixed taxonomy of
causes (:data:`CAUSES`):

* ``link_propagation`` — time on the wire between switches (the part of
  a cross-node hop exceeding one pipeline pass);
* ``switch_pipeline`` — data-plane service time (one pipeline pass per
  hop, plus zero-width protocol steps on a node);
* ``event_queue`` — control-plane punt and CPU queue residency between
  a write's initiation and its first send;
* ``pending_wait`` — reads detoured to the tail because a pending bit
  was set (realized on ``sro.read.forward`` traces);
* ``retry_backoff`` — writer timeout/backoff gaps between send attempts;
* ``controller_fencing`` — retry gaps explained by an epoch fence or a
  stale-head drop recorded inside the gap;
* ``leaderless_window`` — the part of a retry gap overlapping an
  interval during which no controller replica held the lease
  (:meth:`~repro.protocols.election.ControllerCluster.leaderless_intervals`).

Per write, the attributed seconds sum to the end-to-end latency
*exactly* (each consecutive span pair's gap is split, never resampled),
so the per-cause fractions sum to 1.0 — the honesty property the
BENCH_T3 gate enforces to 1e-9.  EWO merge rounds get the same per-hop
link/pipeline split via :meth:`CriticalPathAnalyzer.analyze_merges`.

Like everything in ``repro.obs``, the analyzer is a pure post-mortem
function of recorded state: it schedules no events, draws no RNG, reads
no wall clock, and never iterates a dict in accumulation order — reports
are byte-identical across same-seed replays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.flightrec import FlightRecorder, Span

__all__ = [
    "CAUSES",
    "DEFAULT_PIPELINE_LATENCY",
    "Segment",
    "WriteAttribution",
    "HopAttribution",
    "CritPathReport",
    "CriticalPathAnalyzer",
]

#: The fixed attribution taxonomy, in canonical (report) order.  Every
#: attributed second lands in exactly one of these.
CAUSES: Tuple[str, ...] = (
    "link_propagation",
    "switch_pipeline",
    "event_queue",
    "pending_wait",
    "retry_backoff",
    "controller_fencing",
    "leaderless_window",
)

#: One pipeline pass, in seconds.  Must match
#: ``repro.switch.pisa.PIPELINE_LATENCY`` (kept as a local constant so
#: the observability layer does not import the switch model; a test
#: pins the two together).
DEFAULT_PIPELINE_LATENCY = 400e-9

#: Span names that prove a retry gap was spent waiting out a
#: configuration fence rather than a plain timeout.
_FENCE_SPANS = frozenset({"sro.head.stale_drop", "sro.chain.fenced"})


@dataclass
class Segment:
    """One attributed slice of a critical path."""

    cause: str
    start: float
    end: float
    src: str  # "<node>/<span name>" that opened the slice
    dst: str  # "<node>/<span name>" that closed it

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cause": self.cause,
            "start": self.start,
            "end": self.end,
            "seconds": self.duration,
            "src": self.src,
            "dst": self.dst,
        }


@dataclass
class WriteAttribution:
    """One committed write's full latency, split across :data:`CAUSES`."""

    trace_id: str
    group: Optional[int]
    key: Any
    writer: str
    committed_at: float
    latency: float
    attempts: int
    segments: List[Segment] = field(default_factory=list)
    by_cause: Dict[str, float] = field(default_factory=dict)

    @property
    def fractions(self) -> Dict[str, float]:
        if self.latency <= 0:
            return {cause: 0.0 for cause in CAUSES}
        return {cause: self.by_cause[cause] / self.latency for cause in CAUSES}

    @property
    def fraction_sum(self) -> float:
        total = 0.0
        for cause in CAUSES:
            total += self.by_cause[cause]
        return total / self.latency if self.latency > 0 else 1.0

    @property
    def top_cause(self) -> str:
        best = CAUSES[0]
        for cause in CAUSES[1:]:
            if self.by_cause[cause] > self.by_cause[best]:
                best = cause
        return best

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "group": self.group,
            "key": repr(self.key),
            "writer": self.writer,
            "committed_at": self.committed_at,
            "latency_us": self.latency * 1e6,
            "attempts": self.attempts,
            "top_cause": self.top_cause,
            "by_cause": {cause: self.by_cause[cause] for cause in CAUSES},
            "fractions": {cause: self.fractions[cause] for cause in CAUSES},
            "fraction_sum": self.fraction_sum,
        }


@dataclass
class HopAttribution:
    """One EWO merge hop (broadcast/sync -> merge) or read detour."""

    trace_id: str
    kind: str  # "merge" | "read"
    src_node: str
    dst_node: str
    latency: float
    by_cause: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "src": self.src_node,
            "dst": self.dst_node,
            "latency_us": self.latency * 1e6,
            "by_cause": {cause: self.by_cause[cause] for cause in CAUSES},
        }


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending sequence (exact samples)."""
    if not sorted_values:
        return 0.0
    if q <= 0:
        return sorted_values[0]
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[min(len(sorted_values), max(1, rank)) - 1]


class CritPathReport:
    """Ranked "why is the tail slow" summary over analyzed writes."""

    def __init__(
        self,
        writes: List[WriteAttribution],
        hops: List[HopAttribution],
        skipped: int,
        tail_quantile: float = 0.99,
    ) -> None:
        self.writes = writes
        self.hops = hops
        self.skipped = skipped
        self.tail_quantile = tail_quantile

    # -- aggregation ----------------------------------------------------
    def totals(self, writes: Optional[Iterable[WriteAttribution]] = None) -> Dict[str, float]:
        """Per-cause seconds summed over ``writes`` (default: all)."""
        selected = self.writes if writes is None else list(writes)
        totals: Dict[str, float] = {}
        for cause in CAUSES:
            acc = 0.0
            for write in selected:
                acc += write.by_cause[cause]
            totals[cause] = acc
        return totals

    def tail_writes(self, quantile: Optional[float] = None) -> List[WriteAttribution]:
        """Writes at or above the latency quantile (the slow tail)."""
        q = self.tail_quantile if quantile is None else quantile
        if not self.writes:
            return []
        threshold = _quantile(sorted(w.latency for w in self.writes), q)
        return [w for w in self.writes if w.latency >= threshold]

    def ranked(
        self, writes: Optional[Iterable[WriteAttribution]] = None
    ) -> List[Tuple[str, float, float]]:
        """``[(cause, seconds, fraction)]`` ranked by contribution.

        Ties break on canonical cause order, so the ranking is stable
        across replays even when two causes contribute identically.
        """
        totals = self.totals(writes)
        grand = 0.0
        for cause in CAUSES:
            grand += totals[cause]
        order = sorted(range(len(CAUSES)), key=lambda i: (-totals[CAUSES[i]], i))
        return [
            (CAUSES[i], totals[CAUSES[i]], totals[CAUSES[i]] / grand if grand > 0 else 0.0)
            for i in order
        ]

    def top_tail_cause(self, quantile: Optional[float] = None) -> Optional[str]:
        """The cause contributing the most time to the slow tail."""
        tail = self.tail_writes(quantile)
        if not tail:
            return None
        return self.ranked(tail)[0][0]

    def exemplar(self, cause: str) -> Optional[WriteAttribution]:
        """The write where ``cause`` cost the most absolute time."""
        best: Optional[WriteAttribution] = None
        for write in self.writes:
            if write.by_cause[cause] <= 0:
                continue
            if best is None or write.by_cause[cause] > best.by_cause[cause]:
                best = write
        return best

    @property
    def fraction_sum_error_max(self) -> float:
        worst = 0.0
        for write in self.writes:
            worst = max(worst, abs(write.fraction_sum - 1.0))
        return worst

    def latency_quantiles(self) -> Dict[str, float]:
        ordered = sorted(w.latency for w in self.writes)
        return {
            "p50": _quantile(ordered, 0.50) * 1e6,
            "p99": _quantile(ordered, 0.99) * 1e6,
            "p999": _quantile(ordered, 0.999) * 1e6,
            "max": (ordered[-1] if ordered else 0.0) * 1e6,
        }

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready, deterministically ordered report."""
        tail = self.tail_writes()
        overall = self.ranked()
        tail_ranked = self.ranked(tail)
        exemplars: Dict[str, str] = {}
        for cause in CAUSES:
            best = self.exemplar(cause)
            if best is not None:
                exemplars[cause] = best.trace_id
        return {
            "writes_analyzed": len(self.writes),
            "writes_skipped": self.skipped,
            "merge_hops": len([h for h in self.hops if h.kind == "merge"]),
            "read_detours": len([h for h in self.hops if h.kind == "read"]),
            "latency_us": self.latency_quantiles(),
            "fraction_sum_error_max": self.fraction_sum_error_max,
            "causes": [
                {"cause": cause, "seconds": seconds, "fraction": fraction}
                for cause, seconds, fraction in overall
            ],
            "tail": {
                "quantile": self.tail_quantile,
                "writes": len(tail),
                "top_cause": tail_ranked[0][0] if tail else None,
                "causes": [
                    {"cause": cause, "seconds": seconds, "fraction": fraction}
                    for cause, seconds, fraction in tail_ranked
                ],
            },
            "exemplars": exemplars,
        }


class CriticalPathAnalyzer:
    """Post-mortem critical-path extraction from a flight recorder.

    ``leaderless`` is a list of ``(start, end)`` sim-time intervals
    during which no controller held the lease — pass
    ``deployment.controller.leaderless_intervals()`` so writer retry
    waits overlapping an interregnum are charged to
    ``leaderless_window`` instead of ``retry_backoff``.
    """

    def __init__(
        self,
        recorder: FlightRecorder,
        leaderless: Sequence[Tuple[float, float]] = (),
        pipeline_latency: float = DEFAULT_PIPELINE_LATENCY,
    ) -> None:
        self.recorder = recorder
        self.leaderless = list(leaderless)
        self.pipeline_latency = pipeline_latency

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def _spans_by_trace(self) -> Dict[str, List[Span]]:
        by_trace: Dict[str, List[Span]] = {}
        for span in self.recorder.spans:  # ring order: deterministic
            by_trace.setdefault(span.trace_id, []).append(span)
        return by_trace

    # ------------------------------------------------------------------
    # Write analysis
    # ------------------------------------------------------------------
    def analyze_writes(self) -> Tuple[List[WriteAttribution], int]:
        """Attribute every committed write in the ring.

        Returns ``(attributions, skipped)`` where ``skipped`` counts
        commits whose chain was truncated by ring eviction (their root
        is not the ``sro.write.initiate`` span, so a sum-to-latency
        attribution would lie).
        """
        by_trace = self._spans_by_trace()
        out: List[WriteAttribution] = []
        skipped = 0
        for span in self.recorder.spans:
            if span.name != "sro.write.commit":
                continue
            attribution = self.analyze_write(span, by_trace.get(span.trace_id, []))
            if attribution is None:
                skipped += 1
            else:
                out.append(attribution)
        return out, skipped

    def analyze_write(
        self, commit: Span, trace_spans: List[Span]
    ) -> Optional[WriteAttribution]:
        """Attribute one commit span's end-to-end latency, or ``None``
        if the chain back to the initiate span is incomplete."""
        by_id = {s.span_id: s for s in trace_spans}
        path: List[Span] = [commit]
        seen = {commit.span_id}
        span = commit
        while span.parent_id is not None and span.parent_id in by_id:
            span = by_id[span.parent_id]
            if span.span_id in seen:
                break
            seen.add(span.span_id)
            path.append(span)
        path.reverse()
        if path[0].name != "sro.write.initiate":
            return None
        fence_times = [
            s.time for s in trace_spans if s.name in _FENCE_SPANS
        ]
        attempts = len([s for s in path if s.name == "sro.write.send"])
        segments: List[Segment] = []
        for a, b in zip(path, path[1:]):
            segments.extend(self._classify(a, b, fence_times))
        by_cause = {cause: 0.0 for cause in CAUSES}
        for segment in segments:
            by_cause[segment.cause] += segment.duration
        return WriteAttribution(
            trace_id=commit.trace_id,
            group=commit.group,
            key=commit.key,
            writer=commit.node,
            committed_at=commit.time,
            latency=commit.time - path[0].time,
            attempts=attempts,
            segments=segments,
            by_cause=by_cause,
        )

    def _classify(self, a: Span, b: Span, fence_times: List[float]) -> List[Segment]:
        """Split the gap between consecutive path spans into segments.

        The split is exact: segment durations sum to ``b.time - a.time``
        with no resampling, which is what makes per-write fractions sum
        to 1.0.
        """
        gap = b.time - a.time
        if gap <= 0:
            return []
        src = f"{a.node}/{a.name}"
        dst = f"{b.node}/{b.name}"
        if a.node != b.node:
            # Network hop: one pipeline pass of service at the receiver,
            # the rest is serialization + propagation on the wire.
            pipeline = min(gap, self.pipeline_latency)
            segments = []
            if gap > pipeline:
                segments.append(
                    Segment("link_propagation", a.time, b.time - pipeline, src, dst)
                )
            segments.append(
                Segment("switch_pipeline", b.time - pipeline, b.time, src, dst)
            )
            return segments
        if a.name == "sro.write.send" and b.name == "sro.write.send":
            return self._split_wait(a.time, b.time, src, dst, fence_times)
        if a.name == "sro.chain.reorder_stash":
            # Stash residency: the update sat waiting for its missing
            # predecessor, whose re-propagation is gated by the same
            # retry/leaderless machinery as a writer's own backoff.
            return self._split_wait(a.time, b.time, src, dst, fence_times)
        if a.name == "sro.write.initiate":
            # Initiation -> first send: the control-plane punt plus CPU
            # queue residency ahead of it.
            return [Segment("event_queue", a.time, b.time, src, dst)]
        # Same-node protocol step (sequence -> apply, apply -> forward,
        # apply -> ack emit, deliver -> commit): pipeline service.
        return [Segment("switch_pipeline", a.time, b.time, src, dst)]

    def _split_wait(
        self, start: float, end: float, src: str, dst: str, fence_times: List[float]
    ) -> List[Segment]:
        """Subdivide a retry gap: leaderless overlap first, then fence
        evidence, then plain timeout/backoff."""
        leaderless = 0.0
        for window_start, window_end in self.leaderless:
            overlap = min(end, window_end) - max(start, window_start)
            if overlap > 0:
                leaderless += overlap
        leaderless = min(leaderless, end - start)
        rest = (end - start) - leaderless
        segments: List[Segment] = []
        if leaderless > 0:
            segments.append(
                Segment("leaderless_window", start, start + leaderless, src, dst)
            )
        if rest > 0:
            fenced = any(start <= t <= end for t in fence_times)
            segments.append(
                Segment(
                    "controller_fencing" if fenced else "retry_backoff",
                    start + leaderless,
                    end,
                    src,
                    dst,
                )
            )
        return segments

    # ------------------------------------------------------------------
    # EWO merge rounds and read detours
    # ------------------------------------------------------------------
    def analyze_merges(self) -> List[HopAttribution]:
        """Per-hop attribution for every ``ewo.merge`` span: the gap from
        its broadcast/sync parent splits into link + pipeline."""
        by_id = {s.span_id: s for s in self.recorder.spans}
        out: List[HopAttribution] = []
        for span in self.recorder.spans:
            if span.name != "ewo.merge" or span.parent_id not in by_id:
                continue
            parent = by_id[span.parent_id]
            gap = span.time - parent.time
            if gap < 0:
                continue
            by_cause = {cause: 0.0 for cause in CAUSES}
            if parent.node != span.node:
                pipeline = min(gap, self.pipeline_latency)
                by_cause["switch_pipeline"] = pipeline
                by_cause["link_propagation"] = gap - pipeline
            else:
                by_cause["switch_pipeline"] = gap
            out.append(
                HopAttribution(
                    trace_id=span.trace_id,
                    kind="merge",
                    src_node=parent.node,
                    dst_node=span.node,
                    latency=gap,
                    by_cause=by_cause,
                )
            )
        return out

    def analyze_reads(self) -> List[HopAttribution]:
        """Pending-bit cost realized as read detours: the whole
        forward -> tail transit exists only because a pending bit held
        the local copy unreadable, so it is charged to ``pending_wait``
        in full."""
        by_trace = self._spans_by_trace()
        out: List[HopAttribution] = []
        for span in self.recorder.spans:
            if span.name != "sro.read.forward":
                continue
            trace = by_trace.get(span.trace_id, [])
            tails = [s for s in trace if s.name == "sro.read.tail"]
            if not tails:
                continue
            tail = tails[-1]
            gap = tail.time - span.time
            if gap < 0:
                continue
            by_cause = {cause: 0.0 for cause in CAUSES}
            by_cause["pending_wait"] = gap
            out.append(
                HopAttribution(
                    trace_id=span.trace_id,
                    kind="read",
                    src_node=span.node,
                    dst_node=tail.node,
                    latency=gap,
                    by_cause=by_cause,
                )
            )
        return out

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def report(self, tail_quantile: float = 0.99) -> CritPathReport:
        writes, skipped = self.analyze_writes()
        hops = self.analyze_merges() + self.analyze_reads()
        return CritPathReport(writes, hops, skipped, tail_quantile=tail_quantile)

    def render_exemplar(self, report: CritPathReport, cause: str, limit: int = 40) -> str:
        """The exemplar trace timeline for one cause (post-mortem text)."""
        best = report.exemplar(cause)
        if best is None:
            return f"(no write attributes any time to {cause})"
        header = (
            f"exemplar for {cause}: trace {best.trace_id} "
            f"({best.by_cause[cause] * 1e6:.2f}us of {best.latency * 1e6:.2f}us, "
            f"{best.attempts} attempt(s))"
        )
        return header + "\n" + self.recorder.render_timeline(
            trace_id=best.trace_id, limit=limit
        )
