"""[F1] SRO failover and recovery (paper section 6.3).

"When a switch fails, the chain becomes partitioned.  Thus, writes
cannot be processed.  First, we regain connectivity by reprogramming
the routing of the failed switch neighbors.  In-flight writes … will
eventually timeout and [be] re-sent by the control-plane … To recover,
we add a new switch to the end of the chain … Once the new switch has
acknowledged all writes, it has the latest complete state, and can
replace the tail in processing reads."

Measured quantities:

* **write unavailability window** — the gap in committed writes around
  the failure (failure -> first commit through the repaired chain);
* **zero committed-write loss** — every write acked before or after the
  failure is present on all surviving replicas;
* **recovery time** — catch-up (snapshot transfer) duration until the
  recovered switch is promoted to read tail, as a function of state
  size.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_us, print_header, print_table


@dataclass
class FailoverResult:
    keys: int
    detection_latency: float
    unavailability: float
    committed_lost: int
    recovery_time: float
    snapshot_entries: int


def run_failover(keys: int = 50, seed: int = 10) -> FailoverResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    deployment = SwiShmemDeployment(sim, topo, switches)
    spec = deployment.declare(
        RegisterSpec("reg", Consistency.SRO, capacity=max(128, keys * 2))
    )
    commit_times: List[float] = []
    committed_keys: List[str] = []
    original = deployment.manager("s0").on_write_committed

    def tracking_hook(s, key, ack):
        commit_times.append(sim.now)
        committed_keys.append(key)
        original(s, key, ack)

    deployment.manager("s0").on_write_committed = tracking_hook

    # steady write stream from s0; populate `keys` distinct keys first
    for i in range(keys):
        sim.schedule(i * 50e-6, lambda i=i: deployment.manager("s0").register_write(spec, f"k{i}", i))
    fail_at = keys * 50e-6 + 1e-3
    write_until = fail_at + 40e-3
    i_holder = [keys]

    def steady_write():
        if sim.now > write_until:
            return
        i = i_holder[0]
        i_holder[0] += 1
        deployment.manager("s0").register_write(spec, f"hot{i % 10}", i)
        sim.schedule(200e-6, steady_write)

    sim.schedule_at(max(fail_at - 5e-3, 0.0), steady_write)
    # fail the middle switch mid-stream
    def inject_failure():
        deployment.controller.note_failure_time("s1")
        deployment.fail_switch("s1")

    sim.schedule_at(fail_at, inject_failure)
    sim.run(until=write_until + 20e-3)

    event = deployment.controller.last_failure()
    before = [t for t in commit_times if t < fail_at]
    after = [t for t in commit_times if t > fail_at]
    unavailability = (min(after) - fail_at) if after else float("inf")

    # every commit present on all survivors
    stores = deployment.sro_stores(spec)
    lost = sum(
        1
        for key in set(committed_keys)
        if any(key not in store for store in stores)
    )

    # recovery: bring s1 back, wait for promotion
    recovery_event = deployment.controller.recover_switch("s1")
    sim.run(until=sim.now + 0.5)
    recovery_time = recovery_event.sro_recovery_time(spec.group_id)
    transfer = deployment.failover.transfer_for(spec.group_id, "s1")
    return FailoverResult(
        keys=keys,
        detection_latency=event.detection_latency,
        unavailability=unavailability,
        committed_lost=lost,
        recovery_time=recovery_time if recovery_time is not None else float("inf"),
        snapshot_entries=transfer.total_entries if transfer else 0,
    )


def run_experiment() -> List[FailoverResult]:
    return [run_failover(keys=k, seed=10 + k) for k in (20, 50, 100)]


def report(results: List[FailoverResult]) -> None:
    print_header(
        "F1",
        "SRO chain failover and recovery",
        "writes stall only until the chain is repaired; no committed write "
        "is lost; recovery replays a snapshot and promotes the new tail",
    )
    print_table(
        ["state keys", "detection", "write unavailability", "committed lost",
         "recovery (catch-up)", "snapshot entries"],
        [
            (
                r.keys,
                fmt_us(r.detection_latency),
                fmt_us(r.unavailability),
                r.committed_lost,
                fmt_us(r.recovery_time),
                r.snapshot_entries,
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_sro_failover_shape_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    for r in results:
        # no committed write is ever lost
        assert r.committed_lost == 0
        # writes resume once detection + chain repair complete: the
        # unavailability window is dominated by detection + retry timeout
        assert r.unavailability < 20e-3
        # bounded by heartbeat period + timeout (the detection_bound)
        assert r.detection_latency <= 0.85e-3
        # recovery completes and transfers the full keyspace
        assert r.recovery_time != float("inf")
        assert r.snapshot_entries >= r.keys
    # recovery time grows with state size
    times = [r.recovery_time for r in results]
    assert times[0] < times[-1]


@pytest.mark.benchmark(group="failover")
def test_benchmark_sro_failover(benchmark):
    benchmark.pedantic(lambda: run_failover(keys=20), rounds=1, iterations=1)
