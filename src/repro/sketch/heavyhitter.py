"""Heavy-hitter tracking and entropy estimation.

Two analysis primitives built on the count-min sketch:

* :class:`HeavyHitterTracker` — keeps the top-k keys by estimated
  frequency (Space-Saving-style candidate set validated against the
  sketch).  Used by the distributed heavy-hitter discussion in the
  paper's related work and by the DDoS detector's per-source analysis.

* :func:`empirical_entropy` — Shannon entropy of an observed frequency
  distribution.  The DDoS detector the paper cites (Lapolli et al.)
  flags attacks by the characteristic entropy shift of source/destination
  IP distributions: a DDoS collapses destination entropy (one victim)
  while source entropy rises (many bots).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from repro.sketch.countmin import CountMinSketch

__all__ = ["HeavyHitterTracker", "empirical_entropy", "normalized_entropy"]


def empirical_entropy(counts: Dict[Hashable, int]) -> float:
    """Shannon entropy (bits) of a frequency table.  Empty -> 0."""
    total = sum(counts.values())
    if total <= 0:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        if count <= 0:
            continue
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def normalized_entropy(counts: Dict[Hashable, int]) -> float:
    """Entropy normalized to [0, 1] by log2 of the support size."""
    support = sum(1 for c in counts.values() if c > 0)
    if support <= 1:
        return 0.0
    return empirical_entropy(counts) / math.log2(support)


class HeavyHitterTracker:
    """Top-k frequency tracking backed by a count-min sketch.

    The sketch absorbs the unbounded key space; the tracker keeps an
    exact candidate table of size ``k`` (the in-switch analogue is a
    small register-backed table).  On update, a key whose estimate
    exceeds the smallest candidate evicts it.
    """

    def __init__(self, k: int = 16, sketch: CountMinSketch = None, seed: int = 0) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.sketch = sketch if sketch is not None else CountMinSketch(seed=seed)
        self._candidates: Dict[Hashable, int] = {}

    def add(self, key: Hashable, count: int = 1) -> None:
        self.sketch.add(key, count)
        estimate = self.sketch.estimate(key)
        if key in self._candidates:
            self._candidates[key] = estimate
            return
        if len(self._candidates) < self.k:
            self._candidates[key] = estimate
            return
        weakest_key = min(self._candidates, key=lambda x: (self._candidates[x], repr(x)))
        if estimate > self._candidates[weakest_key]:
            del self._candidates[weakest_key]
            self._candidates[key] = estimate

    def top(self, n: int = None) -> List[Tuple[Hashable, int]]:
        """The heaviest candidates, descending by estimated count."""
        ordered = sorted(self._candidates.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ordered if n is None else ordered[:n]

    def estimate(self, key: Hashable) -> int:
        return self.sketch.estimate(key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._candidates
