"""Adversarial channel wrapper: duplication, delay, reordering.

The network model in :mod:`repro.net.link` already drops packets (i.i.d.
loss, down links).  Real fabrics additionally *duplicate* frames
(flooding during convergence, retransmitting middleboxes) and *delay*
them unpredictably (queueing), which reorders traffic relative to later
packets.  SwiShmem's protocols claim to tolerate all of this — SRO via
sequence numbers, token dedup, and epoch fencing; EWO via idempotent
merges — so the nemesis exists to put those mechanisms under load.

A :class:`Nemesis` installs itself on every channel of a topology.  At
transmit time (after the loss decision) it may schedule extra deliveries
of a cloned packet and/or push the original's arrival later.  All
randomness comes from per-channel :class:`~repro.sim.random.SeededRng`
streams, so a chaos run is a pure function of its seed.

By default only SwiShmem replication packets are touched — NF traffic
is the workload under test, not the adversary's target — and delays are
capped at ``max_delay``.  Keep ``max_delay`` under ~half the heartbeat
period if a run asserts the detection-latency bound: in-network delay
eats into the detector's slack like any real network jitter would.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple, TYPE_CHECKING

from repro.sim.random import SeededRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Channel
    from repro.net.packet import Packet
    from repro.net.topology import Topology

__all__ = ["LeaderKiller", "Nemesis"]


class Nemesis:
    """Seed-driven duplication/delay adversary for in-flight packets."""

    def __init__(
        self,
        seed: int,
        duplicate_prob: float = 0.0,
        delay_prob: float = 0.0,
        max_delay: float = 100e-6,
        swishmem_only: bool = True,
    ) -> None:
        if not 0.0 <= duplicate_prob <= 1.0:
            raise ValueError(f"duplicate_prob must be in [0, 1], got {duplicate_prob}")
        if not 0.0 <= delay_prob <= 1.0:
            raise ValueError(f"delay_prob must be in [0, 1], got {delay_prob}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        self.rng = SeededRng(seed)
        self.duplicate_prob = duplicate_prob
        self.delay_prob = delay_prob
        self.max_delay = max_delay
        self.swishmem_only = swishmem_only
        self.enabled = True
        self.packets_inspected = 0
        self.packets_duplicated = 0
        self.packets_delayed = 0
        self._streams: Dict[Tuple[str, str], random.Random] = {}

    # ------------------------------------------------------------------
    def install(self, topo: "Topology") -> "Nemesis":
        """Attach to both directions of every link in the topology."""
        for link in topo.links:
            link.ab.nemesis = self
            link.ba.nemesis = self
        return self

    def uninstall(self, topo: "Topology") -> None:
        for link in topo.links:
            if link.ab.nemesis is self:
                link.ab.nemesis = None
            if link.ba.nemesis is self:
                link.ba.nemesis = None

    # ------------------------------------------------------------------
    def _stream(self, channel: "Channel") -> random.Random:
        key = (channel.src.name, channel.dst.name)
        stream = self._streams.get(key)
        if stream is None:
            stream = self.rng.stream(f"nemesis:{key[0]}->{key[1]}")
            self._streams[key] = stream
        return stream

    def plan(self, packet: "Packet", channel: "Channel") -> Tuple[float, Tuple[float, ...]]:
        """Decide this packet's fate: (extra delay, duplicate offsets).

        Called by :meth:`Channel.transmit` after the loss decision.
        Duplicate offsets are relative to the packet's nominal arrival,
        so a duplicate can land before *or* after the original once the
        original's own delay is added — which is exactly how reordering
        between the copy and the original arises.
        """
        if not self.enabled:
            return 0.0, ()
        if self.swishmem_only and packet.swishmem is None:
            return 0.0, ()
        self.packets_inspected += 1
        stream = self._stream(channel)
        duplicates: Tuple[float, ...] = ()
        if self.duplicate_prob > 0.0 and stream.random() < self.duplicate_prob:
            duplicates = (stream.uniform(0.0, self.max_delay),)
            self.packets_duplicated += 1
        extra = 0.0
        if self.delay_prob > 0.0 and stream.random() < self.delay_prob:
            extra = stream.uniform(0.0, self.max_delay)
            self.packets_delayed += 1
        return extra, duplicates

    def counters(self) -> Dict[str, int]:
        return {
            "packets_inspected": self.packets_inspected,
            "packets_duplicated": self.packets_duplicated,
            "packets_delayed": self.packets_delayed,
        }


class LeaderKiller:
    """Control-plane nemesis: crash the controller leader at the worst
    moment of a runtime re-level.

    Registers on ``deployment.releveler.phase_listeners`` and, when a
    handoff reaches the targeted phase (default ``"drain"`` — the window
    where fences are installed but the engine swap has not happened),
    crashes the replica that is currently the active leader.  The
    handoff must then stall until a successor finishes reconstruction
    and resumes it from persisted coordinator state — exactly the
    takeover path ``RelevelingCoordinator.on_leader_ready`` exists for.

    Deterministic by construction: the kill is a pure function of the
    handoff sequence (no randomness), so same-seed runs replay
    byte-identically.
    """

    def __init__(
        self,
        deployment,
        phase: str = "drain",
        kills: int = 1,
        groups: Tuple[int, ...] = (),
    ) -> None:
        self.deployment = deployment
        self.phase = phase
        self.kills_remaining = kills
        self.groups = frozenset(groups)
        #: (sim time, replica_id, group_id) per kill, for assertions.
        self.log: list = []
        deployment.releveler.phase_listeners.append(self._on_phase)

    def _on_phase(self, phase: str, handoff) -> None:
        if self.kills_remaining <= 0 or phase != self.phase:
            return
        if self.groups and handoff.group_id not in self.groups:
            return
        leader = self.deployment.controller.active_leader()
        if leader is None:
            return
        self.kills_remaining -= 1
        self.log.append((self.deployment.sim.now, leader.replica_id, handoff.group_id))
        self.deployment.controller.crash_replica(leader.replica_id)

    def uninstall(self) -> None:
        listeners = self.deployment.releveler.phase_listeners
        if self._on_phase in listeners:
            listeners.remove(self._on_phase)
