"""[N2] Distributed DDoS detection accuracy.

Paper section 4.2: DDoS detection tracks source/destination frequencies
in sketches "updated and read on every packet", tolerating eventual
consistency.  Section 3.2: distribution is mandatory — no single switch
sees all traffic.

The experiment spreads attack + background traffic across a 3-switch
ingress cluster (each switch sees ~1/3 of packets) and compares three
configurations:

* **distributed + EWO** — per-switch counters replicated with the CRDT
  protocol: every switch analyzes the (eventually consistent) global
  distribution;
* **local-only** — same deployment with replication disabled: each
  switch sees only its own share;
* **single omniscient switch** — the upper-bound baseline.

Measured: detection (any switch alarms during the attack), detection
latency, and false alarms outside the attack window.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List, Optional

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.nf.ddos import DdosDetectorNF
from repro.workload.attack import AttackScenario

from benchmarks.common import fmt_us, print_header, print_table
from tests.nfworld import build_nf_world

ATTACK_START = 12e-3
ATTACK_DURATION = 12e-3
RUN_UNTIL = 40e-3


@dataclass
class DetectionResult:
    config: str
    detected: bool
    detection_latency: Optional[float]
    switches_alarming: int
    false_alarms: int


def run_config(cluster_size: int, replicate: bool, seed: int = 55,
               use_sketch: bool = False) -> DetectionResult:
    world = build_nf_world(
        seed=seed,
        cluster_size=cluster_size,
        clients=6,
        servers=6,
        responder_servers=False,
        # local-only baseline: no broadcast (replicate=False) AND no
        # periodic sync — otherwise gossip would still share the state
        sync_period=1e-3 if replicate else 100.0,
    )
    detectors = world.deployment.install_nf(
        DdosDetectorNF,
        window=3e-3,
        entropy_threshold=-0.2,
        # high enough that one cluster switch's ~1/3 traffic share cannot
        # fill a window on its own — the regime where sharing is required
        min_packets=100,
        replicate=replicate,
        use_sketch=use_sketch,
    )
    # Only the cluster switches are compared: ingress and egress see all
    # traffic by construction, which would trivialize the "no single
    # switch sees everything" setup — their analyzers are disabled (their
    # per-packet counter updates remain, as any on-path NF's would).
    cluster_names = {s.name for s in world.cluster}
    active = []
    for detector in detectors:
        if detector.manager.switch.name in cluster_names:
            active.append(detector)
        else:
            detector.stop()
    scenario = AttackScenario(
        sim=world.sim,
        clients=world.clients,
        server_ips=world.server_ips(),
        rng=world.rng,
        background_pps=25000,
        attack_pps=45000,
        attack_start=ATTACK_START,
        attack_duration=ATTACK_DURATION,
        bot_count=200,
    )
    scenario.start(duration=RUN_UNTIL - 5e-3)
    world.sim.run(until=RUN_UNTIL)
    in_window = [
        t
        for d in active
        for t in d.alarms
        if ATTACK_START <= t <= ATTACK_START + ATTACK_DURATION + 6e-3
    ]
    out_of_window = [
        t
        for d in active
        for t in d.alarms
        if not (ATTACK_START <= t <= ATTACK_START + ATTACK_DURATION + 6e-3)
    ]
    config = (
        "single omniscient switch" if cluster_size == 1
        else ("distributed, local-only" if not replicate
              else ("distributed + EWO (count-min)" if use_sketch
                    else "distributed + EWO"))
    )
    return DetectionResult(
        config=config,
        detected=bool(in_window),
        detection_latency=(min(in_window) - ATTACK_START) if in_window else None,
        switches_alarming=sum(
            1
            for d in active
            if any(ATTACK_START <= t <= ATTACK_START + ATTACK_DURATION + 6e-3 for t in d.alarms)
        ),
        false_alarms=len(out_of_window),
    )


def run_experiment() -> List[DetectionResult]:
    return [
        run_config(cluster_size=3, replicate=True),
        run_config(cluster_size=3, replicate=True, use_sketch=True),
        run_config(cluster_size=3, replicate=False),
        run_config(cluster_size=1, replicate=True),
    ]


def report(results: List[DetectionResult]) -> None:
    print_header(
        "N2",
        "Distributed DDoS detection: EWO-shared counters vs local-only",
        "sketches behave correctly under eventual consistency; sharing "
        "gives every switch the global view a single switch would have",
    )
    print_table(
        ["configuration", "detected", "detection latency", "switches alarming", "false alarms"],
        [
            (
                r.config,
                r.detected,
                fmt_us(r.detection_latency) if r.detection_latency is not None else "-",
                r.switches_alarming,
                r.false_alarms,
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_ddos_detection_shape_matches_paper(benchmark):
    distributed, sketched, local_only, omniscient = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report([distributed, sketched, local_only, omniscient])
    # The omniscient single switch detects (sanity upper bound).
    assert omniscient.detected
    # The hardware-faithful count-min representation detects too.
    assert sketched.detected and sketched.false_alarms == 0
    # Without sharing, a 1/3 traffic share cannot fill a window: the
    # local-only cluster is blind to the attack.
    assert not local_only.detected
    # The EWO-shared cluster detects, on every switch.
    assert distributed.detected
    assert distributed.switches_alarming == 3
    # Shared detection is not meaningfully slower than omniscient
    # (within a couple of analysis windows).
    assert distributed.detection_latency <= omniscient.detection_latency + 6e-3
    # No false alarms outside the attack window for the shared config.
    assert distributed.false_alarms == 0


@pytest.mark.benchmark(group="nf")
def test_benchmark_ddos_distributed(benchmark):
    benchmark.pedantic(lambda: run_config(3, True), rounds=1, iterations=1)
