"""[F3] Chaos soak: randomized-but-seeded faults against SRO + EWO.

The paper's section 6.3 robustness claims — "no committed write is
lost" across SRO chain repair, EWO "needs no explicit failover
protocol" — are asserted here under an adversarial fault model instead
of the single clean fail-stop of ``bench_sro_failover``: each run draws
a seeded schedule of switch crashes, link flaps, correlated loss
bursts, and network partitions, while a nemesis duplicates and delays
SwiShmem packets in flight.

Measured quantities:

* **invariant verdicts** — continuous monitors (no-committed-write-lost,
  CRDT counter monotonicity, chain/multicast config consistency) checked
  every millisecond and strictly at the end;
* **detection latency distribution** — every real failure must be
  detected within the heartbeat bound (period + timeout), partitions
  surface as false positives followed by re-admissions;
* **write unavailability windows** — gap from each crash to the first
  commit through the repaired chain;
* **determinism** — identical seeds must produce byte-identical event
  histories (the digest), making every chaos run replayable.

``--controller-chaos`` (or ``controller_chaos=True``) runs the soak
against a three-replica controller cluster and additionally kills the
acting *leader* mid-recovery — scripted so the crash lands while a
snapshot transfer it initiated is still streaming — plus one random
replica crash.  The invariants gain the at-most-one-active-leader
monitor, and detection-latency bounds are relaxed by the documented
failover bound (a switch that dies during a leaderless window is only
detected once the successor has reconstructed).

Run standalone::

    python benchmarks/bench_chaos_soak.py [--quick] [--seeds 1 2 3]
        [--controller-chaos]
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import List, Tuple

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit_json, fmt_us, print_header, print_table

from repro.chaos import FaultInjector, InvariantSuite, Nemesis
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.obs.accessprof import AccessProfiler, NULL_ACCESS_PROFILER
from repro.obs.flightrec import FlightRecorder, NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

#: Protected from crashes: the workload writer (also the controller's
#: initial host).  Partitions may still isolate it — that is the
#: split-brain scenario, and it is exercised on purpose.
WRITER = "s0"


@dataclass
class SoakResult:
    seed: int
    duration: float
    planned_faults: List[str]
    commits: int
    detection_latencies: List[float]
    detection_bound: float
    false_positives: int
    readmissions: int
    fenced_updates: int
    aborted_recoveries: int
    unavailability: List[Tuple[str, float]]  # (crashed switch, window)
    invariant_ok: bool
    invariant_violations: List[str]
    invariant_notes: List[str]
    nemesis_counters: dict = field(default_factory=dict)
    digest: str = ""
    controller_chaos: bool = False
    failover_bound: float = 0.0
    leader_changes: int = 0
    controller_crashes: int = 0
    sro_group: int = 0


def run_chaos_soak(
    seed: int,
    duration: float = 0.12,
    switches: int = 5,
    metrics: MetricsRegistry = NULL_REGISTRY,
    controller_chaos: bool = False,
    flightrec: FlightRecorder = NULL_FLIGHT_RECORDER,
    access_profiler: AccessProfiler = NULL_ACCESS_PROFILER,
) -> SoakResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    nodes = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), switches)
    dep = SwiShmemDeployment(
        sim,
        topo,
        nodes,
        sync_period=1e-3,
        metrics=metrics,
        controller_replicas=3 if controller_chaos else 1,
        flight_recorder=flightrec,
        access_profiler=access_profiler,
    )
    sro = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=256))
    ctr = dep.declare(RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER))

    nemesis = Nemesis(
        seed=seed, duplicate_prob=0.05, delay_prob=0.05, max_delay=100e-6
    ).install(topo)
    injector = FaultInjector(dep, seed=seed)
    # In controller mode, one switch is reserved for the scripted
    # leader-kill-mid-recovery sequence below; protect it from the
    # random plan so the two schedules cannot collide.
    scripted = f"s{switches - 1}" if controller_chaos else None
    protect = [WRITER] + ([scripted] if scripted else [])
    # leave a tail margin so recoveries and re-admissions can finish
    planned = injector.schedule_random(
        start=5e-3,
        horizon=max(duration - 45e-3, 10e-3),
        crashes=2,
        flaps=1,
        bursts=1,
        partitions=1,
        crash_downtime=(5e-3, 15e-3),
        burst_loss=0.05,
        partition_duration=(3e-3, 10e-3),
        protect=protect,
        controller_crashes=1 if controller_chaos else 0,
        controller_downtime=(20e-3, 35e-3),
    )
    if controller_chaos:
        # Scripted leader kill mid-recovery: crash one switch, bring it
        # back, and fail-stop the acting leader just as the snapshot
        # transfer it initiated starts streaming.  The successor must
        # find the target stranded in catch-up and re-drive it.
        t_crash, down = 8e-3, 10e-3
        injector.crash_recover(t_crash, scripted, down_for=down)
        kill_at = t_crash + down + dep.controller.drain_delay + 30e-6
        injector.crash_leader_for(kill_at, down_for=25e-3)
        planned.append(
            f"scripted: crash {scripted} at {t_crash * 1e3:.2f} ms, kill acting"
            f" leader at {kill_at * 1e3:.2f} ms (mid-snapshot-transfer)"
        )
    suite = InvariantSuite(dep).start(period=1e-3)

    counter = [0]

    def workload() -> None:
        i = counter[0]
        counter[0] += 1
        dep.manager(WRITER).register_write(sro, f"k{i % 16}", i)
        for name in dep.switch_names:
            if not dep.manager(name).switch.failed:
                dep.manager(name).register_increment(ctr, "c", 1)
        if sim.now < duration - 30e-3:
            sim.schedule(400e-6, workload)

    sim.schedule(1e-3, workload)
    sim.run(until=duration)
    report = suite.finalize()

    detections = [
        event.detection_latency
        for event in dep.controller.failures
        if not event.false_positive
    ]
    unavailability = []
    for record in injector.log:
        if record.kind != "crash":
            continue
        later = [t for t in suite.commit_times if t > record.at]
        unavailability.append(
            (record.detail, (min(later) - record.at) if later else float("inf"))
        )
    fenced = sum(
        dep.manager(name).sro.stats_for(sro.group_id).fenced_updates
        for name in dep.switch_names
    )

    history = (
        injector.log_digest(),
        tuple(suite.commit_times),
        tuple(
            (e.switch, e.failed_at, e.detected_at, e.false_positive)
            for e in dep.controller.failures
        ),
        tuple(
            (r.switch, r.started_at, r.readmission, tuple(sorted(r.promoted_at.items())))
            for r in dep.controller.recoveries
        ),
        tuple(tuple(sorted(store.items())) for store in dep.sro_stores(sro)),
        tuple(tuple(sorted(state.items())) for state in dep.ewo_states(ctr)),
        tuple(sorted(nemesis.counters().items())),
        dep.controller.leadership_digest(),
        sim.events_processed,
    )
    digest = hashlib.sha256(repr(history).encode("utf-8")).hexdigest()

    # Ring-truncation visibility: export the tracer's and the flight
    # recorder's eviction/occupancy gauges so bench sidecars show when
    # a post-mortem may be missing its earliest history.
    dep.tracer.bind_metrics(metrics)
    flightrec.bind_metrics(metrics)

    return SoakResult(
        seed=seed,
        duration=duration,
        planned_faults=planned,
        commits=len(suite.commit_times),
        detection_latencies=detections,
        detection_bound=dep.controller.detection_bound,
        false_positives=dep.controller.false_positives,
        readmissions=sum(1 for r in dep.controller.recoveries if r.readmission),
        fenced_updates=fenced,
        aborted_recoveries=len(dep.controller.aborted_recoveries),
        unavailability=unavailability,
        invariant_ok=report.ok,
        invariant_violations=[str(v) for v in report.violations],
        invariant_notes=list(report.notes),
        nemesis_counters=nemesis.counters(),
        digest=digest,
        controller_chaos=controller_chaos,
        failover_bound=dep.controller.failover_bound if controller_chaos else 0.0,
        leader_changes=dep.controller.leader_changes,
        controller_crashes=sum(
            1 for r in injector.log if r.kind == "controller-crash"
        ),
        sro_group=sro.group_id,
    )


def run_experiment(
    seeds: Tuple[int, ...] = (1, 2, 3),
    duration: float = 0.12,
    controller_chaos: bool = False,
) -> List[SoakResult]:
    return [
        run_chaos_soak(seed, duration=duration, controller_chaos=controller_chaos)
        for seed in seeds
    ]


def report(results: List[SoakResult]) -> None:
    print_header(
        "F3",
        "chaos soak: seeded faults + nemesis vs SRO and EWO",
        "no committed write is lost, counters never regress without a "
        "fault, detection stays within heartbeat period + timeout, and "
        "every run is a pure function of its seed",
    )
    rows = []
    for r in results:
        worst_detect = max(r.detection_latencies) if r.detection_latencies else 0.0
        worst_window = max(
            (w for _, w in r.unavailability if w != float("inf")), default=0.0
        )
        rows.append(
            (
                r.seed,
                r.commits,
                len(r.detection_latencies),
                fmt_us(worst_detect),
                fmt_us(r.detection_bound),
                r.false_positives,
                r.readmissions,
                r.fenced_updates,
                fmt_us(worst_window),
                r.leader_changes,
                "OK" if r.invariant_ok else f"{len(r.invariant_violations)} VIOLATIONS",
                r.digest[:12],
            )
        )
    print_table(
        ["seed", "commits", "detections", "worst detect", "bound",
         "false pos", "readmits", "fenced", "worst unavail", "ldr chg",
         "invariants", "digest"],
        rows,
    )
    for r in results:
        for line in r.invariant_violations:
            print(f"  seed {r.seed} VIOLATION: {line}")
        for note in r.invariant_notes:
            print(f"  seed {r.seed} note: {note}")


def check_result(r: SoakResult) -> None:
    assert r.invariant_ok, (
        f"seed {r.seed}: invariant violations: {r.invariant_violations}"
    )
    assert r.commits > 0
    # A switch that dies during a leaderless window is only detected
    # once the successor reconstructs, so controller chaos adds the
    # documented failover bound to worst-case detection latency.
    bound = r.detection_bound + r.failover_bound
    for latency in r.detection_latencies:
        assert latency <= bound + 1e-9, (
            f"seed {r.seed}: detection latency {latency * 1e6:.1f}us exceeds "
            f"bound {bound * 1e6:.1f}us"
        )
    # crashed chains repair: writes flow again well before the run ends
    for switch, window in r.unavailability:
        assert window < 80e-3 + r.failover_bound, (
            f"seed {r.seed}: no commit within {window * 1e3:.1f}ms of "
            f"crashing {switch}"
        )


@pytest.mark.benchmark(group="experiment")
def test_chaos_soak_matches_paper(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    for r in results:
        check_result(r)
    # at least one seed must have exercised a real crash end to end
    assert any(r.detection_latencies for r in results)


@pytest.mark.benchmark(group="experiment")
def test_chaos_soak_deterministic(benchmark):
    first = benchmark.pedantic(
        lambda: run_chaos_soak(7, duration=0.08), rounds=1, iterations=1
    )
    second = run_chaos_soak(7, duration=0.08)
    assert first.digest == second.digest
    assert run_chaos_soak(8, duration=0.08).digest != first.digest


@pytest.mark.benchmark(group="experiment")
def test_chaos_soak_controller_failover(benchmark):
    """The leader-kill mode: a three-replica cluster soaks through the
    same fault schedule plus controller crashes — one scripted to land
    mid-snapshot-transfer.  Invariants (including at-most-one-active-
    leader) stay green and the run remains a pure function of its seed."""
    result = benchmark.pedantic(
        lambda: run_chaos_soak(3, duration=0.12, controller_chaos=True),
        rounds=1,
        iterations=1,
    )
    check_result(result)
    assert result.controller_crashes >= 1
    assert result.leader_changes >= 2  # at least one takeover happened
    replay = run_chaos_soak(3, duration=0.12, controller_chaos=True)
    assert replay.digest == result.digest


@pytest.mark.benchmark(group="chaos")
def test_benchmark_chaos_soak(benchmark):
    benchmark.pedantic(lambda: run_chaos_soak(1, duration=0.08), rounds=1, iterations=1)


def main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter runs (80ms simulated instead of 120ms)",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3],
        help="soak seeds (default: 1 2 3)",
    )
    parser.add_argument(
        "--metrics-jsonl", metavar="PATH", default=None,
        help="also write the instrumented replay's metrics snapshot as JSONL",
    )
    parser.add_argument(
        "--controller-chaos", action="store_true",
        help="three controller replicas; kill the acting leader "
             "mid-recovery plus one random replica crash per seed",
    )
    args = parser.parse_args(argv)
    duration = 0.08 if args.quick else 0.12
    results = run_experiment(
        tuple(args.seeds), duration=duration,
        controller_chaos=args.controller_chaos,
    )
    report(results)
    failures = 0
    for r in results:
        try:
            check_result(r)
        except AssertionError as exc:
            failures += 1
            print(f"FAIL: {exc}")
    # Determinism: replay the first seed and compare digests.  The replay
    # runs with live metrics enabled, which doubles as proof that the
    # telemetry layer never perturbs simulated behaviour.
    registry = MetricsRegistry()
    replay = run_chaos_soak(
        args.seeds[0], duration=duration, metrics=registry,
        controller_chaos=args.controller_chaos,
    )
    if replay.digest != results[0].digest:
        failures += 1
        print(
            f"FAIL: seed {args.seeds[0]} instrumented replay digest "
            f"{replay.digest[:12]} != original {results[0].digest[:12]}"
        )
    else:
        print(f"determinism: seed {args.seeds[0]} instrumented replay digest "
              f"matches ({replay.digest[:12]})")
    # Cross-check the metrics snapshot against the replay's verdicts.
    detection_hist = registry.get(
        "histogram", "controller.detection_latency_seconds", "controller"
    )
    hist_count = detection_hist.count if detection_hist is not None else 0
    if hist_count != len(replay.detection_latencies):
        failures += 1
        print(
            f"FAIL: detection-latency histogram has {hist_count} samples, "
            f"replay saw {len(replay.detection_latencies)} real failures"
        )
    lost_write_violations = registry.value(
        "counter", "invariant.no_lost_write.violations", "invariants"
    )
    replay_lost = sum(
        1 for v in replay.invariant_violations if "no_lost_write" in v
    )
    if lost_write_violations != replay_lost:
        failures += 1
        print(
            f"FAIL: metrics report {lost_write_violations} no-lost-write "
            f"violations but the invariant suite recorded {replay_lost}"
        )
    # Flight-recorder neutrality: a replay with causal span recording ON
    # must still be byte-identical to the uninstrumented run (tracing
    # contributes zero wire bytes and zero events).  The recorded spans
    # then get causally sanity-checked via the TraceQuery API.
    flightrec = FlightRecorder()
    traced = run_chaos_soak(
        args.seeds[0], duration=duration, flightrec=flightrec,
        controller_chaos=args.controller_chaos,
    )
    if traced.digest != results[0].digest:
        failures += 1
        print(
            f"FAIL: seed {args.seeds[0]} flight-recorder replay digest "
            f"{traced.digest[:12]} != original {results[0].digest[:12]}"
        )
    else:
        print(
            f"determinism: seed {args.seeds[0]} flight-recorder replay digest "
            f"matches ({traced.digest[:12]}, {flightrec.recorded} spans recorded)"
        )
    committed_trace = next(
        (
            tid
            for tid in flightrec.traces_for_key(traced.sro_group)
            if flightrec.query(trace_id=tid).span_count("sro.write.commit")
        ),
        None,
    )
    if committed_trace is None:
        failures += 1
        print("FAIL: flight recorder captured no committed write trace")
    else:
        query = flightrec.query(trace_id=committed_trace)
        try:
            query.assert_happens_before("sro.write.initiate", "sro.write.commit")
        except AssertionError as exc:
            failures += 1
            print(f"FAIL: causal order broken in {committed_trace}: {exc}")
        else:
            print(
                f"causal: trace {committed_trace} initiate -> commit ordered, "
                f"chain depth {query.max_chain_depth()}, "
                f"nodes {', '.join(query.nodes())}"
            )
    if args.metrics_jsonl:
        written = registry.write_jsonl(args.metrics_jsonl)
        print(f"metrics: wrote {written} instruments to {args.metrics_jsonl}")
    emit_json(
        "F3",
        "chaos soak: seeded faults + nemesis vs SRO and EWO",
        results,
        registry=registry,
        extra={
            "instrumented_seed": args.seeds[0],
            "duration": duration,
            "controller_chaos": args.controller_chaos,
        },
    )
    print("RESULT:", "FAIL" if failures else "PASS")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
