"""Chain membership descriptors for the SRO/ERO protocols.

A :class:`ChainDescriptor` is an immutable snapshot of the chain's
membership: the ordered member list, plus which member currently serves
forwarded reads (``read_tail``).  Immutability matters for correctness:
in-flight :class:`~repro.protocols.messages.ChainUpdate` packets embed
the member list they were sequenced against, so a reconfiguration (new
descriptor version) never mutates what an in-flight packet sees.

During normal operation ``read_tail`` is the last member.  During
recovery (paper section 6.3) a new switch is appended and "starts to
process writes, but does not replace the tail": commit acks come from
the new last member, while forwarded reads keep going to the old tail
until catch-up completes and the controller promotes the new member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ChainDescriptor"]


@dataclass(frozen=True)
class ChainDescriptor:
    """One version of a chain's membership."""

    chain_id: int
    members: Tuple[str, ...]
    version: int = 0
    #: Index into ``members`` of the switch serving forwarded reads.
    #: None means "the last member" (the normal case).
    read_tail_index: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a chain must have at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"duplicate members in chain: {self.members}")
        if self.read_tail_index is not None and not (
            0 <= self.read_tail_index < len(self.members)
        ):
            raise ValueError("read_tail_index out of range")

    # ------------------------------------------------------------------
    @property
    def head(self) -> str:
        return self.members[0]

    @property
    def ack_tail(self) -> str:
        """The member that generates commit acknowledgements (the last)."""
        return self.members[-1]

    @property
    def read_tail(self) -> str:
        """The member that serves forwarded reads."""
        if self.read_tail_index is None:
            return self.members[-1]
        return self.members[self.read_tail_index]

    def successor(self, node: str) -> Optional[str]:
        index = self.members.index(node)
        if index + 1 < len(self.members):
            return self.members[index + 1]
        return None

    def predecessor(self, node: str) -> Optional[str]:
        index = self.members.index(node)
        if index > 0:
            return self.members[index - 1]
        return None

    def __contains__(self, node: str) -> bool:
        return node in self.members

    def __len__(self) -> int:
        return len(self.members)

    # ------------------------------------------------------------------
    # Reconfiguration (each returns a new, higher-version descriptor)
    # ------------------------------------------------------------------
    def without(self, node: str) -> "ChainDescriptor":
        """Remove a failed member, repairing the chain (section 6.3)."""
        if node not in self.members:
            return self
        members = tuple(m for m in self.members if m != node)
        return ChainDescriptor(
            chain_id=self.chain_id,
            members=members,
            version=self.version + 1,
            read_tail_index=None,
        )

    def with_appended(self, node: str, promote_read_tail: bool = False) -> "ChainDescriptor":
        """Append a recovering switch at the end of the chain.

        While it catches up, the previous tail keeps serving reads
        (``read_tail_index`` pins it); pass ``promote_read_tail=True``
        (or call :meth:`promoted`) once catch-up completes.
        """
        if node in self.members:
            raise ValueError(f"{node} is already a chain member")
        members = self.members + (node,)
        return ChainDescriptor(
            chain_id=self.chain_id,
            members=members,
            version=self.version + 1,
            read_tail_index=None if promote_read_tail else len(self.members) - 1,
        )

    def promoted(self) -> "ChainDescriptor":
        """Promote the last member to read tail (catch-up finished)."""
        return ChainDescriptor(
            chain_id=self.chain_id,
            members=self.members,
            version=self.version + 1,
            read_tail_index=None,
        )
