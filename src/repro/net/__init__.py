"""Network substrate: packets, headers, links, topologies, routing, multicast."""

from repro.net.endhost import AddressBook, EndHost, ReceivedPacket
from repro.net.headers import (
    EthernetHeader,
    FiveTuple,
    IPv4Header,
    PROTO_SWISHMEM,
    PROTO_TCP,
    PROTO_UDP,
    SwiShmemHeader,
    SwiShmemOp,
    TcpFlags,
    TcpHeader,
    UdpHeader,
)
from repro.net.link import Channel, Link, LinkStats, Node
from repro.net.multicast import MulticastGroup, MulticastRegistry
from repro.net.packet import Packet, make_tcp_packet, make_udp_packet
from repro.net.routing import RoutingTable, ecmp_hash, shortest_paths
from repro.net.topology import (
    Topology,
    build_chain,
    build_full_mesh,
    build_leaf_spine,
    build_nf_cluster,
)

__all__ = [
    "AddressBook",
    "EndHost",
    "ReceivedPacket",
    "EthernetHeader",
    "FiveTuple",
    "IPv4Header",
    "PROTO_SWISHMEM",
    "PROTO_TCP",
    "PROTO_UDP",
    "SwiShmemHeader",
    "SwiShmemOp",
    "TcpFlags",
    "TcpHeader",
    "UdpHeader",
    "Channel",
    "Link",
    "LinkStats",
    "Node",
    "MulticastGroup",
    "MulticastRegistry",
    "Packet",
    "make_tcp_packet",
    "make_udp_packet",
    "RoutingTable",
    "ecmp_hash",
    "shortest_paths",
    "Topology",
    "build_chain",
    "build_full_mesh",
    "build_leaf_spine",
    "build_nf_cluster",
]
