"""[T3] Critical-path tail attribution: why is p99 slow, exactly?

The ``sro.write_commit_latency_seconds`` histogram says *how slow* the
tail is; this experiment gates *why*.  Two scenarios drive the same
SRO chain workload through distinct failure modes:

* **loss_burst** — a correlated loss burst drops chain traffic
  mid-run, so tail writes burn their time in writer timeout/backoff:
  :class:`~repro.obs.critpath.CriticalPathAnalyzer` must rank
  ``retry_backoff`` as the top tail cause;
* **controller_churn** — a mid-chain switch crashes while the
  controller leadership is being repeatedly assassinated, so chain
  repair stalls until a lease finally lands: the top tail cause must
  be ``leaderless_window``.

Gated quantities:

* **honesty** — per committed write, attributed seconds sum to the
  end-to-end latency exactly; ``fraction_sum_error_max`` is gated at
  1e-9 for every analyzed write;
* **cause ranking** — the scenario-specific top tail cause above;
* **digest neutrality** — each scenario replayed with the flight
  recorder + live SLO monitor attached must produce a byte-identical
  history digest to the bare run;
* **SLO evaluation** — the monitor's declarative objectives see the
  induced tail: the loss burst must breach the p99 latency objective.

Run standalone::

    python benchmarks/bench_critpath_tails.py [--quick]
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import pytest

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit_json, fmt_us, print_header, print_table

from repro.chaos import FaultInjector
from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.obs.critpath import CriticalPathAnalyzer
from repro.obs.dashboard import render_critpath, render_slo
from repro.obs.flightrec import FlightRecorder, NULL_FLIGHT_RECORDER
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.slo import NULL_SLO_MONITOR, SLOMonitor
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

#: The workload writer (and chain head) — protected from crashes.
WRITER = "s0"

#: Declarative objectives evaluated live during every scenario run.
SLO_OBJECTIVES = (
    "sro.write_commit p99 < 1ms over 10ms windows",
    "sro.write availability >= 0.999 over 10ms windows",
)

#: Gate on the per-write attribution honesty property.
FRACTION_SUM_TOLERANCE = 1e-9


@dataclass
class ScenarioResult:
    scenario: str
    seed: int
    duration: float
    commits: int
    max_attempts: int
    leaderless_intervals: int
    leaderless_seconds: float
    report: Dict = field(default_factory=dict)
    slo: Dict = field(default_factory=dict)
    digest_bare: str = ""
    digest_instrumented: str = ""
    exemplar_text: str = ""


def _run_once(
    scenario: str,
    seed: int,
    duration: float,
    recorder=NULL_FLIGHT_RECORDER,
    slo_monitor=NULL_SLO_MONITOR,
    metrics=NULL_REGISTRY,
):
    """One seeded scenario run; returns (deployment, spec, digest)."""
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    nodes = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    dep = SwiShmemDeployment(
        sim,
        topo,
        nodes,
        sync_period=1e-3,
        metrics=metrics,
        controller_replicas=3 if scenario == "controller_churn" else 1,
        flight_recorder=recorder,
        slo_monitor=slo_monitor,
    )
    spec = dep.declare(RegisterSpec("reg", Consistency.SRO, capacity=128))
    injector = FaultInjector(dep, seed=seed)
    if scenario == "loss_burst":
        # Correlated loss on every link: in-flight applies and acks die,
        # the writer times out and backs off.
        injector.loss_burst(8e-3, duration=8e-3, loss_rate=0.6)
    elif scenario == "controller_churn":
        # Kill the mid-chain hop, then assassinate each leader that
        # takes over: chain repair needs a lease-holder, so retried
        # writes stall through the accumulated leaderless windows.
        injector.crash(8e-3, "s1")
        for i, at in enumerate((7.5e-3, 20e-3, 32e-3)):
            injector.crash_leader_for(at, down_for=60e-3)
        injector.recover(70e-3, "s1")
    else:
        raise ValueError(f"unknown scenario {scenario!r}")

    counter = [0]

    def workload() -> None:
        i = counter[0]
        counter[0] += 1
        dep.manager(WRITER).register_write(spec, f"k{i % 8}", i)
        if sim.now < duration - 30e-3:
            sim.schedule(400e-6, workload)

    sim.schedule(1e-3, workload)
    sim.run(until=duration)
    slo_monitor.finalize(sim.now)

    history = (
        injector.log_digest(),
        tuple(tuple(sorted(store.items())) for store in dep.sro_stores(spec)),
        tuple(
            (e.switch, e.failed_at, e.detected_at, e.false_positive)
            for e in dep.controller.failures
        ),
        dep.controller.leadership_digest(),
        sim.events_processed,
    )
    digest = hashlib.sha256(repr(history).encode("utf-8")).hexdigest()
    return dep, spec, digest


def run_scenario(scenario: str, seed: int = 3, duration: float = 0.1) -> ScenarioResult:
    """Bare run, instrumented replay, attribution, and neutrality check."""
    _, _, digest_bare = _run_once(scenario, seed, duration)

    recorder = FlightRecorder(max_records=65536)
    monitor = SLOMonitor()
    for objective in SLO_OBJECTIVES:
        monitor.add_objective(objective)
    registry = MetricsRegistry()
    dep, spec, digest_instrumented = _run_once(
        scenario, seed, duration,
        recorder=recorder, slo_monitor=monitor, metrics=registry,
    )

    leaderless = dep.controller.leaderless_intervals(dep.sim.now)
    analyzer = CriticalPathAnalyzer(recorder, leaderless=leaderless)
    report = analyzer.report(tail_quantile=0.9)
    commits = len(report.writes)
    max_attempts = max((w.attempts for w in report.writes), default=0)
    top = report.top_tail_cause()
    exemplar = analyzer.render_exemplar(report, top, limit=30) if top else ""
    return ScenarioResult(
        scenario=scenario,
        seed=seed,
        duration=duration,
        commits=commits,
        max_attempts=max_attempts,
        leaderless_intervals=len(leaderless),
        leaderless_seconds=sum(end - start for start, end in leaderless),
        report=report.as_dict(),
        slo=monitor.as_dict(),
        digest_bare=digest_bare,
        digest_instrumented=digest_instrumented,
        exemplar_text=exemplar,
    )


#: Scenario -> the cause that must rank first in the tail.
EXPECTED_TOP_TAIL = {
    "loss_burst": "retry_backoff",
    "controller_churn": "leaderless_window",
}


def run_experiment(duration: float = 0.1) -> List[ScenarioResult]:
    return [
        run_scenario("loss_burst", seed=3, duration=duration),
        run_scenario("controller_churn", seed=3, duration=max(duration, 0.1)),
    ]


def check_result(r: ScenarioResult) -> None:
    assert r.commits > 0, f"{r.scenario}: no committed writes analyzed"
    assert r.digest_instrumented == r.digest_bare, (
        f"{r.scenario}: instrumented replay digest "
        f"{r.digest_instrumented[:12]} != bare {r.digest_bare[:12]} — "
        f"critpath/SLO instrumentation perturbed the simulation"
    )
    error = r.report["fraction_sum_error_max"]
    assert error <= FRACTION_SUM_TOLERANCE, (
        f"{r.scenario}: attribution fractions sum to 1 ± {error:.3g} "
        f"(> {FRACTION_SUM_TOLERANCE:g}) — attributed seconds no longer "
        f"telescope to the end-to-end latency"
    )
    expected = EXPECTED_TOP_TAIL[r.scenario]
    actual = r.report["tail"]["top_cause"]
    assert actual == expected, (
        f"{r.scenario}: top tail cause is {actual!r}, expected {expected!r}"
    )
    assert r.max_attempts > 1, f"{r.scenario}: no write ever retried"
    assert r.slo["samples"] > 0, f"{r.scenario}: SLO monitor saw no samples"
    if r.scenario == "loss_burst":
        assert any(
            b["metric"] == "sro.write_commit" for b in r.slo["breaches"]
        ), "loss_burst: p99 latency objective never breached"
    if r.scenario == "controller_churn":
        assert r.leaderless_intervals >= 1
        assert r.leaderless_seconds > 0


def report(results: List[ScenarioResult]) -> None:
    print_header(
        "T3",
        "critical-path tail attribution + live SLOs",
        "every committed write's latency decomposes exactly into the "
        "cause taxonomy; the induced failure mode tops the tail ranking "
        "and the instrumented replay stays byte-identical",
    )
    rows = []
    for r in results:
        lat = r.report["latency_us"]
        rows.append(
            (
                r.scenario,
                r.commits,
                r.max_attempts,
                fmt_us(lat["p50"] * 1e-6),
                fmt_us(lat["p99"] * 1e-6),
                fmt_us(lat["max"] * 1e-6),
                r.report["tail"]["top_cause"],
                f"{r.report['fraction_sum_error_max']:.1e}",
                len(r.slo["breaches"]),
                "MATCH" if r.digest_instrumented == r.digest_bare else "DIVERGED",
            )
        )
    print_table(
        ["scenario", "commits", "max tries", "p50", "p99", "max",
         "top tail cause", "frac err", "slo breaches", "digest"],
        rows,
    )
    for r in results:
        print()
        print(render_critpath(r.report, title=f"T3 critical paths: {r.scenario}"))
        print(render_slo(r.slo, title=f"T3 slo: {r.scenario}"))
        if r.exemplar_text:
            print()
            print(r.exemplar_text)


@pytest.mark.benchmark(group="experiment")
def test_critpath_tails_match_expectations(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    for r in results:
        check_result(r)


@pytest.mark.benchmark(group="chaos")
def test_benchmark_critpath_loss_burst(benchmark):
    benchmark.pedantic(
        lambda: run_scenario("loss_burst", duration=0.08), rounds=1, iterations=1
    )


def main(argv: List[str]) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter loss-burst run (80ms simulated instead of 100ms)",
    )
    args = parser.parse_args(argv)
    duration = 0.08 if args.quick else 0.1
    results = run_experiment(duration=duration)
    report(results)
    failures = 0
    for r in results:
        try:
            check_result(r)
        except AssertionError as exc:
            failures += 1
            print(f"FAIL: {exc}")
    emit_json(
        "T3",
        "critical-path tail attribution + live SLOs",
        [
            {
                "scenario": r.scenario,
                "seed": r.seed,
                "duration": r.duration,
                "commits": r.commits,
                "max_attempts": r.max_attempts,
                "leaderless_intervals": r.leaderless_intervals,
                "leaderless_seconds": r.leaderless_seconds,
                "digest_neutral": r.digest_instrumented == r.digest_bare,
                "digest": r.digest_instrumented,
                "critpath": r.report,
                "slo": r.slo,
            }
            for r in results
        ],
        extra={"fraction_sum_tolerance": FRACTION_SUM_TOLERANCE},
    )
    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
