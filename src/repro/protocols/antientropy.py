"""Anti-entropy scrubbing and online repair.

Chain replication and EWO gossip both assume that a replica which
*acknowledged* a write still *holds* it.  Silent dataplane faults break
that assumption: a register bit-flip, or an apply unit that wedges and
drops merges while the switch keeps forwarding, leaves a replica that
looks healthy to the failure detector yet serves diverged state forever
(SRO has no background repair at all; EWO gossip only heals what the
CRDT order can still distinguish).

This module closes the gap with a classic anti-entropy loop, adapted to
the SwiShmem split between management and data planes:

* Every member keeps an incremental Merkle-style
  :class:`~repro.core.registers.DigestTree` over each register group
  (:class:`ScrubAgent`).  Refreshing the tree costs O(changed keys),
  so steady-state scrubbing is cheap.

* A deployment-wide :class:`ScrubCoordinator` — conceptually the
  controller leader's management plane — runs one *scrub round* per
  group per period: it queries every live member's tree root, bisects
  down the divergent subtrees, and finally fetches per-key hashes of
  the divergent buckets.  Digest traffic rides the management network
  (scheduled callbacks paying ``config_latency``), like controller
  reconstruction; only its byte volume is accounted.

* Divergence is *confirmed* across consecutive rounds before repair:
  a write in flight down the chain makes replicas differ legitimately
  for a few microseconds, and repairing those would thrash.  A (member,
  key) pair must stay divergent for ``confirm_rounds`` rounds running.

* **Repair is online.**  For SRO/ERO chains the per-key majority is
  authoritative (ties break toward the earliest chain member), and the
  authority's control plane re-propagates the value to the victim in a
  :class:`~repro.protocols.messages.ScrubRepair` dataplane packet,
  applied under the same monotone sequence guard as snapshot replay.
  For EWO groups the coordinator forces a directed merge-sync round in
  both directions between the victim and every live peer — CRDT merge
  does the rest.

* **Repairs are fenced.**  A round captures the controller leader's
  epoch and the chain descriptor version (or the multicast membership)
  at start and aborts if either moves; repair packets carry the chain
  epoch and are rejected by a victim whose descriptor is newer.  A
  scrub planned before a failover can therefore never resurrect
  pre-failover state.

Chaos integration: ``FaultInjector.corrupt_register`` and
``stale_replica`` log a :class:`DivergenceEvent` per injected fault in
``deployment.divergence_log``; the coordinator stamps ``detected_at``
and ``healed_at``, and the invariant suite asserts every event heals
within ``heal_bound`` of becoming repairable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.core.registers import Consistency, DigestTree, EwoMode, RegisterSpec
from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.obs.causal import CausalClock
from repro.protocols.messages import (
    ScrubDigestQuery,
    ScrubDigestReply,
    ScrubKeyQuery,
    ScrubKeyReply,
    ScrubRepair,
)
from repro.sim.engine import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment, SwiShmemManager

__all__ = ["DivergenceEvent", "ScrubAgent", "ScrubCoordinator", "ScrubStats"]

#: Default scrub round period.
DEFAULT_SCRUB_PERIOD = 2e-3
#: Consecutive rounds a (member, key) must stay divergent before repair
#: (filters replicas that merely had a write in flight).
DEFAULT_CONFIRM_ROUNDS = 2
#: Digest-tree levels descended per stage when bisecting.
LEVEL_STRIDE = 4
#: Scheduled just after the 2 x config_latency reply round-trip so a
#: stage-finish callback always runs after every reply of its stage.
_STAGE_SLACK = 1e-6


@dataclass
class DivergenceEvent:
    """One injected (or observed) silent divergence, tracked to heal.

    ``kind`` is ``"corrupt"`` (a register bit-flip at ``key``) or
    ``"stale"`` (a thawed freeze window; ``key`` is None — the whole
    replica may lag).  ``at`` is when the divergence became repairable:
    injection time for corruption, thaw time for staleness.

    The scrubber stamps ``detected_at`` on the first confirming key
    stage and ``healed_at`` when a completed round shows the member
    clean again.  ``deadline`` starts as ``at + heal_bound`` and is
    pushed out whenever scrubbing was impossible (no controller leader,
    aborted round, member down) — the guarantee is "healed within the
    bound once scrubbing can run", not "healed through a partition".
    """

    group: int
    switch: str
    kind: str
    key: Any = None
    at: float = 0.0
    deadline: Optional[float] = None
    detected_at: Optional[float] = None
    healed_at: Optional[float] = None
    detail: str = ""
    #: Set by the invariant monitor after reporting a violation so one
    #: unhealed event is reported once, not once per check tick.
    violated: bool = False

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def healed(self) -> bool:
        return self.healed_at is not None


class ScrubStats:
    """Coordinator-side counters (one instance per deployment)."""

    __slots__ = (
        "rounds_started",
        "rounds_clean",
        "rounds_diverged",
        "rounds_aborted",
        "rounds_skipped",
        "digest_queries",
        "key_queries",
        "mgmt_bytes",
        "repairs_sent",
        "repair_bytes",
        "forced_syncs",
        "detections",
        "heals",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}


class ScrubAgent:
    """Member-side anti-entropy state for one switch.

    Owns one :class:`DigestTree` per register group, canonicalizes the
    live store into immutable entries on demand, answers the
    coordinator's digest/key queries, and applies incoming
    :class:`ScrubRepair` packets under the epoch fence and the monotone
    sequence guard.
    """

    def __init__(self, manager: "SwiShmemManager", buckets: int = 16) -> None:
        self.manager = manager
        self.switch = manager.switch
        self.sim = manager.sim
        self.buckets = buckets
        self._trees: Dict[int, DigestTree] = {}
        self.repairs_applied = 0
        self.repairs_stale = 0
        self.repairs_fenced = 0
        self._bind_observability()

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks (called at
        construction and again by ``Deployment.rebind_observability``)."""
        metrics = self.manager.deployment.metrics
        self._metrics_on = metrics.enabled
        self._m_repairs = metrics.counter("scrub.repairs_applied", self.switch.name)
        self._m_fenced = metrics.counter("scrub.repairs_fenced", self.switch.name)
        self._causal = self.manager.causal
        self._flightrec = self.manager.deployment.flight_recorder
        self._flightrec_on = self._flightrec.enabled

    # ------------------------------------------------------------------
    def tree(self, group_id: int) -> DigestTree:
        """The group's digest tree, refreshed against the live store."""
        tree = self._trees.get(group_id)
        if tree is None:
            tree = DigestTree(self.buckets)
            self._trees[group_id] = tree
        tree.refresh(self._items(group_id))
        return tree

    def _items(self, group_id: int) -> List[Tuple[Any, Any]]:
        """Canonical (key, value) pairs for digesting one group.

        Values must be immutable and identical on converged replicas:
        live lists (counter vectors) are frozen to tuples, LWW cells
        become (value, version) pairs, OR-Sets become sorted tag
        listings.  SRO entries fold in the slot's applied sequence
        number alongside the value: a member whose value matches but
        whose apply progress has a hole (a dropped apply whose value a
        later repair restored) would otherwise digest clean while its
        in-order apply check refuses every subsequent seq — wedging the
        chain permanently.  Mid-flight skew (head applied, tail not yet)
        is transient and absorbed by the confirm-rounds requirement.
        """
        spec = self.manager.deployment.specs[group_id]
        # Branch on this member's *live* level, not the (possibly
        # rewritten-mid-handoff) spec: a scrub stage can overlap a
        # runtime re-level, and an engine this member no longer runs
        # simply digests as empty — the stage-finish fence aborts the
        # round anyway.
        if self.manager.level_of(spec) is not Consistency.EWO:
            state = self.manager.sro.groups.get(group_id)
            if state is None:
                return []
            pending = state.pending
            return [
                (key, (value, pending.applied_seq(pending.slot_of(key))))
                for key, value in state.store.items()
            ]
        ewo = self.manager.ewo.groups.get(group_id)
        if ewo is None:
            return []
        if spec.ewo_mode is EwoMode.COUNTER:
            return [(key, tuple(vector)) for key, vector in ewo.vectors.items()]
        if spec.ewo_mode is EwoMode.ORSET:
            items: List[Tuple[Any, Any]] = []
            for key, orset in ewo.sets.items():
                elements = tuple(
                    (
                        element,
                        tuple(sorted(orset.element_state(element)[0])),
                        tuple(sorted(orset.element_state(element)[1])),
                    )
                    for element in sorted(orset.known_elements(), key=repr)
                )
                items.append((key, elements))
            return items
        return [
            (key, (cell.value, cell.version))
            for key, cell in ewo.cells.items()
            if cell.version.node_id >= 0
        ]

    # ------------------------------------------------------------------
    # Management-plane query handlers (invoked by the coordinator)
    # ------------------------------------------------------------------
    def digest_nodes(
        self, group_id: int, level: int, indexes: Tuple[int, ...]
    ) -> Tuple[Tuple[int, int], ...]:
        tree = self.tree(group_id)
        return tuple((index, tree.node(level, index)) for index in indexes)

    def key_hashes(
        self, group_id: int, buckets: Tuple[int, ...]
    ) -> Tuple[Tuple[Any, int], ...]:
        tree = self.tree(group_id)
        entries: List[Tuple[Any, int]] = []
        for bucket in buckets:
            entries.extend(tree.bucket_entries(bucket))
        return tuple(entries)

    def chain_version(self, group_id: int) -> int:
        state = self.manager.sro.groups.get(group_id)
        return state.chain.version if state is not None else 0

    # ------------------------------------------------------------------
    # Dataplane repair application
    # ------------------------------------------------------------------
    def handle_repair(self, repair: ScrubRepair) -> None:
        """Apply one authoritative re-propagation (SRO/ERO groups)."""
        state = self.manager.sro.groups.get(repair.group)
        if state is None or self.switch.failed:
            return
        ctx = (
            self._causal.child(repair.trace)
            if repair.trace is not None
            else self._causal.root()
        )
        if repair.epoch < state.chain.version:
            # The scrub round was fenced on an older chain configuration
            # than this member now runs: the repair might resurrect
            # pre-failover state, so it must not land.
            self.repairs_fenced += 1
            if self._metrics_on:
                self._m_fenced.inc()
            if self._flightrec_on:
                self._flightrec.record(
                    ctx,
                    "scrub.repair.fenced",
                    self.switch.name,
                    self.sim.now,
                    group=repair.group,
                    key=repair.key,
                    repair_epoch=repair.epoch,
                    local_epoch=state.chain.version,
                )
            return
        if state.chaos_frozen_until > self.sim.now:
            # The frozen apply unit loses repairs like any other apply;
            # the scrubber keeps retrying until the thaw.
            state.chaos_frozen_drops += 1
            return
        applied = self.manager.sro.apply_snapshot_write(
            repair.key, repair.value, repair.slot, repair.seq, repair.group
        )
        if applied:
            self.repairs_applied += 1
            if self._metrics_on:
                self._m_repairs.inc()
        else:
            self.repairs_stale += 1
        if self._flightrec_on:
            self._flightrec.record(
                ctx,
                "scrub.repair.apply",
                self.switch.name,
                self.sim.now,
                group=repair.group,
                key=repair.key,
                seq=repair.seq,
                source=repair.source,
                applied=applied,
            )


@dataclass
class _ScrubRound:
    """One in-flight scrub round over one register group."""

    round_id: int
    group_id: int
    spec: RegisterSpec
    sro: bool
    members: Tuple[str, ...]
    epoch: int
    chain_version: int
    started_at: float
    trace: Any = None
    level: int = 0
    #: member -> {node index: digest} for the current digest stage.
    replies: Dict[str, Dict[int, int]] = field(default_factory=dict)
    reply_versions: Dict[str, int] = field(default_factory=dict)
    #: member -> {key: entry hash} for the key stage.
    key_replies: Dict[str, Dict[Any, int]] = field(default_factory=dict)
    queried_buckets: Tuple[int, ...] = ()
    aborted: bool = False


class ScrubCoordinator:
    """Deployment-wide anti-entropy driver (controller management plane)."""

    def __init__(
        self,
        deployment: "SwiShmemDeployment",
        period: float = DEFAULT_SCRUB_PERIOD,
        buckets: int = 16,
        confirm_rounds: int = DEFAULT_CONFIRM_ROUNDS,
        heal_bound: Optional[float] = None,
    ) -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.period = period
        self.confirm_rounds = confirm_rounds
        #: Heal guarantee: a repairable divergence is gone within this
        #: much sim time, counted from when scrubbing was last unable to
        #: run for its group.  Default: enough for confirmation rounds
        #: plus repair propagation plus one verifying round.
        self.heal_bound = heal_bound if heal_bound is not None else 6 * period
        self.latency = deployment.controller.config_latency
        self.stats = ScrubStats()
        self._round_ids = itertools.count(1)
        self._rounds: Dict[int, _ScrubRound] = {}
        #: (group, member, key) -> consecutive divergent rounds.
        self._suspects: Dict[Tuple[int, str, Any], int] = {}
        self._process: Optional[Process] = None
        self.buckets = buckets
        self._tree_depth = buckets.bit_length() - 1
        # Every agent shares the coordinator's bucket count; trees are
        # created lazily at first query, so re-pointing the size here is
        # safe as long as scrubbing has not started yet.
        for manager in deployment.managers.values():
            manager.scrub.buckets = buckets
        self._causal = CausalClock("scrub")
        self._bind_observability()

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks (called at
        construction and again by ``Deployment.rebind_observability``)."""
        metrics = self.deployment.metrics
        self._metrics_on = metrics.enabled
        self._m_rounds = metrics.counter("scrub.rounds", "scrub")
        self._m_diverged = metrics.counter("scrub.rounds_diverged", "scrub")
        self._m_aborted = metrics.counter("scrub.rounds_aborted", "scrub")
        self._m_repairs = metrics.counter("scrub.repairs_sent", "scrub")
        self._m_repair_bytes = metrics.counter("scrub.repair_bytes", "scrub")
        self._m_detect_latency = metrics.histogram(
            "scrub.detect_latency_seconds", "scrub"
        )
        self._m_heal_latency = metrics.histogram("scrub.heal_latency_seconds", "scrub")
        self._flightrec = self.deployment.flight_recorder
        self._flightrec_on = self._flightrec.enabled

    # ------------------------------------------------------------------
    def start(self) -> "ScrubCoordinator":
        if self._process is None:
            self._process = Process(
                self.sim, self.period, self._tick, name="scrub-round"
            ).start()
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.stop()
            self._process = None
        self._rounds.clear()

    # ------------------------------------------------------------------
    # Round scheduling
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        leader = self.deployment.controller.active_leader()
        if leader is None:
            # No fencing authority: scrubbing pauses, and outstanding
            # events are not chargeable against the heal bound.
            self.stats.rounds_skipped += 1
            self._extend_deadlines(group_id=None)
            return
        for group_id in sorted(self.deployment.specs):
            if group_id in self._rounds:
                continue  # previous round still in flight
            self._start_round(group_id, leader.epoch)

    def _start_round(self, group_id: int, epoch: int) -> None:
        spec = self.deployment.specs[group_id]
        if spec.partial_replication and self.deployment.directory is not None:
            return  # members legitimately hold different key subsets
        if self.deployment.releveler.active_handoff(group_id) is not None:
            # Mid-re-level the group's engines are draining or being
            # swapped; replicas legitimately disagree.  Skip the round —
            # the first post-handoff round scrubs the new engine.
            self.stats.rounds_skipped += 1
            self._extend_deadlines(group_id)
            return
        managers = self.deployment.managers
        sro = spec.consistency is not Consistency.EWO
        if sro:
            chain = self.deployment.chains.get(group_id)
            if chain is None:
                self.stats.rounds_skipped += 1
                return  # chain retired by a re-level between checks
            chain_version = chain.version
            members = tuple(
                m for m in chain.members if not managers[m].switch.failed
            )
        else:
            if not self.deployment.multicast.has(group_id):
                self.stats.rounds_skipped += 1
                return  # fan-out deleted by a re-level between checks
            chain_version = 0
            members = tuple(
                sorted(
                    m
                    for m in self.deployment.multicast.get(group_id).members
                    if not managers[m].switch.failed
                )
            )
        if len(members) < 2:
            self.stats.rounds_skipped += 1
            self._extend_deadlines(group_id)
            return
        round_ = _ScrubRound(
            round_id=next(self._round_ids),
            group_id=group_id,
            spec=spec,
            sro=sro,
            members=members,
            epoch=epoch,
            chain_version=chain_version,
            started_at=self.sim.now,
            trace=self._causal.root(),
        )
        self._rounds[group_id] = round_
        self.stats.rounds_started += 1
        if self._metrics_on:
            self._m_rounds.inc()
        if self._flightrec_on:
            self._flightrec.record(
                round_.trace,
                "scrub.round.start",
                "scrub",
                self.sim.now,
                group=group_id,
                round=round_.round_id,
                members=",".join(members),
                epoch=epoch,
                chain_version=chain_version,
            )
        self._query_digests(round_, level=0, indexes=(0,))

    # ------------------------------------------------------------------
    # Digest stages (management plane, 2 x config_latency per stage)
    # ------------------------------------------------------------------
    def _query_digests(
        self, round_: _ScrubRound, level: int, indexes: Tuple[int, ...]
    ) -> None:
        round_.level = level
        round_.replies = {}
        round_.reply_versions = {}
        query = ScrubDigestQuery(
            group=round_.group_id,
            round_id=round_.round_id,
            epoch=round_.epoch,
            level=level,
            indexes=indexes,
            sent_at=self.sim.now,
        )
        for member in round_.members:
            self.stats.digest_queries += 1
            self.stats.mgmt_bytes += query.wire_size
            self.sim.schedule(
                self.latency,
                self._member_digests,
                round_,
                member,
                query,
                label="scrub-digest-query",
            )
        self.sim.schedule(
            2 * self.latency + _STAGE_SLACK,
            self._finish_digest_stage,
            round_,
            label="scrub-digest-stage",
        )

    def _member_digests(
        self, round_: _ScrubRound, member: str, query: ScrubDigestQuery
    ) -> None:
        """Member-side digest computation (runs at the member's switch)."""
        if self._rounds.get(round_.group_id) is not round_ or round_.aborted:
            return
        manager = self.deployment.managers[member]
        if manager.switch.failed:
            return  # no reply; the stage finish notices the gap
        agent = manager.scrub
        reply = ScrubDigestReply(
            group=round_.group_id,
            round_id=round_.round_id,
            switch=member,
            level=query.level,
            nodes=agent.digest_nodes(round_.group_id, query.level, query.indexes),
            chain_version=agent.chain_version(round_.group_id) if round_.sro else 0,
        )
        self.stats.mgmt_bytes += reply.wire_size
        self.sim.schedule(
            self.latency, self._on_digest_reply, round_, reply, label="scrub-digest-reply"
        )

    def _on_digest_reply(self, round_: _ScrubRound, reply: ScrubDigestReply) -> None:
        if self._rounds.get(round_.group_id) is not round_ or round_.aborted:
            return
        round_.replies[reply.switch] = dict(reply.nodes)
        round_.reply_versions[reply.switch] = reply.chain_version

    def _finish_digest_stage(self, round_: _ScrubRound) -> None:
        if self._rounds.get(round_.group_id) is not round_ or round_.aborted:
            return
        if not self._fence_ok(round_) or len(round_.replies) < 2:
            self._abort_round(round_, reason="fence")
            return
        if round_.sro and any(
            version != round_.chain_version
            for version in round_.reply_versions.values()
        ):
            # A member answered under a different chain configuration
            # than the round was fenced on (reconfiguration in flight).
            self._abort_round(round_, reason="chain-version")
            return
        # Majority digest per queried node; members disagreeing with the
        # majority carry the divergence down to the next stage.
        depth = self._depth(round_)
        queried = sorted({i for nodes in round_.replies.values() for i in nodes})
        divergent_indexes: Set[int] = set()
        divergent_members: Set[str] = set()
        for index in queried:
            majority = self._majority_digest(round_, index)
            if majority is None:
                continue
            for member in round_.members:
                nodes = round_.replies.get(member)
                if nodes is None:
                    continue
                if nodes.get(index) != majority:
                    divergent_indexes.add(index)
                    divergent_members.add(member)
        if not divergent_indexes:
            self._complete_round(round_, divergent={})
            return
        if round_.level >= depth:
            # Bucket level reached: fetch per-key hashes of the
            # divergent buckets from every member.
            self._query_keys(round_, tuple(sorted(divergent_indexes)))
            return
        next_level = min(depth, round_.level + LEVEL_STRIDE)
        shift = next_level - round_.level
        children = tuple(
            sorted(
                itertools.chain.from_iterable(
                    range(index << shift, (index + 1) << shift)
                    for index in sorted(divergent_indexes)
                )
            )
        )
        if self._flightrec_on:
            self._flightrec.record(
                self._causal.child(round_.trace),
                "scrub.round.descend",
                "scrub",
                self.sim.now,
                group=round_.group_id,
                round=round_.round_id,
                level=next_level,
                nodes=len(children),
                members=",".join(sorted(divergent_members)),
            )
        self._query_digests(round_, next_level, children)

    def _depth(self, round_: _ScrubRound) -> int:
        return self._tree_depth

    def _majority_digest(self, round_: _ScrubRound, index: int) -> Optional[int]:
        """The digest most members report for ``index``.

        Ties break toward the earliest member in round order — for SRO
        that is chain order, so the head side of a split wins.  Returns
        None when no member reported the node.
        """
        counts: Dict[int, int] = {}
        first_holder: Dict[int, int] = {}
        for position, member in enumerate(round_.members):
            nodes = round_.replies.get(member)
            if nodes is None or index not in nodes:
                continue
            digest = nodes[index]
            counts[digest] = counts.get(digest, 0) + 1
            first_holder.setdefault(digest, position)
        if not counts:
            return None
        return max(counts, key=lambda d: (counts[d], -first_holder[d]))

    # ------------------------------------------------------------------
    # Key stage
    # ------------------------------------------------------------------
    def _query_keys(self, round_: _ScrubRound, buckets: Tuple[int, ...]) -> None:
        round_.queried_buckets = buckets
        round_.key_replies = {}
        query = ScrubKeyQuery(
            group=round_.group_id,
            round_id=round_.round_id,
            epoch=round_.epoch,
            buckets=buckets,
        )
        for member in round_.members:
            self.stats.key_queries += 1
            self.stats.mgmt_bytes += query.wire_size
            self.sim.schedule(
                self.latency,
                self._member_keys,
                round_,
                member,
                query,
                label="scrub-key-query",
            )
        self.sim.schedule(
            2 * self.latency + _STAGE_SLACK,
            self._finish_key_stage,
            round_,
            label="scrub-key-stage",
        )

    def _member_keys(
        self, round_: _ScrubRound, member: str, query: ScrubKeyQuery
    ) -> None:
        if self._rounds.get(round_.group_id) is not round_ or round_.aborted:
            return
        manager = self.deployment.managers[member]
        if manager.switch.failed:
            return
        reply = ScrubKeyReply(
            group=round_.group_id,
            round_id=round_.round_id,
            switch=member,
            entries=manager.scrub.key_hashes(round_.group_id, query.buckets),
            key_bytes=round_.spec.key_bytes,
        )
        self.stats.mgmt_bytes += reply.wire_size
        self.sim.schedule(
            self.latency, self._on_key_reply, round_, reply, label="scrub-key-reply"
        )

    def _on_key_reply(self, round_: _ScrubRound, reply: ScrubKeyReply) -> None:
        if self._rounds.get(round_.group_id) is not round_ or round_.aborted:
            return
        round_.key_replies[reply.switch] = dict(reply.entries)

    def _finish_key_stage(self, round_: _ScrubRound) -> None:
        if self._rounds.get(round_.group_id) is not round_ or round_.aborted:
            return
        if not self._fence_ok(round_) or len(round_.key_replies) < 2:
            self._abort_round(round_, reason="fence")
            return
        all_keys = sorted(
            {key for entries in round_.key_replies.values() for key in entries},
            key=repr,
        )
        divergent: Dict[str, Set[Any]] = {}
        for key in all_keys:
            # hash-or-None per member; a key the majority lacks is an
            # in-flight write, not repairable divergence — skip it.
            hashes = {
                member: round_.key_replies[member].get(key)
                for member in round_.members
                if member in round_.key_replies
            }
            counts: Dict[Any, int] = {}
            first_holder: Dict[Any, int] = {}
            for position, member in enumerate(round_.members):
                if member not in hashes:
                    continue
                h = hashes[member]
                counts[h] = counts.get(h, 0) + 1
                first_holder.setdefault(h, position)
            majority = max(counts, key=lambda h: (counts[h], -first_holder[h]))
            if majority is None:
                continue
            for member, h in hashes.items():
                if h != majority:
                    divergent.setdefault(member, set()).add(key)
        self._complete_round(round_, divergent)

    # ------------------------------------------------------------------
    # Round completion: confirmation, repair, heal bookkeeping
    # ------------------------------------------------------------------
    def _complete_round(
        self, round_: _ScrubRound, divergent: Dict[str, Set[Any]]
    ) -> None:
        self._rounds.pop(round_.group_id, None)
        group_id = round_.group_id
        now = self.sim.now
        # Confirmation counting: replace this group's suspect entries
        # wholesale so anything that came back clean resets to zero.
        confirmed: Dict[str, Set[Any]] = {}
        stale_suspects = [s for s in self._suspects if s[0] == group_id]
        fresh: Dict[Tuple[int, str, Any], int] = {}
        for member in sorted(divergent):
            for key in sorted(divergent[member], key=repr):
                suspect = (group_id, member, key)
                fresh[suspect] = self._suspects.get(suspect, 0) + 1
                if fresh[suspect] >= self.confirm_rounds:
                    confirmed.setdefault(member, set()).add(key)
        for suspect in stale_suspects:
            del self._suspects[suspect]
        self._suspects.update(fresh)
        if divergent:
            self.stats.rounds_diverged += 1
            if self._metrics_on:
                self._m_diverged.inc()
        else:
            self.stats.rounds_clean += 1
        if self._flightrec_on:
            self._flightrec.record(
                self._causal.child(round_.trace),
                "scrub.round.complete",
                "scrub",
                now,
                group=group_id,
                round=round_.round_id,
                divergent=",".join(sorted(divergent)),
                confirmed=",".join(sorted(confirmed)),
            )
        self._mark_detections(round_, divergent, now)
        if confirmed:
            self._repair(round_, confirmed)
        self._mark_heals(round_, divergent, now)

    def _mark_detections(
        self, round_: _ScrubRound, divergent: Dict[str, Set[Any]], now: float
    ) -> None:
        for event in self.deployment.divergence_log:
            if (
                event.group != round_.group_id
                or event.healed
                or event.detected
                or now < event.at
            ):
                continue
            keys = divergent.get(event.switch)
            if keys is None:
                continue
            if event.key is None or event.key in keys:
                event.detected_at = now
                self.stats.detections += 1
                if self._metrics_on:
                    self._m_detect_latency.observe(now - event.at)
                if self._flightrec_on:
                    self._flightrec.record(
                        self._causal.child(round_.trace),
                        "scrub.detect",
                        "scrub",
                        now,
                        group=event.group,
                        switch=event.switch,
                        kind=event.kind,
                        key=event.key,
                        latency_us=round((now - event.at) * 1e6, 3),
                    )

    def _mark_heals(
        self, round_: _ScrubRound, divergent: Dict[str, Set[Any]], now: float
    ) -> None:
        """A completed round is proof of health for its clean members."""
        for event in self.deployment.divergence_log:
            if event.group != round_.group_id or event.healed:
                continue
            if round_.started_at < event.at:
                continue  # round may predate the divergence
            if event.switch not in round_.members:
                # The victim is down (or excluded): not scrubbable, so
                # not chargeable against the heal bound.
                self._extend_event(event)
                continue
            keys = divergent.get(event.switch)
            clean = keys is None or (event.key is not None and event.key not in keys)
            if clean:
                event.healed_at = now
                if event.detected_at is None:
                    # Healed by normal protocol traffic (EWO gossip, a
                    # fresh write) before the scrubber could confirm it;
                    # the clean round is still the verification.
                    event.detected_at = now
                self.stats.heals += 1
                if self._metrics_on:
                    self._m_heal_latency.observe(now - event.at)
                if self._flightrec_on:
                    self._flightrec.record(
                        self._causal.child(round_.trace),
                        "scrub.heal",
                        "scrub",
                        now,
                        group=event.group,
                        switch=event.switch,
                        kind=event.kind,
                        key=event.key,
                        latency_us=round((now - event.at) * 1e6, 3),
                    )

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair(self, round_: _ScrubRound, confirmed: Dict[str, Set[Any]]) -> None:
        managers = self.deployment.managers
        if not round_.sro:
            # EWO: force a directed merge-sync round both ways between
            # the victim and every live peer; CRDT merge converges the
            # replicas no matter which side held the fresher state.
            for victim in sorted(confirmed):
                if managers[victim].switch.failed:
                    continue
                for peer in round_.members:
                    if peer == victim or managers[peer].switch.failed:
                        continue
                    managers[peer].switch.control.submit(
                        self._force_sync, peer, round_.group_id, victim,
                        label="scrub-force-sync",
                    )
                    managers[victim].switch.control.submit(
                        self._force_sync, victim, round_.group_id, peer,
                        label="scrub-force-sync",
                    )
                if self._flightrec_on:
                    self._flightrec.record(
                        self._causal.child(round_.trace),
                        "scrub.repair.sync",
                        "scrub",
                        self.sim.now,
                        group=round_.group_id,
                        victim=victim,
                        keys=len(confirmed[victim]),
                    )
            return
        for victim in sorted(confirmed):
            if managers[victim].switch.failed:
                continue
            for key in sorted(confirmed[victim], key=repr):
                source = self._authority_for(round_, key, victim)
                if source is None:
                    continue
                managers[source].switch.control.submit(
                    self._send_repair,
                    round_,
                    source,
                    victim,
                    key,
                    label="scrub-repair",
                )

    def _authority_for(
        self, round_: _ScrubRound, key: Any, victim: str
    ) -> Optional[str]:
        """Earliest chain member holding the majority hash for ``key``."""
        hashes = {
            member: round_.key_replies[member].get(key)
            for member in round_.members
            if member in round_.key_replies
        }
        counts: Dict[Any, int] = {}
        first_holder: Dict[Any, int] = {}
        for position, member in enumerate(round_.members):
            if member not in hashes:
                continue
            h = hashes[member]
            counts[h] = counts.get(h, 0) + 1
            first_holder.setdefault(h, position)
        if not counts:
            return None
        majority = max(counts, key=lambda h: (counts[h], -first_holder[h]))
        if majority is None:
            return None
        for member in round_.members:
            if member != victim and hashes.get(member) == majority:
                return member
        return None

    def _send_repair(
        self, round_: _ScrubRound, source: str, victim: str, key: Any
    ) -> None:
        """Authority-side: re-propagate (key, value, seq) to the victim."""
        manager = self.deployment.managers[source]
        if manager.switch.failed:
            return
        state = manager.sro.groups.get(round_.group_id)
        if state is None or key not in state.store:
            return
        if state.chain.version != round_.chain_version:
            return  # reconfigured since the round was fenced; drop
        slot = state.pending.slot_of(key)
        repair = ScrubRepair(
            group=round_.group_id,
            key=key,
            value=state.store[key],
            seq=state.pending.applied_seq(slot),
            slot=slot,
            source=source,
            epoch=state.chain.version,
            round_id=round_.round_id,
            key_bytes=round_.spec.key_bytes,
            value_bytes=round_.spec.value_bytes,
        )
        repair.trace = manager.causal.root()
        if self._flightrec_on:
            self._flightrec.record(
                repair.trace,
                "scrub.repair.send",
                source,
                self.sim.now,
                group=round_.group_id,
                key=key,
                victim=victim,
                seq=repair.seq,
                epoch=repair.epoch,
            )
        packet = Packet(
            swishmem=SwiShmemHeader(
                op=SwiShmemOp.SCRUB_REPAIR,
                register_group=round_.group_id,
                dst_node=victim,
            ),
            swishmem_payload=repair,
            trace=repair.trace,
        )
        self.stats.repairs_sent += 1
        self.stats.repair_bytes += packet.wire_size
        if self._metrics_on:
            self._m_repairs.inc()
            self._m_repair_bytes.inc(packet.wire_size)
        manager.switch.forward_to_node(packet, victim)

    def _force_sync(self, member: str, group_id: int, target: str) -> None:
        manager = self.deployment.managers[member]
        packets, sync_bytes = manager.ewo.force_sync(group_id, target)
        if packets:
            self.stats.forced_syncs += 1
            self.stats.repair_bytes += sync_bytes
            if self._metrics_on:
                self._m_repair_bytes.inc(sync_bytes)

    # ------------------------------------------------------------------
    # Fencing and deadline bookkeeping
    # ------------------------------------------------------------------
    def _fence_ok(self, round_: _ScrubRound) -> bool:
        leader = self.deployment.controller.active_leader()
        if leader is None or leader.epoch != round_.epoch:
            return False
        if round_.sro:
            chain = self.deployment.chains.get(round_.group_id)
            if chain is None or chain.version != round_.chain_version:
                # Chain gone (demoted to EWO mid-round) or reconfigured.
                return False
        elif not self.deployment.multicast.has(round_.group_id):
            return False  # fan-out gone (promoted to SRO mid-round)
        for member in round_.members:
            if self.deployment.managers[member].switch.failed:
                return False
        return True

    def _abort_round(self, round_: _ScrubRound, reason: str) -> None:
        round_.aborted = True
        self._rounds.pop(round_.group_id, None)
        self.stats.rounds_aborted += 1
        if self._metrics_on:
            self._m_aborted.inc()
        if self._flightrec_on:
            self._flightrec.record(
                self._causal.child(round_.trace),
                "scrub.round.abort",
                "scrub",
                self.sim.now,
                group=round_.group_id,
                round=round_.round_id,
                reason=reason,
            )
        # Scrubbing this group just failed through no fault of the
        # divergence: outstanding events get a fresh heal window.
        self._extend_deadlines(round_.group_id)

    def _extend_deadlines(self, group_id: Optional[int]) -> None:
        deadline = self.sim.now + self.heal_bound
        for event in self.deployment.divergence_log:
            if event.healed:
                continue
            if group_id is not None and event.group != group_id:
                continue
            self._extend_event(event, deadline)

    def _extend_event(self, event: DivergenceEvent, deadline: Optional[float] = None) -> None:
        if deadline is None:
            deadline = self.sim.now + self.heal_bound
        current = event.deadline if event.deadline is not None else event.at + self.heal_bound
        event.deadline = max(current, deadline)
