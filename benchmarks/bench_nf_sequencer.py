"""[N6] The in-network sequencer (paper section 9's hardest case).

Section 9: strongly consistent, per-packet-written state (NOPaxos-style
sequencers) is exactly what the base design cannot serve — writes would
go through the control plane.  This experiment runs the sequencer NF at
increasing packet rates on both write paths and audits:

* **correctness** — delivered packets carry unique, gap-free numbers
  regardless of which switch sequenced them;
* **throughput** — the control-plane variant collapses past the CPU
  ceiling (packets stall in DRAM awaiting commits), while the
  data-plane variant keeps sequencing at full rate;
* **cost** — CPU operations versus recirculation passes.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.net.packet import make_udp_packet
from repro.nf.sequencer import SequencerNF

from benchmarks.common import fmt_rate, print_header, print_table
from tests.nfworld import build_nf_world

SEQ_PORT = 9000
DURATION = 20e-3


@dataclass
class SequencerResult:
    path: str
    offered_pps: float
    delivered: int
    offered: int
    unique: bool
    gap_free_prefix: int
    cpu_ops: int
    recirculations: int


def run_point(dataplane: bool, offered_pps: float, seed: int = 47) -> SequencerResult:
    world = build_nf_world(
        seed=seed, cluster_size=3, clients=3, servers=1, responder_servers=False
    )
    world.deployment.install_nf(SequencerNF, sequenced_port=SEQ_PORT, dataplane=dataplane)
    sim, server = world.sim, world.servers[0]
    count = int(offered_pps * DURATION)
    for i in range(count):
        client = world.clients[i % len(world.clients)]
        sim.schedule(
            i / offered_pps,
            lambda c=client, p=5000 + i % 512: c.inject(
                make_udp_packet(c.ip, server.ip, p, SEQ_PORT, payload_size=64)
            ),
        )
    # delivery deadline: the offered window plus a short grace.  The
    # control-plane ceiling manifests as *backlog* (packets parked in
    # DRAM awaiting commits), so on-time delivery is the honest metric.
    sim.run(until=DURATION + 2e-3)
    on_time = len(server.received)
    sim.run(until=DURATION + 60e-3)  # drain for the correctness audit
    stamps = sorted(r.packet.ipv4.identification for r in server.received)
    gap_free = 0
    for expected, got in enumerate(stamps, start=1):
        if got != expected:
            break
        gap_free = expected
    return SequencerResult(
        path="data-plane" if dataplane else "control-plane",
        offered_pps=offered_pps,
        delivered=on_time,
        offered=count,
        unique=len(set(stamps)) == len(stamps),
        gap_free_prefix=gap_free,
        cpu_ops=sum(s.control.ops_executed for s in world.switches),
        recirculations=sum(
            world.deployment.manager(n).sro.dp_recirculations
            for n in world.deployment.switch_names
        ),
    )


def run_experiment() -> List[SequencerResult]:
    return [
        run_point(False, 5_000),
        run_point(True, 5_000),
        run_point(False, 100_000),  # well past the 50K/s CPU ceiling
        run_point(True, 100_000),
    ]


def report(results: List[SequencerResult]) -> None:
    print_header(
        "N6",
        "In-network sequencer: control-plane vs data-plane write path",
        "sequencers need strong consistency with per-packet writes — "
        "feasible only once buffering/retransmission move to the data plane",
    )
    print_table(
        ["write path", "offered", "delivered/offered", "unique", "gap-free prefix",
         "cpu ops", "recirculations"],
        [
            (
                r.path,
                fmt_rate(r.offered_pps),
                f"{r.delivered}/{r.offered}",
                r.unique,
                r.gap_free_prefix,
                r.cpu_ops,
                r.recirculations,
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_sequencer_shape(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    cp_low, dp_low, cp_high, dp_high = results
    # at low rate both deliver everything on time, perfectly numbered
    for r in (cp_low, dp_low):
        assert r.delivered == r.offered
        assert r.unique and r.gap_free_prefix == r.offered
    # past the CPU ceiling the control-plane variant falls behind the
    # deadline (packets stuck in DRAM awaiting their commits)...
    assert cp_high.delivered < 0.8 * cp_high.offered
    # ...while the data-plane variant sequences everything on time
    assert dp_high.delivered == dp_high.offered
    assert dp_high.unique and dp_high.gap_free_prefix == dp_high.offered
    assert dp_high.cpu_ops == 0 and cp_high.cpu_ops > 0


@pytest.mark.benchmark(group="nf")
def test_benchmark_sequencer(benchmark):
    benchmark.pedantic(lambda: run_point(True, 5_000), rounds=1, iterations=1)
