"""Bloom filter.

Used by the IPS (paper section 4.1) to match packet signatures against
the known-suspicious set entirely in the data plane: membership tests
are cheap, false positives cause at worst extra drops (acceptable for an
IPS), and the bit-array representation maps directly onto switch
register arrays.

The filter is mergeable by bitwise OR — idempotent and commutative, so
it replicates safely under EWO just like a CRDT.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable, List

__all__ = ["BloomFilter"]


def _bit_hash(seed: int, index: int, key: Hashable, nbits: int) -> int:
    digest = hashlib.blake2b(
        repr(key).encode("utf-8"),
        digest_size=8,
        salt=seed.to_bytes(8, "big"),
        person=index.to_bytes(8, "big"),
    ).digest()
    return int.from_bytes(digest, "big") % nbits


class BloomFilter:
    """A fixed-size Bloom filter with seeded hashing."""

    def __init__(self, nbits: int = 8192, num_hashes: int = 3, seed: int = 0) -> None:
        if nbits <= 0 or num_hashes <= 0:
            raise ValueError("filter dimensions must be positive")
        self.nbits = nbits
        self.num_hashes = num_hashes
        self.seed = seed
        self._bits: List[bool] = [False] * nbits
        self.items_added = 0

    @classmethod
    def for_capacity(cls, capacity: int, fp_rate: float = 0.01, seed: int = 0) -> "BloomFilter":
        """Size a filter for ``capacity`` items at ``fp_rate`` false positives."""
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        nbits = max(8, int(-capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        num_hashes = max(1, round(nbits / capacity * math.log(2)))
        return cls(nbits=nbits, num_hashes=num_hashes, seed=seed)

    def add(self, key: Hashable) -> None:
        self.items_added += 1
        for index in range(self.num_hashes):
            self._bits[_bit_hash(self.seed, index, key, self.nbits)] = True

    def __contains__(self, key: Hashable) -> bool:
        return all(
            self._bits[_bit_hash(self.seed, index, key, self.nbits)]
            for index in range(self.num_hashes)
        )

    def merge_or(self, other: "BloomFilter") -> bool:
        """Bitwise-OR merge; returns True if any bit was newly set."""
        if (self.nbits, self.num_hashes, self.seed) != (other.nbits, other.num_hashes, other.seed):
            raise ValueError("cannot merge incompatible Bloom filters")
        changed = False
        for i, bit in enumerate(other._bits):
            if bit and not self._bits[i]:
                self._bits[i] = True
                changed = True
        self.items_added = max(self.items_added, other.items_added)
        return changed

    def fill_ratio(self) -> float:
        return sum(self._bits) / self.nbits

    def copy(self) -> "BloomFilter":
        duplicate = BloomFilter(self.nbits, self.num_hashes, self.seed)
        duplicate._bits = list(self._bits)
        duplicate.items_added = self.items_added
        return duplicate

    def bits(self) -> List[bool]:
        return list(self._bits)

    @property
    def state_bytes(self) -> int:
        return (self.nbits + 7) // 8

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return (
            self.nbits == other.nbits
            and self.num_hashes == other.num_hashes
            and self.seed == other.seed
            and self._bits == other._bits
        )
