"""Causal trace contexts for cross-fabric message propagation.

A :class:`TraceContext` is a Dapper-style span identity plus a Lamport
timestamp.  Every protocol message (``WriteRequest``, ``ChainUpdate``,
``ControllerCommand``, ...) carries one in a zero-wire-cost ``trace``
field — like ``Packet.meta`` it is simulator-side bookkeeping, not
on-wire bytes, so stamping it never perturbs serialization delay,
event timing, or chaos-replay digests.

Identity allocation is deterministic: each node owns a
:class:`CausalClock` whose span ids are ``"<node>:<n>"`` with a
per-node counter, and whose Lamport value advances only on local
``tick`` / message ``observe``.  Two runs of the same seeded scenario
therefore produce byte-identical span trees — which is what lets the
flight recorder's output be asserted in tests rather than eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["TraceContext", "CausalClock"]


@dataclass(frozen=True)
class TraceContext:
    """Identity of one causal span: which trace, which span, whose child.

    ``lamport`` is the sender's logical clock at stamp time; receivers
    fold it into their own clock (``CausalClock.observe``) so causally
    later spans always carry strictly larger Lamport values, even
    across nodes with skewed simulated wall clocks.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    lamport: int

    def __str__(self) -> str:
        parent = self.parent_id if self.parent_id is not None else "-"
        return f"{self.trace_id}/{self.span_id}<-{parent}@L{self.lamport}"


class CausalClock:
    """Per-node Lamport clock + deterministic span-id allocator.

    One instance per switch manager and per controller replica.  All
    allocation is pure counter arithmetic — no RNG, no wall clock — so
    trace identity is a deterministic function of the event order the
    simulator already guarantees.
    """

    def __init__(self, node: str) -> None:
        self.node = node
        self.lamport = 0
        self._spans = 0
        self._traces = 0

    # -- Lamport maintenance ------------------------------------------

    def tick(self) -> int:
        """Advance for a local event; returns the new Lamport value."""
        self.lamport += 1
        return self.lamport

    def observe(self, remote_lamport: int) -> int:
        """Fold a received message's Lamport value into the local clock."""
        self.lamport = max(self.lamport, remote_lamport) + 1
        return self.lamport

    # -- context derivation -------------------------------------------

    def _next_span_id(self) -> str:
        self._spans += 1
        return f"{self.node}:{self._spans}"

    def root(self, trace_id: Optional[str] = None) -> TraceContext:
        """Start a brand-new trace (e.g. one SRO write, one election)."""
        if trace_id is None:
            self._traces += 1
            trace_id = f"T:{self.node}:{self._traces}"
        return TraceContext(trace_id, self._next_span_id(), None, self.tick())

    def child(self, parent: TraceContext) -> TraceContext:
        """Derive the receiving-side span for a message stamped ``parent``."""
        lamport = self.observe(parent.lamport)
        return TraceContext(parent.trace_id, self._next_span_id(), parent.span_id, lamport)

    def sibling(self, context: TraceContext) -> TraceContext:
        """A further local span under the same parent (fan-out stamping)."""
        return TraceContext(
            context.trace_id, self._next_span_id(), context.parent_id, self.tick()
        )


def clock_registry() -> Dict[str, CausalClock]:
    """Convenience factory for deployments tracking one clock per node."""
    return {}
