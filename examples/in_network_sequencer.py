#!/usr/bin/env python
"""An in-network sequencer — the paper's hardest case, solved (§9).

Section 9: "applications that require frequent writes and strong
consistency are rare among traditional NFs, but some new in-network
applications like sequencers have such data.  A way to implement
buffering and retransmission in the data plane … would enable this
support."

This example composes the two §9 extensions this reproduction built:

* linearizable **fetch-add** — the chain head assigns each packet the
  next global number, wherever the packet entered;
* **data-plane write buffering** — the packet recirculates until the
  chain commits, so no control-plane CPU touches the fast path.

Packets from four clients are sequenced, delivered, and audited:
unique, gap-free, and zero CPU operations across all switches.

Run:  python examples/in_network_sequencer.py
"""

import os
import sys

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.net.packet import make_udp_packet
from repro.nf.sequencer import SequencerNF

from repro.testing import build_nf_world

PACKETS = 24
SEQ_PORT = 9000


def main() -> None:
    world = build_nf_world(
        seed=31, cluster_size=3, clients=4, servers=1, responder_servers=False
    )
    world.deployment.install_nf(SequencerNF, sequenced_port=SEQ_PORT, dataplane=True)
    sim, server = world.sim, world.servers[0]

    for i in range(PACKETS):
        client = world.clients[i % len(world.clients)]
        sim.schedule(
            i * 60e-6,
            lambda c=client, p=5000 + i: c.inject(
                make_udp_packet(c.ip, server.ip, p, SEQ_PORT, payload_size=64)
            ),
        )
    sim.run(until=0.1)

    stamps = [(r.packet.ipv4.identification, r.packet.five_tuple().src_ip)
              for r in server.received]
    print(f"delivered {len(stamps)}/{PACKETS} sequenced packets:\n")
    for number, src in sorted(stamps):
        print(f"  seq {number:>3}  from {src}")

    numbers = sorted(n for n, _ in stamps)
    gap_free = numbers == list(range(1, PACKETS + 1))
    cpu_ops = sum(s.control.ops_executed for s in world.switches)
    spec = world.deployment.spec_by_name("seq_counter")
    recircs = sum(
        world.deployment.manager(name).sro.dp_recirculations
        for name in world.deployment.switch_names
    )
    print(f"\nunique: {len(set(numbers)) == PACKETS}, "
          f"gap-free 1..{PACKETS}: {gap_free}")
    print(f"control-plane CPU operations across all switches: {cpu_ops}")
    print(f"recirculation passes spent holding packets: {recircs} "
          f"(~{recircs / PACKETS:.0f} per packet — the pipeline-slot cost "
          f"of CPU-free strong consistency)")


if __name__ == "__main__":
    main()
