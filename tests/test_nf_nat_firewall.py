"""Tests for the NAT and stateful firewall NFs."""

from __future__ import annotations

import pytest

from repro.net.headers import TcpFlags
from repro.net.packet import make_tcp_packet
from repro.nf.firewall import ConnState, FirewallNF
from repro.nf.nat import NAT_PORT_BASE, NatNF

from tests.nfworld import build_nf_world


NAT_IP = "100.0.0.1"


def nat_world(**kwargs):
    world = build_nf_world(**kwargs)
    # the NAT's public IP terminates at the egress side of the cluster
    world.book.register(NAT_IP, "egress")
    nats = world.deployment.install_nf(NatNF, nat_ip=NAT_IP)
    return world, nats


class TestNat:
    def test_outbound_rewritten_to_nat_ip(self):
        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.05)
        assert len(server.received) == 1
        rewritten = server.received[0].packet
        assert rewritten.ipv4.src == NAT_IP
        assert rewritten.tcp.src_port >= NAT_PORT_BASE

    def test_reply_translated_back(self):
        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        # responder server answered to the NAT IP; the NAT translated it back
        assert len(client.received) == 1
        reply = client.received[0].packet
        assert reply.ipv4.dst == client.ip
        assert reply.tcp.dst_port == 1111
        assert reply.tcp.flags & TcpFlags.SYN and reply.tcp.flags & TcpFlags.ACK

    def test_mapping_reused_for_same_connection(self):
        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, payload_size=64))
        world.sim.run(until=0.2)
        ports = {r.packet.tcp.src_port for r in server.received}
        assert len(ports) == 1  # same NAT port both times
        assert sum(n.ports_allocated for n in nats) == 1

    def test_distinct_connections_get_distinct_ports(self):
        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        client.inject(make_tcp_packet(client.ip, server.ip, 2222, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.2)
        ports = {r.packet.tcp.src_port for r in server.received}
        assert len(ports) == 2

    def test_unsolicited_inbound_dropped(self):
        world, nats = nat_world()
        server = world.servers[0]
        # a server-side host probes a random NAT port with no mapping
        server.inject(make_tcp_packet(server.ip, NAT_IP, 80, NAT_PORT_BASE + 5, flags=TcpFlags.SYN))
        world.sim.run(until=0.05)
        dropped = sum(n.stats.dropped for n in nats)
        assert dropped == 1

    def test_port_ranges_disjoint_per_switch(self):
        world, nats = nat_world()
        ranges = [(n._next_port, n._port_limit) for n in nats]
        for i, (lo_a, hi_a) in enumerate(ranges):
            for lo_b, hi_b in ranges[i + 1 :]:
                assert hi_a <= lo_b or hi_b <= lo_a

    def test_table_replicated_everywhere(self):
        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        spec = world.deployment.spec_by_name("nat_table")
        stores = world.deployment.sro_stores(spec)
        assert all(len(store) == 2 for store in stores)  # forward + reverse

    def test_mapping_survives_assigning_switch_failure(self):
        """The paper's failure argument: state must outlive its writer."""
        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        # whichever cluster switch handled it, fail the ingress path's
        # first NF switch; the mapping is on every replica
        victim = world.cluster[0].name
        world.deployment.controller.note_failure_time(victim)
        world.deployment.fail_switch(victim)
        world.sim.run(until=0.15)
        client.inject(make_tcp_packet(client.ip, server.ip, 1111, 80, payload_size=10))
        world.sim.run(until=0.3)
        ports = {r.packet.tcp.src_port for r in server.received}
        assert len(ports) == 1  # translation unchanged across the failure


class TestNatUdp:
    def test_udp_translated_both_ways(self):
        from repro.net.packet import make_udp_packet

        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_udp_packet(client.ip, server.ip, 5353, 53, payload_size=40))
        world.sim.run(until=0.1)
        assert len(server.received) == 1
        outbound = server.received[0].packet
        assert outbound.ipv4.src == NAT_IP
        assert outbound.udp.src_port >= NAT_PORT_BASE
        # craft the server's reply manually (UDP responder not modeled)
        server.inject(
            make_udp_packet(server.ip, NAT_IP, 53, outbound.udp.src_port, payload_size=40)
        )
        world.sim.run(until=0.2)
        assert len(client.received) == 1
        reply = client.received[0].packet
        assert reply.ipv4.dst == client.ip and reply.udp.dst_port == 5353

    def test_tcp_and_udp_mappings_distinct(self):
        from repro.net.packet import make_udp_packet

        world, nats = nat_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 7000, 80, flags=TcpFlags.SYN))
        client.inject(make_udp_packet(client.ip, server.ip, 7000, 53))
        world.sim.run(until=0.2)
        # same source port, different protocols -> two separate mappings
        spec = world.deployment.spec_by_name("nat_table")
        forward_keys = [
            key for key in world.deployment.sro_stores(spec)[0] if key[0] == "f"
        ]
        assert len(forward_keys) == 2


def firewall_world(**kwargs):
    world = build_nf_world(**kwargs)
    firewalls = world.deployment.install_nf(FirewallNF)
    return world, firewalls


class TestFirewall:
    def test_outbound_syn_opens_connection(self):
        world, firewalls = firewall_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        assert len(server.received) == 1
        # server's SYN|ACK was allowed back through
        assert len(client.received) == 1
        spec = world.deployment.spec_by_name("fw_conntrack")
        state = world.deployment.sro_stores(spec)[0]
        assert ConnState.ESTABLISHED in state.values()

    def test_unsolicited_inbound_dropped(self):
        world, firewalls = firewall_world()
        client, server = world.clients[0], world.servers[0]
        server.inject(make_tcp_packet(server.ip, client.ip, 80, 1000, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        assert client.received == []
        assert sum(f.stats.dropped for f in firewalls) == 1

    def test_inbound_after_close_dropped(self):
        world, firewalls = firewall_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.RST))
        world.sim.run(until=0.2)
        baseline = len(client.received)
        server.inject(make_tcp_packet(server.ip, client.ip, 80, 1000, payload_size=10))
        world.sim.run(until=0.3)
        assert len(client.received) == baseline  # late server data blocked

    def test_established_data_flows_both_ways(self):
        world, firewalls = firewall_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        client.inject(
            make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.ACK | TcpFlags.PSH, payload_size=100)
        )
        world.sim.run(until=0.2)
        assert len(server.received) == 2
        # server's ACK for the data came back
        assert len(client.received) == 2

    def test_state_checked_on_every_packet(self):
        world, firewalls = firewall_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, flags=TcpFlags.SYN))
        world.sim.run(until=0.1)
        spec = world.deployment.spec_by_name("fw_conntrack")
        reads_before = sum(
            world.deployment.manager(n).sro.stats_for(spec.group_id).local_reads
            + world.deployment.manager(n).sro.stats_for(spec.group_id).tail_reads
            for n in world.deployment.switch_names
        )
        client.inject(make_tcp_packet(client.ip, server.ip, 1000, 80, payload_size=10))
        world.sim.run(until=0.2)
        reads_after = sum(
            world.deployment.manager(n).sro.stats_for(spec.group_id).local_reads
            + world.deployment.manager(n).sro.stats_for(spec.group_id).tail_reads
            for n in world.deployment.switch_names
        )
        assert reads_after > reads_before

    def test_non_tcp_not_policed(self):
        from repro.net.packet import make_udp_packet

        world, firewalls = firewall_world()
        client, server = world.clients[0], world.servers[0]
        client.inject(make_udp_packet(client.ip, server.ip, 500, 53))
        world.sim.run(until=0.05)
        assert len(server.received) == 1
