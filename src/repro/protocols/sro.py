"""The read-optimized replication protocols: SRO and ERO (paper section 6.1).

SRO adapts chain replication to the in-switch setting:

* **Writes** never apply immediately at the writer.  The output packet
  P' and the write set Q are punted to the writer's control plane, which
  buffers P' in DRAM, sends a ``WriteRequest`` to the chain head, and
  retries on timeout (the data plane cannot buffer or run timers).

* The **head** assigns a per-slot sequence number (slots may be shared
  between keys, section 7), applies the write, sets the pending bit, and
  propagates a ``ChainUpdate`` down the chain.  Each member applies
  in-order updates, sets its pending bit, and forwards; duplicates are
  forwarded without re-applying, gaps are dropped (the writer's retry
  recovers them).

* The **tail** (last member) applies and emits ``WriteAck`` packets to
  the writer — whose control plane releases the buffered output — and to
  every other member, which clear their pending bits.  Ack processing is
  pure data plane (paper section 3.3's atomic multi-location write).

* **Reads** are local when the key's pending bit is clear.  Otherwise
  the input packet is forwarded to the read tail and re-processed there
  against the latest committed state (the CRAQ-derived optimization).

**ERO** shares the entire write path but always reads locally: no
pending bits are kept (saving their memory), reads have bounded latency,
and consistency drops to eventual during write propagation.

SRO writes have *register semantics* (full-value overwrite), which makes
the at-least-once delivery of the retry path safe: re-applying a write
under a fresh sequence number is idempotent with respect to the stored
value.  The head additionally keeps a token dedup table so a retry whose
original request did arrive re-propagates the original sequence number
instead of double-sequencing.

Failure handling (section 6.3) lives in ``repro.protocols.failover``;
this engine exposes the hooks it needs: descriptor swaps, catch-up mode
(gap-tolerant apply), and control-plane snapshots.
"""

from __future__ import annotations

import itertools

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.chain import ChainDescriptor
from repro.core.pending import PendingTable
from repro.core.registers import Consistency, FetchAdd, ReadForwarded, RegisterSpec
from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.protocols.messages import ChainUpdate, WriteAck, WriteRequest, WriteToken
from repro.switch.pisa import RECIRCULATION_LATENCY

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemManager

__all__ = ["SroEngine", "SroGroupState", "SroStats"]

#: Control-plane retry timeout for unacknowledged writes.
DEFAULT_WRITE_TIMEOUT = 2e-3
#: Exponential backoff cap.
MAX_WRITE_TIMEOUT = 50e-3
#: Give up after this many attempts (a write that cannot commit through
#: a repaired chain indicates a partitioned deployment).
MAX_WRITE_ATTEMPTS = 25


def _retry_horizon() -> float:
    """Upper bound on how long after first send a retry can still arrive.

    Sum of every backoff interval the writer can sleep through before
    giving up, stretched by the maximum jitter factor (1.5x).  A dedup
    entry older than this belongs to a write whose retries have all
    fired (or whose writer gave up), so evicting it cannot cause a
    duplicate re-sequencing.
    """
    total, timeout = 0.0, DEFAULT_WRITE_TIMEOUT
    for _ in range(MAX_WRITE_ATTEMPTS):
        total += min(MAX_WRITE_TIMEOUT, timeout)
        timeout *= 2
    return 1.5 * total


#: See :func:`_retry_horizon`.
RETRY_HORIZON = _retry_horizon()


@dataclass
class _OutstandingWrite:
    """Writer-side control-plane state for one in-flight write."""

    request: WriteRequest
    timer: Any = None
    started_at: float = 0.0
    attempts: int = 0
    #: Number of writes from the same packet still unacked (the output
    #: packet releases when the *last* one commits).
    barrier: Optional["_PacketBarrier"] = None


@dataclass
class _PacketBarrier:
    """Joins the multiple writes of one packet's write set Q."""

    token: Optional[WriteToken]
    remaining: int
    #: committed values by key (fetch-add results ride the acks)
    results: Dict[Any, Any] = field(default_factory=dict)
    #: called with (output_packet, results) just before the output is
    #: released — the hook sequencer-style NFs use to stamp the packet
    on_release: Optional[Any] = None


@dataclass
class _DataplaneHold:
    """An output packet 'buffered' by recirculation (section 9 variant).

    The packet never leaves the pipeline: every RECIRCULATION_LATENCY it
    takes another pass (costing a pipeline slot, which we account), and
    periodically the data plane retransmits the write requests it is
    waiting on — buffering and retransmission with no CPU involvement.
    """

    token: WriteToken
    packet: Optional[Any]
    dst_node: Optional[str]
    write_tokens: List[WriteToken]
    started_at: float
    recirculations: int = 0
    resends: int = 0


#: Recirculations between data-plane retransmissions of an unacked write
#: (64 passes x 800 ns ~ 51 us, a few chain RTTs).
DP_RESEND_EVERY = 64
#: Give up after this many data-plane retransmissions.
DP_MAX_RESENDS = 200


class SroStats:
    """Per-group protocol counters on one switch."""

    __slots__ = (
        "writes_initiated",
        "writes_committed",
        "writes_failed",
        "retries",
        "local_reads",
        "forwarded_reads",
        "tail_reads",
        "chain_updates_seen",
        "duplicate_updates",
        "out_of_order_drops",
        "reorder_stashed",
        "reorder_applied",
        "fenced_updates",
        "acks_seen",
        "write_latency_sum",
        "write_latency_samples",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def record_write_latency(self, latency: float) -> None:
        self.write_latency_sum += latency
        self.write_latency_samples += 1

    @property
    def mean_write_latency(self) -> float:
        if not self.write_latency_samples:
            return 0.0
        return self.write_latency_sum / self.write_latency_samples

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.__slots__}


class SroGroupState:
    """One register group's replica state on one switch."""

    def __init__(self, spec: RegisterSpec, budget, chain: ChainDescriptor) -> None:
        self.spec = spec
        self.chain = chain
        #: The backing store.  For ``control_plane_state`` groups this
        #: models a P4 table; otherwise a register array.  Either way the
        #: data-plane memory footprint is capacity * (key + value) bytes.
        budget.allocate(
            f"sro-store:{spec.name}", spec.capacity * (spec.key_bytes + spec.value_bytes)
        )
        self.store: Dict[Any, Any] = {}
        track_pending = spec.consistency is Consistency.SRO
        self.pending = PendingTable(
            spec.name, spec.effective_pending_slots(), budget
        )
        self.track_pending = track_pending
        # Head-side dedup: token -> (seq, slot, assigned value, epoch,
        # remembered-at).  The assigned value matters for fetch-add
        # retries: re-sequencing a duplicate must re-propagate the
        # original result, not add again.  The epoch (the chain version
        # at remember time) bounds the table's lifetime: entries from
        # configurations two or more reconfigurations old are eagerly
        # evicted on descriptor install — but only once they are also
        # past the writer retry horizon, because under churn (lossy
        # control links flapping the leader) versions can advance far
        # faster than a writer's backoff schedule drains.  The FIFO
        # capacity bound backstops both.
        self.dedup: "OrderedDict[WriteToken, Tuple[int, int, Any, int, float]]" = OrderedDict()
        self.dedup_capacity = max(64, spec.capacity // 4)
        self.dedup_evictions = 0
        budget.allocate(
            f"sro-dedup:{spec.name}", self.dedup_capacity * (12 + spec.value_bytes)
        )
        #: Catch-up mode: gap-tolerant apply during recovery (section 6.3).
        self.catching_up = False
        #: Bounded reorder stash: (slot, seq) -> ChainUpdate held until
        #: its gap fills.  A delayed/reordered update used to be dropped
        #: on arrival, leaving every later sequence number to heal one
        #: writer-retry round at a time — under bursty write-per-packet
        #: load a single reordered packet convoyed the whole slot behind
        #: exponential backoffs until writers exhausted their attempts
        #: and wedged the chain permanently.  Holding the update for the
        #: one missing predecessor instead heals in transit.  Modeled as
        #: recirculation (the update keeps a pipeline pass, like the
        #: section 9 buffering variant), so it costs no register budget;
        #: FIFO-bounded, stale entries are evicted first.
        self.reorder: "OrderedDict[Tuple[int, int], Any]" = OrderedDict()
        self.reorder_capacity = 64
        self.stats = SroStats()
        #: Chaos hook (``FaultInjector.drop_chain_applies``): while > 0,
        #: this member's dataplane silently loses chain-update applies
        #: (the update still cuts through to the successor).
        self.chaos_drop_applies = 0
        self.chaos_dropped_applies = 0
        #: Chaos hook (``FaultInjector.stale_replica``): until this sim
        #: time, chain applies are silently lost the same way — a frozen
        #: apply unit serving increasingly stale state.
        self.chaos_frozen_until = 0.0
        self.chaos_frozen_drops = 0

    def remember_token(
        self, token: WriteToken, seq: int, slot: int, value: Any, now: float
    ) -> int:
        """Record a sequenced token; returns FIFO evictions made for room."""
        if token in self.dedup:
            return 0
        evicted = 0
        if len(self.dedup) >= self.dedup_capacity:
            self.dedup.popitem(last=False)
            self.dedup_evictions += 1
            evicted = 1
        self.dedup[token] = (seq, slot, value, self.chain.version, now)
        return evicted

    def evict_dedup_epochs(self, current_version: int, now: float) -> int:
        """Epoch-based eviction: drop tokens remembered two or more chain
        configurations ago AND past the writer retry horizon.  Such a
        token's write is either long committed (the writer was acked or
        gave up) and no retry can still arrive, so re-sequencing cannot
        happen.  The epoch-distance condition alone is not enough:
        leader churn can advance versions every few milliseconds while
        a backed-off writer legitimately retries for much longer."""
        stale = [
            token
            for token, entry in self.dedup.items()
            if entry[3] < current_version - 1 and now - entry[4] > RETRY_HORIZON
        ]
        for token in stale:
            del self.dedup[token]
        self.dedup_evictions += len(stale)
        return len(stale)


class SroEngine:
    """Per-switch SRO/ERO protocol engine."""

    def __init__(self, manager: "SwiShmemManager") -> None:
        self.manager = manager
        self.switch = manager.switch
        self.sim = manager.sim
        self.groups: Dict[int, SroGroupState] = {}
        self._outstanding: Dict[WriteToken, _OutstandingWrite] = {}
        # Per-engine token sequence (not the module-global counter):
        # tokens already embed the writer name, so a per-switch sequence
        # keeps them unique within a deployment while making same-seed
        # replays produce byte-identical tokens — and hence identical
        # flight-recorder span trees — regardless of what else ran in
        # the process beforehand.
        self._token_seq = itertools.count(1)
        self.write_timeout = DEFAULT_WRITE_TIMEOUT
        # Seeded jitter for retry backoff: after a loss burst kills many
        # writes in the same instant, pure exponential backoff would
        # retry them all in the same instant too (a thundering herd at
        # the head).  A per-switch named stream keeps replays
        # byte-identical per seed.
        self._backoff_rng = manager.rng.stream(f"sro-backoff:{self.switch.name}")
        self._bind_observability()
        self._dedup_evictions_reported = 0
        # Data-plane write-buffering state and accounting (section 9).
        self._dp_holds: Dict[WriteToken, _DataplaneHold] = {}
        self.dp_holds_created = 0
        self.dp_recirculations = 0
        self.dp_resends = 0
        self.dp_drops = 0

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks.

        Called at construction and again by
        ``Deployment.rebind_observability``; engines deliberately cache
        these (hot-path flag checks), so any late hook swap must go
        through the rebind API rather than assigning deployment
        attributes directly.
        """
        # Live telemetry (repro.obs): engine-level gauges plus per-group
        # instruments bound in add_group; all of it degrades to no-op
        # singletons when metrics are off.
        metrics = self.manager.deployment.metrics
        self._metrics_on = metrics.enabled
        # Causal tracing (repro.obs.causal / flightrec): contexts are
        # stamped unconditionally (pure counters, digest-neutral), span
        # *recording* is gated on the deployment's flight recorder.
        self._causal = self.manager.causal
        self._flightrec = self.manager.deployment.flight_recorder
        self._flightrec_on = self._flightrec.enabled
        # Access-pattern profiler (repro.obs.accessprof): write initiates
        # and chain applies feed it; passive and digest-neutral.
        self._accessprof = self.manager.deployment.access_profiler
        self._accessprof_on = self._accessprof.enabled
        # Live SLO monitor (repro.obs.slo): commit latencies and write
        # outcomes feed it; passive and digest-neutral.
        self._slo = self.manager.deployment.slo_monitor
        self._slo_on = self._slo.enabled
        self._m_outstanding = metrics.gauge("sro.outstanding_writes", self.switch.name)
        self._m_pending = metrics.gauge("sro.pending_bits", self.switch.name)
        self._m_commit_latency = metrics.histogram(
            "sro.write_commit_latency_seconds", self.switch.name
        )
        self._m_reads_local = metrics.counter("sro.reads_local", self.switch.name)
        self._m_reads_forwarded = metrics.counter("sro.reads_forwarded", self.switch.name)
        self._m_reads_tail = metrics.counter("sro.reads_tail", self.switch.name)
        self._m_retries = metrics.counter("sro.write_retries", self.switch.name)
        self._m_dedup_occupancy = metrics.gauge("sro.dedup_occupancy", self.switch.name)
        self._m_dedup_evictions = metrics.counter("sro.dedup_evictions", self.switch.name)

    # ------------------------------------------------------------------
    # Group lifecycle
    # ------------------------------------------------------------------
    def add_group(self, spec: RegisterSpec, chain: ChainDescriptor) -> SroGroupState:
        state = SroGroupState(spec, self.switch.memory, chain)
        self.groups[spec.group_id] = state
        return state

    def remove_group(self, group_id: int) -> int:
        """Detach a group from this engine (re-level teardown).

        The re-leveling coordinator only switches a drained group, so in
        the normal path nothing is in flight; if a write *is* still
        outstanding (a crashed writer's abandoned retry), its timer is
        cancelled and any buffered packet dropped, mirroring
        ``_give_up``.  Frees the group's memory budget.  Removing an
        absent group is a no-op so a resumed handoff can replay the
        command.  Returns the number of abandoned writes.
        """
        state = self.groups.pop(group_id, None)
        if state is None:
            return 0
        doomed = [
            token
            for token, outstanding in self._outstanding.items()
            if outstanding.request.group == group_id
        ]
        for token in doomed:
            outstanding = self._outstanding.pop(token)
            if outstanding.timer is not None:
                outstanding.timer.cancel()
            barrier = outstanding.barrier
            if barrier is not None and barrier.token is not None:
                self._dp_holds.pop(barrier.token, None)
                self.switch.control.drop_buffered(barrier.token)
        if self._metrics_on:
            self._m_outstanding.set(len(self._outstanding))
            still_pending = state.pending.pending_count()
            if state.track_pending and still_pending:
                self._m_pending.dec(still_pending)
        budget = self.switch.memory
        budget.release(f"sro-store:{state.spec.name}")
        budget.release(f"sro-dedup:{state.spec.name}")
        budget.release(f"pending:{state.spec.name}")
        return len(doomed)

    def quiesced(self, group_id: int) -> bool:
        """True when the group has no write in flight on this switch:
        no pending bit set and no outstanding writer state.  The drain
        phase of a re-level polls this on every member."""
        state = self.groups.get(group_id)
        if state is None:
            return True
        if state.pending.pending_count():
            return False
        return not any(
            outstanding.request.group == group_id
            for outstanding in self._outstanding.values()
        )

    def set_track_pending(self, group_id: int, value: bool) -> None:
        """Flip SRO<->ERO pending-bit tracking for a live group.

        Turning tracking off (SRO -> ERO) clears every pending bit so
        reads stop forwarding on stale in-flight markers."""
        state = self.groups[group_id]
        if state.track_pending == value:
            return
        state.track_pending = value
        if not value:
            cleared = state.pending.clear_all()
            if cleared and self._metrics_on:
                self._m_pending.dec(cleared)

    def set_chain(self, group_id: int, chain: ChainDescriptor) -> None:
        """Install a new chain descriptor (controller reconfiguration)."""
        state = self.groups[group_id]
        if chain.version >= state.chain.version:
            advanced = chain.version > state.chain.version
            state.chain = chain
            if advanced and state.dedup:
                evicted = state.evict_dedup_epochs(chain.version, self.sim.now)
                if evicted and self._metrics_on:
                    self._m_dedup_evictions.inc(evicted)
                    self._dedup_evictions_reported += evicted
                    self._m_dedup_occupancy.set(
                        sum(len(g.dedup) for g in self.groups.values())
                    )

    def set_catching_up(self, group_id: int, value: bool) -> None:
        self.groups[group_id].catching_up = value

    # ------------------------------------------------------------------
    # Read path (paper 6.1 "Reads")
    # ------------------------------------------------------------------
    def read(self, spec: RegisterSpec, key: Any, default: Any, packet: Optional[Packet]) -> Any:
        state = self.groups[spec.group_id]
        at_tail = (
            packet is not None
            and spec.group_id in packet.meta.get("at_tail_groups", ())
        )
        if self.switch.name == state.chain.read_tail or at_tail:
            state.stats.tail_reads += 1
            if self._metrics_on:
                self._m_reads_tail.inc()
            return state.store.get(key, default if default is not None else spec.default)
        if state.track_pending:
            slot = state.pending.slot_of(key)
            if state.pending.is_pending(slot):
                if packet is None:
                    # Control-plane read with a write in flight: serve the
                    # local copy (peek semantics); only data-plane reads
                    # forward packets.
                    state.stats.local_reads += 1
                    if self._metrics_on:
                        self._m_reads_local.inc()
                    return state.store.get(key, default if default is not None else spec.default)
                state.stats.forwarded_reads += 1
                if self._metrics_on:
                    self._m_reads_forwarded.inc()
                self._forward_read(state, packet)
                raise ReadForwarded(spec.group_id, key, state.chain.read_tail)
        state.stats.local_reads += 1
        if self._metrics_on:
            self._m_reads_local.inc()
        return state.store.get(key, default if default is not None else spec.default)

    def _forward_read(self, state: SroGroupState, packet: Packet) -> None:
        """Encapsulate the input packet toward the read tail (CRAQ read)."""
        packet.swishmem = SwiShmemHeader(
            op=SwiShmemOp.READ_FORWARD,
            register_group=state.spec.group_id,
            dst_node=state.chain.read_tail,
        )
        packet.swishmem_payload = None
        packet.trace = self._causal.root()
        if self._flightrec_on:
            self._flightrec.record(
                packet.trace,
                "sro.read.forward",
                self.switch.name,
                self.sim.now,
                group=state.spec.group_id,
                next_hop=state.chain.read_tail,
            )
        self.switch.forward_to_node(packet, state.chain.read_tail)

    def handle_read_forward(self, packet: Packet, group_id: int) -> bool:
        """At the read tail: decapsulate and let the NF re-process locally.

        Returns False so the switch continues to the NF handlers — with
        the packet marked so this group's reads are served locally.
        """
        state = self.groups.get(group_id)
        if state is None:
            return True  # not replicated here (misrouted); drop
        if self.switch.name != state.chain.read_tail:
            # Chain moved under the packet; chase the current tail.
            if packet.trace is not None:
                packet.trace = self._causal.child(packet.trace)
                if self._flightrec_on:
                    self._flightrec.record(
                        packet.trace,
                        "sro.read.chase",
                        self.switch.name,
                        self.sim.now,
                        group=group_id,
                        next_hop=state.chain.read_tail,
                    )
            packet.swishmem.dst_node = state.chain.read_tail
            self.switch.forward_to_node(packet, state.chain.read_tail)
            return True
        if self._flightrec_on and packet.trace is not None:
            self._flightrec.record(
                self._causal.child(packet.trace),
                "sro.read.tail",
                self.switch.name,
                self.sim.now,
                group=group_id,
            )
        packet.swishmem = None
        packet.meta.setdefault("at_tail_groups", set()).add(group_id)
        return False

    # ------------------------------------------------------------------
    # Write path, writer side (paper 6.1 "Writes")
    # ------------------------------------------------------------------
    def _build_request(self, spec: RegisterSpec, key: Any, value: Any) -> WriteRequest:
        """Build a request, translating FetchAdd markers into RMW requests."""
        rmw_delta = value.amount if isinstance(value, FetchAdd) else None
        request = WriteRequest(
            group=spec.group_id,
            key=key,
            value=None if rmw_delta is not None else value,
            token=WriteToken(self.switch.name, next(self._token_seq)),
            key_bytes=spec.key_bytes,
            value_bytes=spec.value_bytes,
            rmw_delta=rmw_delta,
        )
        # Every SRO write starts a fresh trace rooted at the writer.
        request.trace = self._causal.root()
        if self._flightrec_on:
            self._flightrec.record(
                request.trace,
                "sro.write.initiate",
                self.switch.name,
                self.sim.now,
                group=spec.group_id,
                key=key,
                token=str(request.token),
            )
        return request

    def initiate_writes(
        self,
        writes: List[Tuple[RegisterSpec, Any, Any]],
        output_packet: Optional[Packet],
        output_dst: Optional[str],
        on_release=None,
        origin: str = "dataplane",
    ) -> None:
        """Punt P' and the write set Q to the control plane.

        ``writes`` is [(spec, key, value)].  The output packet (if any)
        is buffered until every write in the set commits.  ``origin``
        records who initiated the set — ``"dataplane"`` for packet
        passes, ``"control"`` for management-API writes — purely for the
        access profiler (the protocol treats both identically).

        Groups declared with ``dataplane_write_buffering`` take the
        recirculation path instead (no CPU); a mixed write set falls
        back to the conservative control-plane path for everything.
        """
        if not writes:
            return
        if all(spec.dataplane_write_buffering for spec, _, _ in writes):
            self._initiate_dataplane(writes, output_packet, output_dst, on_release, origin)
            return
        barrier_token = WriteToken(self.switch.name, next(self._token_seq))
        barrier = _PacketBarrier(
            barrier_token, remaining=len(writes), on_release=on_release
        )
        if output_packet is not None and output_dst is not None:
            self.switch.control.buffer_packet(barrier_token, output_packet, output_dst)
        else:
            barrier.token = None  # nothing to release
        for spec, key, value in writes:
            state = self.groups[spec.group_id]
            state.stats.writes_initiated += 1
            if self._accessprof_on:
                self._accessprof.on_write(
                    spec.group_id,
                    key,
                    self.switch.name,
                    self.sim.now,
                    origin=origin,
                    op="fetch_add" if isinstance(value, FetchAdd) else "overwrite",
                )
            request = self._build_request(spec, key, value)
            outstanding = _OutstandingWrite(
                request=request, started_at=self.sim.now, barrier=barrier
            )
            self._outstanding[request.token] = outstanding
            self.manager.on_write_initiated(spec, key, value, request.token)
            # The punt itself costs one control-plane op.
            self.switch.control.submit(
                self._send_write_request, request.token, label="sro-write-send"
            )
        if self._metrics_on:
            self._m_outstanding.set(len(self._outstanding))

    # ------------------------------------------------------------------
    # Data-plane write buffering (section 9 open question, realized)
    # ------------------------------------------------------------------
    def _initiate_dataplane(
        self,
        writes: List[Tuple[RegisterSpec, Any, Any]],
        output_packet: Optional[Packet],
        output_dst: Optional[str],
        on_release=None,
        origin: str = "dataplane",
    ) -> None:
        barrier_token = WriteToken(self.switch.name, next(self._token_seq))
        barrier = _PacketBarrier(
            barrier_token, remaining=len(writes), on_release=on_release
        )
        write_tokens: List[WriteToken] = []
        for spec, key, value in writes:
            state = self.groups[spec.group_id]
            state.stats.writes_initiated += 1
            if self._accessprof_on:
                self._accessprof.on_write(
                    spec.group_id,
                    key,
                    self.switch.name,
                    self.sim.now,
                    origin=origin,
                    op="fetch_add" if isinstance(value, FetchAdd) else "overwrite",
                )
            request = self._build_request(spec, key, value)
            outstanding = _OutstandingWrite(
                request=request, started_at=self.sim.now, barrier=barrier
            )
            self._outstanding[request.token] = outstanding
            write_tokens.append(request.token)
            self.manager.on_write_initiated(spec, key, value, request.token)
            self._dp_send_request(request)
        if self._metrics_on:
            self._m_outstanding.set(len(self._outstanding))
        # A hold always exists: it is both the output buffer *and* the
        # data-plane retransmission timer.  Writes with no output packet
        # (control-plane-originated) recirculate a generated marker
        # packet instead, discarded at release.
        hold = _DataplaneHold(
            token=barrier_token,
            packet=output_packet,
            dst_node=output_dst if output_packet is not None else None,
            write_tokens=write_tokens,
            started_at=self.sim.now,
        )
        self._dp_holds[barrier_token] = hold
        self.dp_holds_created += 1
        self.sim.schedule(
            RECIRCULATION_LATENCY, self._dp_tick, barrier_token, label="sro-dp-hold"
        )

    def _dp_send_request(self, request: WriteRequest) -> None:
        """Emit a write request from the data plane — no CPU involved."""
        state = self.groups.get(request.group)
        if state is None or self.switch.failed:
            return
        head = state.chain.head
        self._stamp_send(request, head, dataplane=True)
        if head == self.switch.name:
            self.sim.call_soon(self._receive_write_request, request, label="sro-dp-self-head")
            return
        packet = Packet(
            swishmem=SwiShmemHeader(
                op=SwiShmemOp.WRITE_REQUEST, register_group=request.group, dst_node=head
            ),
            swishmem_payload=request,
            trace=request.trace,
        )
        self.switch.forward_to_node(packet, head)

    def _dp_tick(self, token: WriteToken) -> None:
        """One recirculation pass of a held output packet."""
        hold = self._dp_holds.get(token)
        if hold is None:
            return  # released by the ack
        if self.switch.failed:
            self._dp_holds.pop(token, None)
            return
        hold.recirculations += 1
        self.dp_recirculations += 1
        self.switch.stats.recirculated_packets += 1
        if hold.recirculations % DP_RESEND_EVERY == 0:
            hold.resends += 1
            self.dp_resends += 1
            if hold.resends > DP_MAX_RESENDS:
                self._dp_give_up(hold)
                return
            for write_token in hold.write_tokens:
                outstanding = self._outstanding.get(write_token)
                if outstanding is not None:
                    state = self.groups[outstanding.request.group]
                    state.stats.retries += 1
                    if self._metrics_on:
                        self._m_retries.inc()
                    self._dp_send_request(outstanding.request)
        self.sim.schedule(RECIRCULATION_LATENCY, self._dp_tick, token, label="sro-dp-hold")

    def _dp_give_up(self, hold: _DataplaneHold) -> None:
        self._dp_holds.pop(hold.token, None)
        self.dp_drops += 1
        for write_token in hold.write_tokens:
            outstanding = self._outstanding.pop(write_token, None)
            if outstanding is not None:
                state = self.groups[outstanding.request.group]
                state.stats.writes_failed += 1
        if self._metrics_on:
            self._m_outstanding.set(len(self._outstanding))
        if hold.packet is not None:
            self.switch.drop(hold.packet, reason="dp-write-giveup")

    def _send_write_request(self, token: WriteToken) -> None:
        outstanding = self._outstanding.get(token)
        if outstanding is None:
            return  # already committed
        request = outstanding.request
        state = self.groups[request.group]
        outstanding.attempts += 1
        request.attempt = outstanding.attempts - 1
        if outstanding.attempts > MAX_WRITE_ATTEMPTS:
            self._give_up(outstanding)
            return
        head = state.chain.head
        self._stamp_send(request, head, dataplane=False)
        packet = Packet(
            swishmem=SwiShmemHeader(
                op=SwiShmemOp.WRITE_REQUEST, register_group=request.group, dst_node=head
            ),
            swishmem_payload=request,
            trace=request.trace,
        )
        if head == self.switch.name:
            # We are the head: hand the request to our own data plane.
            self.sim.call_soon(self._receive_write_request, request, label="sro-self-head")
        else:
            self.switch.inject_from_cpu(packet, head)
        timeout = min(
            MAX_WRITE_TIMEOUT, self.write_timeout * (2 ** (outstanding.attempts - 1))
        )
        if outstanding.attempts > 1:
            # Desynchronize retries: writes killed together by one loss
            # burst must not all re-fire in the same instant at the head.
            # First sends keep their deterministic deadline; only retry
            # deadlines jitter, so fault-free runs draw nothing.
            timeout = min(
                MAX_WRITE_TIMEOUT, timeout * self._backoff_rng.uniform(0.5, 1.5)
            )
        outstanding.timer = self.switch.control.set_timer(
            timeout, self._retry, token, label="sro-retry"
        )

    def _retry(self, token: WriteToken) -> None:
        outstanding = self._outstanding.get(token)
        if outstanding is None:
            return
        state = self.groups[outstanding.request.group]
        state.stats.retries += 1
        if self._metrics_on:
            self._m_retries.inc()
        self._send_write_request(token)

    def _give_up(self, outstanding: _OutstandingWrite) -> None:
        request = outstanding.request
        state = self.groups[request.group]
        state.stats.writes_failed += 1
        if self._slo_on:
            self._slo.observe_event("sro.write", False, self.sim.now)
        self._outstanding.pop(request.token, None)
        if self._metrics_on:
            self._m_outstanding.set(len(self._outstanding))
        if outstanding.timer is not None:
            outstanding.timer.cancel()
        barrier = outstanding.barrier
        if barrier is not None and barrier.token is not None:
            self.switch.control.drop_buffered(barrier.token)

    def _stamp_send(self, request: WriteRequest, head: str, dataplane: bool) -> None:
        """Derive a per-attempt send span; the head parents to the attempt
        that actually reached it (retries form a causal chain)."""
        parent = request.trace if request.trace is not None else self._causal.root()
        request.trace = self._causal.child(parent)
        if self._flightrec_on:
            self._flightrec.record(
                request.trace,
                "sro.write.send",
                self.switch.name,
                self.sim.now,
                group=request.group,
                key=request.key,
                next_hop=head,
                attempt=request.attempt,
                dataplane=dataplane,
            )

    # ------------------------------------------------------------------
    # Write path, chain side
    # ------------------------------------------------------------------
    def _receive_write_request(self, request: WriteRequest) -> None:
        """Head duty: sequence (or re-propagate) and start propagation."""
        state = self.groups.get(request.group)
        if state is None:
            return
        ctx = (
            self._causal.child(request.trace)
            if request.trace is not None
            else self._causal.root()
        )
        if state.chain.head != self.switch.name:
            # We are no longer head (reconfiguration raced the request);
            # drop it — the writer's retry will target the new head.
            if self._flightrec_on:
                self._flightrec.record(
                    ctx,
                    "sro.head.stale_drop",
                    self.switch.name,
                    self.sim.now,
                    group=request.group,
                    key=request.key,
                    current_head=state.chain.head,
                )
            return
        remembered = state.dedup.get(request.token)
        if remembered is not None:
            seq, slot, value = remembered[:3]
        else:
            slot = state.pending.slot_of(request.key)
            seq = state.pending.assign_seq(slot)
            if request.rmw_delta is not None:
                # linearizable fetch-add: the head is the serialization
                # point, so reading its local copy here is correct
                current = state.store.get(request.key)
                value = (current if current is not None else 0) + request.rmw_delta
            else:
                value = request.value
            state.remember_token(request.token, seq, slot, value, self.sim.now)
            if self._metrics_on:
                self._m_dedup_occupancy.set(
                    sum(len(g.dedup) for g in self.groups.values())
                )
                evictions = sum(g.dedup_evictions for g in self.groups.values())
                if evictions > self._dedup_evictions_reported:
                    self._m_dedup_evictions.inc(
                        evictions - self._dedup_evictions_reported
                    )
                    self._dedup_evictions_reported = evictions
        if self._flightrec_on:
            self._flightrec.record(
                ctx,
                "sro.head.sequence",
                self.switch.name,
                self.sim.now,
                group=request.group,
                key=request.key,
                seq=seq,
                slot=slot,
                epoch=state.chain.version,
                dedup_hit=remembered is not None,
            )
        update = ChainUpdate(
            group=request.group,
            key=request.key,
            value=value,
            seq=seq,
            slot=slot,
            token=request.token,
            chain=tuple(state.chain.members),
            key_bytes=request.key_bytes,
            value_bytes=request.value_bytes,
            epoch=state.chain.version,
            trace=ctx,
        )
        self._process_chain_update(update)

    def handle_chain_update(self, update: ChainUpdate) -> None:
        """A ChainUpdate packet arrived from the network."""
        state = self.groups.get(update.group)
        if state is None:
            return
        if state.spec.control_plane_state:
            # P4 tables are control-plane-writable only: the apply and
            # forward pass through this switch's CPU (paper 6.1).
            self.switch.control.submit(
                self._process_chain_update, update, label="sro-cp-apply"
            )
        else:
            self._process_chain_update(update)

    def _process_chain_update(self, update: ChainUpdate) -> None:
        state = self.groups.get(update.group)
        if state is None or self.switch.failed:
            return
        frozen = state.chaos_frozen_until > self.sim.now
        if state.chaos_drop_applies > 0 or frozen:
            # Fault injection: this member's dataplane silently loses the
            # apply (a register-write fault, section 6.3's motivating
            # failure) — either a counted drop or a frozen apply unit
            # (``stale_replica``).  The update still cuts through to the
            # successor — un-restamped, so the flight recorder sees *no*
            # span from this node and the post-mortem names it as the
            # losing hop.
            if frozen:
                # One "stale" DivergenceEvent is logged at thaw time by
                # the injector; per-drop events would double-count.
                state.chaos_frozen_drops += 1
            else:
                from repro.protocols.antientropy import DivergenceEvent

                state.chaos_drop_applies -= 1
                state.chaos_dropped_applies += 1
                self.manager.deployment.divergence_log.append(
                    DivergenceEvent(
                        group=update.group,
                        switch=self.switch.name,
                        kind="apply-drop",
                        key=update.key,
                        at=self.sim.now,
                        detail=f"{self.switch.name} dropped seq {update.seq}",
                    )
                )
            successor = update.next_hop_after(self.switch.name)
            if successor is not None:
                packet = Packet(
                    swishmem=SwiShmemHeader(
                        op=SwiShmemOp.CHAIN_UPDATE,
                        register_group=update.group,
                        dst_node=successor,
                    ),
                    swishmem_payload=update,
                    trace=update.trace,
                )
                self.switch.forward_to_node(packet, successor)
            elif update.chain and update.chain[-1] == self.switch.name:
                self._emit_acks(state, update, None)
            return
        ctx = (
            self._causal.child(update.trace)
            if update.trace is not None
            else self._causal.root()
        )
        stats = state.stats
        stats.chain_updates_seen += 1
        if update.epoch < state.chain.version:
            # Fencing: this update was sequenced by a head operating on a
            # configuration the controller has since replaced (e.g. a
            # suspected-but-alive head after a false positive).  Reject it
            # outright — the writer's retry will go through the current
            # head under the current epoch.
            stats.fenced_updates += 1
            if self._flightrec_on:
                self._flightrec.record(
                    ctx,
                    "sro.chain.fenced",
                    self.switch.name,
                    self.sim.now,
                    group=update.group,
                    key=update.key,
                    seq=update.seq,
                    update_epoch=update.epoch,
                    local_epoch=state.chain.version,
                )
            return
        slot = update.slot
        applied = state.pending.applied_seq(slot)
        is_tail = update.chain and update.chain[-1] == self.switch.name
        if update.seq <= applied:
            # Duplicate of something we already applied: do not re-apply,
            # but keep it flowing so downstream members converge.
            stats.duplicate_updates += 1
            if self._flightrec_on:
                self._flightrec.record(
                    ctx,
                    "sro.chain.duplicate",
                    self.switch.name,
                    self.sim.now,
                    group=update.group,
                    key=update.key,
                    seq=update.seq,
                    applied=applied,
                )
        elif state.pending.is_next_in_order(slot, update.seq):
            state.store[update.key] = update.value
            state.pending.mark_applied(slot, update.seq)
            if self._accessprof_on:
                self._accessprof.on_apply(
                    update.group, update.key, self.switch.name, self.sim.now
                )
            pending_set = False
            if state.track_pending and not is_tail:
                if self._metrics_on and not state.pending.is_pending(slot):
                    self._m_pending.inc()
                state.pending.set_pending(slot, update.seq)
                pending_set = True
            if self._flightrec_on:
                self._flightrec.record(
                    ctx,
                    "sro.chain.apply",
                    self.switch.name,
                    self.sim.now,
                    group=update.group,
                    key=update.key,
                    seq=update.seq,
                    slot=slot,
                    tail=bool(is_tail),
                )
                if pending_set:
                    self._flightrec.record(
                        self._causal.child(ctx),
                        "sro.pending.set",
                        self.switch.name,
                        self.sim.now,
                        group=update.group,
                        key=update.key,
                        seq=update.seq,
                        slot=slot,
                    )
        elif state.catching_up:
            # Recovery: gaps are covered by the snapshot replay, so the
            # catching-up switch applies out-of-order (paper 6.3).
            state.store[update.key] = update.value
            state.pending.force_applied(slot, update.seq)
            if self._accessprof_on:
                self._accessprof.on_apply(
                    update.group, update.key, self.switch.name, self.sim.now
                )
            if self._flightrec_on:
                self._flightrec.record(
                    ctx,
                    "sro.chain.apply",
                    self.switch.name,
                    self.sim.now,
                    group=update.group,
                    key=update.key,
                    seq=update.seq,
                    slot=slot,
                    catchup=True,
                )
        else:
            # A gap: a predecessor's update is missing.  Stash this one
            # (bounded) and apply it the moment the gap fills — either
            # the predecessor's delayed packet or its writer's retry.
            # Only a full stash degrades to the old drop-and-wait-for-
            # retry behavior.
            stash_key = (slot, update.seq)
            if stash_key not in state.reorder:
                if len(state.reorder) >= state.reorder_capacity:
                    state.reorder.popitem(last=False)
                    stats.out_of_order_drops += 1
                state.reorder[stash_key] = update
                stats.reorder_stashed += 1
                # Re-stamp the update onto the stash span: when the gap
                # fills, its apply parents to the stash on this node, so
                # the critical-path analyzer sees the residency as a
                # wait (split against leaderless windows) instead of an
                # impossibly slow network hop.
                if self._flightrec_on:
                    self._flightrec.record(
                        ctx,
                        "sro.chain.reorder_stash",
                        self.switch.name,
                        self.sim.now,
                        group=update.group,
                        key=update.key,
                        seq=update.seq,
                        applied=applied,
                    )
                update.trace = ctx
            return
        successor = update.next_hop_after(self.switch.name)
        if successor is not None:
            # Re-stamp the update with this hop's forward span so the
            # next member parents to it — a forward span with no child
            # from ``next_hop`` is a lost hop in the post-mortem.
            update.trace = self._causal.child(ctx)
            if self._flightrec_on:
                self._flightrec.record(
                    update.trace,
                    "sro.chain.forward",
                    self.switch.name,
                    self.sim.now,
                    group=update.group,
                    key=update.key,
                    seq=update.seq,
                    next_hop=successor,
                )
            packet = Packet(
                swishmem=SwiShmemHeader(
                    op=SwiShmemOp.CHAIN_UPDATE,
                    register_group=update.group,
                    dst_node=successor,
                ),
                swishmem_payload=update,
                trace=update.trace,
            )
            self.switch.forward_to_node(packet, successor)
        elif is_tail:
            self._emit_acks(state, update, ctx)
        if state.reorder:
            # The apply above may have filled the gap a stashed
            # successor was waiting on: purge entries made stale by the
            # advance, then re-process the next in-order update as if
            # its packet just arrived (it applies and keeps draining).
            now_applied = state.pending.applied_seq(slot)
            stale_keys = [
                stash_key
                for stash_key in state.reorder
                if stash_key[0] == slot and stash_key[1] <= now_applied
            ]
            for stash_key in stale_keys:
                del state.reorder[stash_key]
            follow = state.reorder.pop((slot, now_applied + 1), None)
            if follow is not None:
                stats.reorder_applied += 1
                self._process_chain_update(follow)

    def _emit_acks(
        self, state: SroGroupState, update: ChainUpdate, ctx: Any = None
    ) -> None:
        """Tail duty: acknowledge to the writer and the other members."""
        ack = WriteAck(
            group=update.group,
            key=update.key,
            seq=update.seq,
            slot=update.slot,
            token=update.token,
            key_bytes=update.key_bytes,
            value=update.value,
            value_bytes=update.value_bytes,
        )
        targets = set(update.chain) | {update.token.writer}
        targets.discard(self.switch.name)
        parent = ctx if ctx is not None else update.trace
        if parent is not None:
            # One commit span at the tail; every ack receiver parents to
            # it.  The ack object is shared across the fan-out packets,
            # so receivers derive children without re-stamping it.
            ack.trace = self._causal.child(parent)
            if self._flightrec_on:
                self._flightrec.record(
                    ack.trace,
                    "sro.ack.emit",
                    self.switch.name,
                    self.sim.now,
                    group=update.group,
                    key=update.key,
                    seq=update.seq,
                    targets=",".join(sorted(targets)),
                )
        for target in sorted(targets):
            packet = Packet(
                swishmem=SwiShmemHeader(
                    op=SwiShmemOp.WRITE_ACK, register_group=update.group, dst_node=target
                ),
                swishmem_payload=ack,
                trace=ack.trace,
            )
            self.switch.forward_to_node(packet, target)
        # The tail itself may also be the writer.
        self.handle_write_ack(ack)

    def handle_write_ack(self, ack: WriteAck) -> None:
        """Data-plane ack processing: clear pending, release the writer."""
        state = self.groups.get(ack.group)
        if state is None:
            return
        state.stats.acks_seen += 1
        cleared = False
        if state.track_pending:
            cleared = state.pending.clear_pending(ack.slot, ack.seq)
            if cleared and self._metrics_on:
                self._m_pending.dec()
        ctx = self._causal.child(ack.trace) if ack.trace is not None else None
        outstanding = self._outstanding.pop(ack.token, None)
        if self._flightrec_on and ctx is not None:
            self._flightrec.record(
                ctx,
                "sro.ack.deliver",
                self.switch.name,
                self.sim.now,
                group=ack.group,
                key=ack.key,
                seq=ack.seq,
                pending_cleared=cleared,
                writer=outstanding is not None,
            )
        if outstanding is None:
            return
        if self._metrics_on:
            self._m_outstanding.set(len(self._outstanding))
        if outstanding.timer is not None:
            outstanding.timer.cancel()
        state.stats.writes_committed += 1
        latency = self.sim.now - outstanding.started_at
        state.stats.record_write_latency(latency)
        if self._flightrec_on and ctx is not None:
            self._flightrec.record(
                self._causal.child(ctx),
                "sro.write.commit",
                self.switch.name,
                self.sim.now,
                group=ack.group,
                key=ack.key,
                seq=ack.seq,
                latency_us=round(latency * 1e6, 3),
            )
        if self._metrics_on:
            self._m_commit_latency.observe(latency)
        if self._slo_on:
            self._slo.observe("sro.write_commit", latency, self.sim.now)
            self._slo.observe_event("sro.write", True, self.sim.now)
        self.manager.on_write_committed(state.spec, outstanding.request.key, ack)
        barrier = outstanding.barrier
        if barrier is None:
            return
        barrier.results[ack.key] = ack.value
        barrier.remaining -= 1
        if barrier.remaining == 0 and barrier.token is not None:
            hold = self._dp_holds.pop(barrier.token, None)
            if hold is not None:
                # data-plane release: the recirculating packet exits the
                # pipeline toward its destination (marker packets for
                # output-less writes simply vanish), no CPU touch
                if hold.packet is not None and hold.dst_node is not None:
                    if barrier.on_release is not None:
                        barrier.on_release(hold.packet, barrier.results)
                    self.switch.forward_to_node(hold.packet, hold.dst_node)
            else:
                if barrier.on_release is not None:
                    buffered = self.switch.control.peek_buffered(barrier.token)
                    if buffered is not None:
                        barrier.on_release(buffered, barrier.results)
                self.switch.control.release_packet(barrier.token)

    # ------------------------------------------------------------------
    # Recovery hooks (used by repro.protocols.failover)
    # ------------------------------------------------------------------
    def snapshot(self, group_id: int) -> List[Tuple[Any, Any, int, int]]:
        """Control-plane snapshot: [(key, value, slot, seq_at_snapshot)].

        Carries each key's slot sequence at snapshot time so replayed
        writes cannot overwrite newer values (paper 6.3).
        """
        state = self.groups[group_id]
        entries = []
        for key in sorted(state.store, key=repr):
            slot = state.pending.slot_of(key)
            entries.append((key, state.store[key], slot, state.pending.applied_seq(slot)))
        return entries

    def apply_snapshot_write(self, key: Any, value: Any, slot: int, seq: int, group_id: int) -> bool:
        """Apply one replayed snapshot entry under the seq guard."""
        state = self.groups.get(group_id)
        if state is None:
            return False
        if seq >= state.pending.applied_seq(slot):
            state.store[key] = value
            state.pending.force_applied(slot, seq)
            return True
        return False

    # ------------------------------------------------------------------
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def stats_for(self, group_id: int) -> SroStats:
        return self.groups[group_id].stats
