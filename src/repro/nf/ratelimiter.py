"""Per-user rate limiter (Table 1, row 6).

"Rate limiters monitor and restrict the aggregated bandwidth of flows
that belong to a given user.  The application maintains a per-user meter
that is updated on every packet.  Periodically, the meters are read to
identify users exceeding their bandwidth limit and enforce restrictions.
This application can tolerate some transient inconsistencies: it is
acceptable for a few additional packets to go through immediately after
the user reaches the bandwidth limit." (paper section 4.2)

This is the *distributed rate limiting* problem (Raghavan et al.): a
user's flows cross several switches, so the enforced limit must apply
to the **aggregate** across all of them.

Shared state:
  * ``rl_usage`` — **EWO counter**: per-user byte counts (updated every
    packet; the per-switch slot vector makes the aggregate exact once
    merged);
  * ``rl_blocked`` — **EWO LWW**: per-user block flags written by the
    periodic window task.

Each switch's window task reads the merged usage, compares the window's
aggregate bytes against ``limit_bps * window``, and flips the block
flag.  The transient inconsistency the paper deems acceptable shows up
as bytes admitted beyond the limit — experiment N4's metric.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.nf.base import NetworkFunction
from repro.sim.engine import Process

__all__ = ["RateLimiterNF", "user_of_packet"]


def user_of_packet(packet) -> Optional[str]:
    """Map a packet to a user: the /24-style prefix of its source IP.

    Deployments with real user attribution would consult a table; the
    prefix rule keeps workloads simple while giving each user several
    source hosts (so one user's traffic genuinely crosses switches).
    """
    if packet.ipv4 is None:
        return None
    return packet.ipv4.src.rsplit(".", 1)[0]


class RateLimiterNF(NetworkFunction):
    """Distributed per-user rate limiter on EWO counters."""

    NAME = "ratelimiter"

    def __init__(self, manager, handles, *, limit_bps: float = 10e6,
                 window: float = 5e-3, capacity: int = 1024,
                 replicate: bool = True) -> None:
        super().__init__(manager, handles)
        self.limit_bps = limit_bps
        self.window = window
        self.usage = handles["rl_usage"]
        self.blocked = handles["rl_blocked"]
        #: Usage snapshot at window start, for per-window byte diffs.
        self._base: Dict[Any, int] = {}
        #: Token-bucket allowance per user (bytes); a naive per-window
        #: over/under toggle would oscillate at ~50% duty and admit half
        #: the *offered* load instead of the limit.
        self._allowance: Dict[Any, float] = {}
        self.bytes_admitted: Dict[str, int] = {}
        self.bytes_dropped: Dict[str, int] = {}
        self._window_process = Process(
            manager.sim, window, self._enforce_window,
            name=f"{manager.switch.name}:rl-window",
        ).start()

    @classmethod
    def build_specs(cls, *, limit_bps: float = 10e6, window: float = 5e-3,
                    capacity: int = 1024, replicate: bool = True) -> List[RegisterSpec]:
        # ``replicate=False`` is the local-only baseline of experiment
        # N4: meters are never broadcast, so each switch enforces the
        # limit against only its own traffic share.
        batch = 1 if replicate else 10**9
        return [
            RegisterSpec(
                name="rl_usage",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.COUNTER,
                capacity=capacity,
                key_bytes=8,
                value_bytes=8,
                ewo_batch_size=batch,
            ),
            RegisterSpec(
                name="rl_blocked",
                consistency=Consistency.EWO,
                ewo_mode=EwoMode.LWW,
                capacity=capacity,
                key_bytes=8,
                value_bytes=1,
                default=False,
                ewo_batch_size=batch,
            ),
        ]

    # ------------------------------------------------------------------
    #: DSCP bit set once a packet has been metered, so a packet crossing
    #: several limiter switches is charged exactly once (blocking is
    #: still enforced at every switch).
    METERED_MARK = 0x20

    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        user = user_of_packet(packet)
        if user is None:
            return self.forward()
        if self.blocked.read(user, False):
            self.bytes_dropped[user] = (
                self.bytes_dropped.get(user, 0) + packet.wire_size
            )
            return self.drop()
        if packet.ipv4.dscp & self.METERED_MARK:
            return self.forward()  # already charged upstream
        packet.ipv4.dscp |= self.METERED_MARK
        # Meter update on every packet (Table 1's access pattern).
        self.usage.increment(user, packet.wire_size)
        self.bytes_admitted[user] = (
            self.bytes_admitted.get(user, 0) + packet.wire_size
        )
        return self.forward()

    # ------------------------------------------------------------------
    # Periodic enforcement (control-plane window task)
    # ------------------------------------------------------------------
    def _enforce_window(self) -> None:
        if self.manager.switch.failed:
            self._window_process.stop()
            return
        budget = self.limit_bps * self.window / 8.0  # bytes per window
        # "Periodically, the meters are read" (Table 1's Every-window
        # read): enumerate known users from the local replica, then read
        # each meter through the register API.
        merged = {}
        for user in self.manager.ewo.local_state(self.usage.spec.group_id):
            merged[user] = self.usage.peek(user, 0)
        for user, total in merged.items():
            window_bytes = total - self._base.get(user, 0)
            # Token-bucket allowance: each window deposits one budget and
            # withdraws what the user actually consumed; blocking lasts
            # until the debt is repaid, so the long-term admitted rate
            # approaches the limit instead of oscillating with the toggle.
            allowance = self._allowance.get(user, budget)
            allowance = min(budget, allowance + budget - window_bytes)
            self._allowance[user] = allowance
            over = allowance <= 0
            currently = self.blocked.peek(user, False)
            if over and not currently:
                self.blocked.write(user, True)
            elif not over and currently:
                self.blocked.write(user, False)
        self._base = merged

    def stop(self) -> None:
        self._window_process.stop()
