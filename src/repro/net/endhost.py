"""End hosts and IP address management.

End hosts are the traffic sources and sinks around the NF switches:
clients behind the ingress, destination servers (DIPs) behind the
egress.  A host records everything it receives (with timestamps) so
experiments can measure end-to-end latency, per-connection consistency,
and delivery counts.

:class:`AddressBook` maps IP addresses to node names; switches consult
it when making final forwarding decisions.  In a real deployment this is
the fabric's L3 routing state — here a single authoritative map keeps
the simulation honest and simple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.headers import TcpFlags
from repro.net.link import Node
from repro.net.packet import Packet, make_tcp_packet
from repro.sim.engine import Simulator

__all__ = ["AddressBook", "EndHost", "ReceivedPacket"]


class AddressBook:
    """Authoritative IP -> node-name mapping for the deployment."""

    def __init__(self) -> None:
        self._ip_to_node: Dict[str, str] = {}

    def register(self, ip: str, node_name: str) -> None:
        existing = self._ip_to_node.get(ip)
        if existing is not None and existing != node_name:
            raise ValueError(f"IP {ip} already assigned to {existing}")
        self._ip_to_node[ip] = node_name

    def lookup(self, ip: str) -> Optional[str]:
        return self._ip_to_node.get(ip)

    def ips(self) -> List[str]:
        return sorted(self._ip_to_node)


@dataclass
class ReceivedPacket:
    """A delivery record kept by an end host."""

    time: float
    packet: Packet
    from_node: str

    @property
    def latency(self) -> float:
        """End-to-end latency if the packet carries its creation time."""
        return self.time - self.packet.created_at


class EndHost(Node):
    """A client or server machine attached to the fabric by one link.

    If ``responder=True`` the host behaves as a minimal TCP-ish server:
    it answers SYN with SYN|ACK and data with ACK, which gives the
    stateful NFs (NAT, firewall) realistic bidirectional traffic.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        ip: str,
        address_book: Optional[AddressBook] = None,
        responder: bool = False,
    ) -> None:
        super().__init__(name)
        self.sim = sim
        self.ip = ip
        self.responder = responder
        self.received: List[ReceivedPacket] = []
        self.sent_count = 0
        #: Optional per-packet callback for experiment-specific logic.
        self.on_receive: Optional[Callable[[Packet, str], None]] = None
        if address_book is not None:
            address_book.register(ip, name)

    # ------------------------------------------------------------------
    def uplink_neighbor(self) -> str:
        """The single switch this host hangs off (hosts are single-homed)."""
        neighbors = self.neighbors()
        if len(neighbors) != 1:
            raise RuntimeError(
                f"host {self.name} expected exactly one uplink, has {neighbors}"
            )
        return neighbors[0]

    def inject(self, packet: Packet) -> bool:
        """Send a locally generated packet into the fabric."""
        packet.created_at = self.sim.now
        self.sent_count += 1
        return self.send(packet, self.uplink_neighbor())

    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet, from_node: str) -> None:
        self.received.append(ReceivedPacket(self.sim.now, packet, from_node))
        if self.on_receive is not None:
            self.on_receive(packet, from_node)
        if self.responder and packet.tcp is not None and packet.ipv4 is not None:
            self._respond(packet)

    def _respond(self, packet: Packet) -> None:
        flags = packet.tcp.flags
        if flags & TcpFlags.RST:
            return
        if flags & TcpFlags.SYN and not flags & TcpFlags.ACK:
            reply_flags = TcpFlags.SYN | TcpFlags.ACK
        elif flags & TcpFlags.FIN:
            reply_flags = TcpFlags.FIN | TcpFlags.ACK
        elif packet.payload_size > 0:
            reply_flags = TcpFlags.ACK
        else:
            return  # pure ACKs are not answered (no ACK storms)
        reply = make_tcp_packet(
            src_ip=self.ip,
            dst_ip=packet.ipv4.src,
            src_port=packet.tcp.dst_port,
            dst_port=packet.tcp.src_port,
            flags=reply_flags,
        )
        self.inject(reply)

    # ------------------------------------------------------------------
    def packets_from(self, src_ip: str) -> List[ReceivedPacket]:
        return [
            r
            for r in self.received
            if r.packet.ipv4 is not None and r.packet.ipv4.src == src_ip
        ]

    def clear(self) -> None:
        self.received.clear()
