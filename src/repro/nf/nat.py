"""Network Address Translator (Table 1, row 1).

"NATs share the connection table among the NF instances.  The table is
queried on every packet, but only updated when a new connection is
opened; table rows require strong consistency, otherwise leading to
broken client connections in case of multi-path routing or switch
failure.  NATs generally also manage a pool that tracks unassigned
ports; however, different port ranges can be assigned to different
switches to avoid sharing this state." (paper section 4.1)

Shared state:
  * ``nat_table`` — **SRO**, ``control_plane_state=True`` (a P4 table):
    forward entries ``("f", src_ip, src_port, proto) -> nat_port`` and
    reverse entries ``("r", nat_port) -> (src_ip, src_port)``.  Both are
    written atomically as one packet's write set Q.

Local (unshared) state:
  * the per-switch port range — a disjoint slice of the NAT port space,
    exactly the paper's sharding suggestion.

Outbound packets (from ``internal_prefix``) are source-NATed to
``nat_ip``; inbound packets to ``nat_ip`` are looked up by destination
port and rewritten back.  The first packet of a connection blocks on
the chain write (its rewritten output is buffered by the control plane
until the mapping commits on every switch); every later packet — on
*any* switch — finds the mapping with a local read.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, RegisterSpec
from repro.nf.base import NetworkFunction

__all__ = ["NatNF"]

#: NAT port pool: [base, base + pool size).
NAT_PORT_BASE = 20000
NAT_PORT_POOL = 20000


class NatNF(NetworkFunction):
    """Distributed stateful NAT on SwiShmem SRO registers."""

    NAME = "nat"

    def __init__(self, manager, handles, *, nat_ip: str = "100.0.0.1",
                 internal_prefix: str = "10.", capacity: int = 4096,
                 pending_slots: Optional[int] = None) -> None:
        super().__init__(manager, handles)
        self.nat_ip = nat_ip
        self.internal_prefix = internal_prefix
        self.table = handles["nat_table"]
        # Per-switch disjoint port range (no shared pool state).
        index = manager.deployment.node_id(manager.switch.name)
        count = len(manager.deployment.switch_names)
        share = NAT_PORT_POOL // count
        self._next_port = NAT_PORT_BASE + index * share
        self._port_limit = self._next_port + share
        self.ports_allocated = 0

    @classmethod
    def build_specs(cls, *, nat_ip: str = "100.0.0.1", internal_prefix: str = "10.",
                    capacity: int = 4096, pending_slots: Optional[int] = None) -> List[RegisterSpec]:
        return [
            RegisterSpec(
                name="nat_table",
                consistency=Consistency.SRO,
                capacity=capacity,
                key_bytes=12,
                value_bytes=8,
                pending_slots=pending_slots,
                control_plane_state=True,
            )
        ]

    # ------------------------------------------------------------------
    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        if packet.ipv4 is None or (packet.tcp is None and packet.udp is None):
            return self.forward()
        if packet.ipv4.src.startswith(self.internal_prefix):
            return self._outbound(ctx)
        if packet.ipv4.dst == self.nat_ip:
            return self._inbound(ctx)
        return self.forward()

    # ------------------------------------------------------------------
    def _l4(self, packet) -> Tuple[int, int]:
        header = packet.tcp if packet.tcp is not None else packet.udp
        return header.src_port, header.dst_port

    def _set_src(self, packet, ip: str, port: int) -> None:
        packet.ipv4.src = ip
        header = packet.tcp if packet.tcp is not None else packet.udp
        header.src_port = port

    def _set_dst(self, packet, ip: str, port: int) -> None:
        packet.ipv4.dst = ip
        header = packet.tcp if packet.tcp is not None else packet.udp
        header.dst_port = port

    def _outbound(self, ctx: PacketContext) -> Decision:
        packet = ctx.packet
        src_port, _ = self._l4(packet)
        proto = packet.ipv4.protocol
        forward_key = ("f", packet.ipv4.src, src_port, proto)
        nat_port = self.table.read(forward_key)
        if nat_port is not None:
            self.stats.state_hits += 1
            self._set_src(packet, self.nat_ip, nat_port)
            return self.forward()
        # New connection: allocate from the local range and install both
        # mappings.  The rewritten packet is the buffered output P'.
        self.stats.state_misses += 1
        nat_port = self._allocate_port()
        if nat_port is None:
            return self.drop()
        original = (packet.ipv4.src, src_port)
        self.table.write(forward_key, nat_port)
        self.table.write(("r", nat_port), original)
        self._set_src(packet, self.nat_ip, nat_port)
        return self.forward()

    def _inbound(self, ctx: PacketContext) -> Decision:
        packet = ctx.packet
        _, dst_port = self._l4(packet)
        original = self.table.read(("r", dst_port))
        if original is None:
            # No mapping: unsolicited inbound traffic is dropped.
            self.stats.state_misses += 1
            return self.drop()
        self.stats.state_hits += 1
        inside_ip, inside_port = original
        self._set_dst(packet, inside_ip, inside_port)
        return self.forward()

    def _allocate_port(self) -> Optional[int]:
        if self._next_port >= self._port_limit:
            return None
        port = self._next_port
        self._next_port += 1
        self.ports_allocated += 1
        return port
