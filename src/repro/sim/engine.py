"""Discrete-event simulation kernel.

Everything in the reproduction — links, switches, control planes,
replication protocols, traffic generators — runs on top of this kernel.
The kernel owns a single virtual clock (in seconds, as a float) and a
priority queue of pending events.  An *event* is a plain callback scheduled
for some future simulation time.

Two properties matter for faithfulness to the paper:

* **Determinism.**  Given the same seed and the same schedule of calls,
  a simulation always produces the same history.  Ties in event time are
  broken by a monotonically increasing sequence number, so insertion order
  is preserved and no wall-clock nondeterminism can leak in.

* **Atomic processing** (paper section 2).  A PISA switch processes each
  packet atomically: all register updates made while handling one packet
  are visible to the next packet as a unit.  In this kernel that property
  falls out naturally — one event runs to completion before the next
  begins — but switch code additionally asserts that it never yields
  mid-packet (see ``repro.switch.pisa``).

The queue itself is allocation-lean: heap entries are plain
``(time, seq, event)`` tuples (no per-entry wrapper object), and
cancelled events are removed *lazily*.  :meth:`Event.cancel` only flags
the event and tells its simulator; the entry stays in the heap until it
reaches the top or until cancelled entries exceed roughly half the
queue, at which point the heap is compacted in place.  This keeps the
heap bounded under cancel-heavy workloads (SRO retransmission timers are
armed per write and cancelled on every ack) without paying an O(n)
removal per cancel.  Ordering is unchanged — live entries keep their
original ``(time, seq)`` keys through compaction — so the rewrite is
invisible to replay digests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly.

    Examples: scheduling an event in the past, running a simulator that
    has already been stopped, or cancelling an event twice.
    """


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule` so callers can cancel a pending
    event (e.g. a retransmission timer that is no longer needed).
    """

    __slots__ = ("time", "callback", "args", "cancelled", "label", "_sim")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        label: str = "",
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        #: Back-reference used for lazy-deletion bookkeeping; set by
        #: ``Simulator.schedule`` and cleared when the entry leaves the
        #: heap (fired, skipped, or compacted away).
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Cancel this event; it will be skipped when its time arrives.

        Cancelling an event that already fired is a no-op rather than an
        error, because timers routinely race with the work they guard.
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.9f} {self.label or self.callback!r} {state}>"


#: A heap entry: (time, seq, event).  Plain tuples compare element-wise,
#: which reproduces exactly the (time, seq) ordering of the old
#: dataclass entries, at a fraction of the allocation and comparison cost.
_QueueTuple = Tuple[float, int, "Event"]

#: Don't bother compacting tiny heaps — the rebuild costs more than the
#: stale entries ever will.
_COMPACT_MIN_SIZE = 64


class Simulator:
    """The discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock unit is seconds.  All component delays in the reproduction
    (link latency, pipeline service time, control-plane processing) are
    expressed in seconds so that bandwidth and rate arithmetic stays in
    SI units.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_QueueTuple] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Cancelled entries still occupying heap slots (lazy deletion).
        self._cancelled = 0
        #: Lifetime counters for the S1 benchmark and kernel tests.
        self.events_cancelled = 0
        self.compactions = 0
        self.peak_queue_len = 0
        #: Optional dispatch interceptor (see ``repro.obs.profiler``).
        #: When set, events run through ``profiler.dispatch(event)`` so
        #: wall-clock cost can be attributed per handler label.  The hook
        #: is sampled when ``run()`` starts; install/uninstall between
        #: runs, not from inside an event.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite.  Returns the
        :class:`Event`, which may be cancelled until it fires.
        """
        # One comparison rejects negative, +inf and NaN (NaN fails both).
        if not 0.0 <= delay < math.inf:
            if delay < 0:
                raise SimulationError(f"cannot schedule in the past (delay={delay})")
            raise SimulationError(f"delay must be finite, got {delay}")
        event = Event(self._now + delay, callback, args, label)
        event._sim = self
        queue = self._queue
        heapq.heappush(queue, (event.time, next(self._seq), event))
        if len(queue) > self.peak_queue_len:
            self.peak_queue_len = len(queue)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, *args, label=label)

    def call_soon(self, callback: Callable[..., None], *args: Any, label: str = "") -> Event:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.schedule(0.0, callback, *args, label=label)

    # ------------------------------------------------------------------
    # Lazy deletion
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the entry is still heaped."""
        self._cancelled += 1
        self.events_cancelled += 1
        queue = self._queue
        if self._cancelled * 2 > len(queue) and len(queue) >= _COMPACT_MIN_SIZE:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, *in place*.

        In-place (slice assignment) so the hot loop in :meth:`run`, which
        holds a local reference to the queue list, observes the rebuild.
        Live entries keep their original (time, seq) keys, so event order
        — and therefore any replay digest — is unaffected.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[2].cancelled]
        heapq.heapify(queue)
        self._cancelled = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or stopped.

        Returns the simulation time at which execution stopped.

        Clock boundary semantics: if ``until`` is given and the run ends
        by draining the queue or reaching the window edge, the clock is
        advanced to exactly ``until`` — even when the queue drained
        earlier — so periodic measurements can rely on a full window
        having elapsed.  If the run ends via :meth:`stop`, the clock is
        deliberately **left at the time of the last processed event**:
        a stopped simulation is frozen mid-history (e.g. for inspection
        or early exit on an invariant violation), and jumping the clock
        forward would misdate everything scheduled afterwards.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        processed = 0
        # Hot-loop locals: the queue list identity is stable (compaction
        # mutates it in place) and the profiler hook is sampled once.
        queue = self._queue
        heappop = heapq.heappop
        profiler = self.profiler
        limit = math.inf if until is None else until
        budget = math.inf if max_events is None else max_events
        try:
            while queue:
                if self._stopped:
                    break
                entry = queue[0]
                if entry[0] > limit:
                    break
                heappop(queue)
                event = entry[2]
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                event._sim = None
                self._now = entry[0]
                if profiler is None:
                    event.callback(*event.args)
                else:
                    profiler.dispatch(event)
                processed += 1
                if processed >= budget:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty.

        Mirrors :meth:`run`'s guards: calling ``step()`` from inside a
        running simulation (either ``run()`` or another ``step()``) is a
        re-entrancy error, and the profiler hook intercepts dispatch the
        same way it does in ``run()``.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant step())")
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            event = entry[2]
            if event.cancelled:
                self._cancelled -= 1
                continue
            event._sim = None
            self._now = entry[0]
            self._running = True
            try:
                if self.profiler is None:
                    event.callback(*event.args)
                else:
                    self.profiler.dispatch(event)
            finally:
                self._running = False
                self.events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Stop a running simulation after the current event completes.

        The clock stays at the current event's time; see :meth:`run` for
        the boundary semantics with ``until``.
        """
        self._stopped = True

    def pending(self) -> int:
        """Number of non-cancelled events still queued.  O(1)."""
        return len(self._queue) - self._cancelled

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if none remain.

        Pops cancelled entries off the top of the heap as it goes, so the
        cost is O(log n) amortized per cancelled entry rather than the
        full sort this used to do.
        """
        queue = self._queue
        while queue:
            if queue[0][2].cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            return queue[0][0]
        return None

    def queue_len(self) -> int:
        """Raw heap occupancy, *including* lazily deleted entries.

        ``pending()`` is the logical count; the difference between the
        two is the garbage the compactor bounds.
        """
        return len(self._queue)


class Process:
    """A named periodic activity pinned to a simulator.

    Many components in the reproduction are periodic: the EWO
    packet-generator sync (paper section 6.2), controller heartbeats
    (section 6.3), rate-limiter window resets (section 4.2).  ``Process``
    wraps the schedule/reschedule dance and supports clean teardown, which
    matters for fault injection (a dead switch must stop synchronizing).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        body: Callable[[], None],
        name: str = "process",
        jitter: Callable[[], float] = None,
        start_after: float = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"process period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.body = body
        self.name = name
        self.jitter = jitter
        self._event: Optional[Event] = None
        self._alive = False
        self._ticks = 0
        first_delay = period if start_after is None else start_after
        self._first_delay = first_delay

    @property
    def ticks(self) -> int:
        """How many times the body has run."""
        return self._ticks

    @property
    def alive(self) -> bool:
        return self._alive

    def start(self) -> "Process":
        if self._alive:
            return self
        self._alive = True
        self._event = self.sim.schedule(self._first_delay, self._tick, label=self.name)
        return self

    def stop(self) -> None:
        """Stop the process, cancelling its in-flight tick event.

        After ``stop()`` the process holds no live event: the pending
        tick is cancelled (and will be lazily reclaimed by the kernel)
        and the reference is dropped.
        """
        self._alive = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if not self._alive:
            return
        self._ticks += 1
        self.body()
        if not self._alive:  # body may have stopped us
            return
        delay = self.period
        if self.jitter is not None:
            delay = max(0.0, delay + self.jitter())
        self._event = self.sim.schedule(delay, self._tick, label=self.name)


def format_time(t: float) -> str:
    """Human-readable simulation timestamp (microsecond precision)."""
    return f"{t * 1e6:,.3f}us"
