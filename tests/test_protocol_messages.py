"""Tests for protocol wire formats: sizes, tokens, chain-hop helpers."""

from __future__ import annotations

import pytest

from repro.crdt.clock import Timestamp
from repro.net.headers import SwiShmemHeader, SwiShmemOp
from repro.net.packet import Packet
from repro.protocols.messages import (
    ChainUpdate,
    EwoEntry,
    EwoSync,
    EwoUpdate,
    SnapshotAck,
    SnapshotWrite,
    WriteAck,
    WriteRequest,
    WriteToken,
)


class TestWriteToken:
    def test_fresh_tokens_unique(self):
        tokens = {WriteToken.fresh("s0") for _ in range(100)}
        assert len(tokens) == 100

    def test_equality_and_hash(self):
        a = WriteToken("s0", 5)
        b = WriteToken("s0", 5)
        assert a == b and hash(a) == hash(b)
        assert a != WriteToken("s1", 5)

    def test_str(self):
        assert str(WriteToken("s0", 5)) == "s0#5"


class TestWireSizes:
    def test_write_request_scales_with_widths(self):
        small = WriteRequest(1, "k", "v", WriteToken.fresh("s0"), key_bytes=4, value_bytes=4)
        large = WriteRequest(1, "k", "v", WriteToken.fresh("s0"), key_bytes=16, value_bytes=64)
        assert large.wire_size - small.wire_size == (16 - 4) + (64 - 4)

    def test_chain_update_includes_chain_list(self):
        token = WriteToken.fresh("s0")
        short = ChainUpdate(1, "k", "v", 1, 0, token, chain=("a", "b"))
        long = ChainUpdate(1, "k", "v", 1, 0, token, chain=("a", "b", "c", "d"))
        assert long.wire_size - short.wire_size == 8  # 4 bytes per member

    def test_ack_smaller_than_update(self):
        token = WriteToken.fresh("s0")
        update = ChainUpdate(1, "k", "v", 1, 0, token, chain=("a", "b"))
        ack = WriteAck(1, "k", 1, 0, token)
        assert ack.wire_size < update.wire_size

    def test_ewo_update_sums_entries(self):
        one = EwoUpdate(1, "s0", [EwoEntry("k", 0, 1)])
        three = EwoUpdate(1, "s0", [EwoEntry(f"k{i}", 0, 1) for i in range(3)])
        per_entry = EwoEntry("k", 0, 1).wire_bytes(8, 8)
        assert three.wire_size - one.wire_size == 2 * per_entry

    def test_entry_version_encodings(self):
        slot_entry = EwoEntry("k", 2, 10)
        stamp_entry = EwoEntry("k", Timestamp(1.0, 0, 1), 10)
        assert stamp_entry.wire_bytes(8, 8) > slot_entry.wire_bytes(8, 8)

    def test_snapshot_messages(self):
        write = SnapshotWrite(1, "k", "v", 3, 0, "s0")
        ack = SnapshotAck(1, "k", 3, "s1")
        assert write.wire_size > ack.wire_size

    def test_packet_accounts_payload(self):
        message = WriteRequest(1, "k", "v", WriteToken.fresh("s0"))
        packet = Packet(
            swishmem=SwiShmemHeader(op=SwiShmemOp.WRITE_REQUEST, register_group=1),
            swishmem_payload=message,
        )
        bare = Packet(swishmem=SwiShmemHeader(op=SwiShmemOp.WRITE_REQUEST, register_group=1))
        assert packet.wire_size == bare.wire_size + message.wire_size


class TestChainHops:
    def test_next_hop_after(self):
        update = ChainUpdate(
            1, "k", "v", 1, 0, WriteToken.fresh("s0"), chain=("a", "b", "c")
        )
        assert update.next_hop_after("a") == "b"
        assert update.next_hop_after("b") == "c"
        assert update.next_hop_after("c") is None
        assert update.next_hop_after("zz") is None

    def test_sync_is_update_subtype(self):
        sync = EwoSync(1, "s0", [EwoEntry("k", 0, 1)])
        assert isinstance(sync, EwoUpdate)
        assert sync.wire_size > 0
