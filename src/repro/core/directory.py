"""Directory service for partial replication (paper section 7 / 9 extension).

The base SwiShmem design replicates every register on every switch,
which "allows the system to scale out in terms of throughput, but not
in terms of state".  Section 9 sketches the fix the authors were
exploring: "use a central controller that acts as a directory service
(in the vein of cache coherence protocols), tracking which switches
replicate which state, and migrating data as needed."

:class:`DirectoryService` implements that controller-side directory:

* per-key **replica sets** — which switches hold a key (defaulting to
  everywhere for keys never placed);
* **placement** driven by observed access locality: a key accessed only
  through a subset of switches can be homed on just those replicas;
* **migration** bookkeeping with generation numbers, so a key's replica
  set can move without ever serving from a switch that has not received
  the state yet (add-then-remove ordering);
* **savings accounting** — how much replication bandwidth and memory
  partial replication saves versus full replication, which is the
  quantitative question section 9 raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

__all__ = ["DirectoryService", "PlacementEntry", "MigrationRecord"]


@dataclass
class PlacementEntry:
    """Replica-set record for one key."""

    key: Hashable
    replicas: FrozenSet[str]
    generation: int = 0


@dataclass
class MigrationRecord:
    """One completed migration, for auditing and experiments."""

    group_id: int
    key: Hashable
    before: FrozenSet[str]
    after: FrozenSet[str]
    generation: int


class DirectoryService:
    """Controller-side map of key -> replica set, per register group."""

    def __init__(self, all_switches: Iterable[str]) -> None:
        self.all_switches: FrozenSet[str] = frozenset(all_switches)
        if not self.all_switches:
            raise ValueError("directory needs at least one switch")
        self._placements: Dict[int, Dict[Hashable, PlacementEntry]] = {}
        #: Access observations: (group, key) -> set of accessing switches.
        self._observed: Dict[Tuple[int, Hashable], Set[str]] = {}
        self.migrations: List[MigrationRecord] = []

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def replicas_of(self, group_id: int, key: Hashable) -> FrozenSet[str]:
        """The switches holding ``key`` (all of them if never placed)."""
        entry = self._placements.get(group_id, {}).get(key)
        if entry is None:
            return self.all_switches
        return entry.replicas

    def is_replica(self, group_id: int, key: Hashable, switch: str) -> bool:
        return switch in self.replicas_of(group_id, key)

    def placement(self, group_id: int, key: Hashable) -> Optional[PlacementEntry]:
        return self._placements.get(group_id, {}).get(key)

    # ------------------------------------------------------------------
    # Placement and migration
    # ------------------------------------------------------------------
    def place(self, group_id: int, key: Hashable, replicas: Iterable[str]) -> PlacementEntry:
        """Set a key's replica set explicitly."""
        replica_set = frozenset(replicas)
        unknown = replica_set - self.all_switches
        if unknown:
            raise ValueError(f"unknown switches in replica set: {sorted(unknown)}")
        if not replica_set:
            raise ValueError("a key must have at least one replica")
        group = self._placements.setdefault(group_id, {})
        previous = group.get(key)
        generation = (previous.generation + 1) if previous else 0
        entry = PlacementEntry(key=key, replicas=replica_set, generation=generation)
        group[key] = entry
        return entry

    def migrate(self, group_id: int, key: Hashable, to: Iterable[str]) -> MigrationRecord:
        """Move a key to a new replica set, recording the transition.

        The caller is responsible for the add-then-remove data movement
        (copy state to new replicas before dropping old ones); the
        directory records generations so stale lookups are detectable.
        """
        before = self.replicas_of(group_id, key)
        entry = self.place(group_id, key, to)
        record = MigrationRecord(
            group_id=group_id,
            key=key,
            before=before,
            after=entry.replicas,
            generation=entry.generation,
        )
        self.migrations.append(record)
        return record

    # ------------------------------------------------------------------
    # Locality-driven placement
    # ------------------------------------------------------------------
    def observe_access(self, group_id: int, key: Hashable, switch: str) -> None:
        """Record that ``switch`` touched ``key`` (fed by experiments)."""
        self._observed.setdefault((group_id, key), set()).add(switch)

    def accessors_of(self, group_id: int, key: Hashable) -> FrozenSet[str]:
        return frozenset(self._observed.get((group_id, key), set()))

    def place_by_locality(
        self, group_id: int, min_replicas: int = 2
    ) -> List[PlacementEntry]:
        """Home every observed key on its accessing switches.

        ``min_replicas`` keeps a fault-tolerance floor: keys seen by
        fewer switches get padded with deterministic extras.
        """
        if min_replicas > len(self.all_switches):
            raise ValueError("min_replicas exceeds the deployment size")
        entries = []
        ordered_switches = sorted(self.all_switches)
        for (observed_group, key), accessors in sorted(
            self._observed.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        ):
            if observed_group != group_id:
                continue
            replicas = set(accessors)
            for name in ordered_switches:
                if len(replicas) >= min_replicas:
                    break
                replicas.add(name)
            entries.append(self.place(group_id, key, replicas))
        return entries

    # ------------------------------------------------------------------
    # Savings accounting (the section 9 question, quantified)
    # ------------------------------------------------------------------
    def memory_savings(self, group_id: int, value_bytes: int) -> Tuple[int, int]:
        """(bytes under full replication, bytes under this placement).

        Counts replica-copies of placed keys only; unplaced keys cost
        the same either way.
        """
        group = self._placements.get(group_id, {})
        full = len(group) * len(self.all_switches) * value_bytes
        partial = sum(len(e.replicas) for e in group.values()) * value_bytes
        return full, partial

    def replication_fanout(self, group_id: int, key: Hashable, writer: str) -> int:
        """How many update copies a write to ``key`` at ``writer`` sends."""
        replicas = self.replicas_of(group_id, key)
        return len(replicas - {writer})
