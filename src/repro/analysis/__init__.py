"""Consistency checking and measurement: histories, linearizability, metrics."""

from repro.analysis.history import HistoryRecorder, Operation
from repro.analysis.linearizability import (
    LinearizabilityReport,
    check_history,
    check_key_linearizable,
)
from repro.analysis.metrics import (
    RateMeter,
    SampleSeries,
    convergence_time,
    count_stale_reads,
    replica_divergence,
)

__all__ = [
    "HistoryRecorder",
    "Operation",
    "LinearizabilityReport",
    "check_history",
    "check_key_linearizable",
    "RateMeter",
    "SampleSeries",
    "convergence_time",
    "count_stale_reads",
    "replica_divergence",
]
