"""Nodes and links.

The paper's system model (section 5): switches communicate over a
network where "packets can be dropped, and links and switches may fail".
This module provides exactly that substrate:

* :class:`Node` — anything that can receive packets (switches, end
  hosts, the central controller).
* :class:`Link` — a bidirectional connection made of two independent
  unidirectional :class:`Channel` objects, each with propagation latency,
  finite bandwidth (store-and-forward FIFO serialization), an i.i.d. loss
  probability, and an administrative up/down state for fault injection.

There is deliberately **no reliability**: delivery is at-most-once and
unordered across channels, mirroring the paper's observation that
switches cannot run TCP in the data plane.  Any retransmission logic
lives in the protocols (SRO's control-plane retries) or nowhere at all
(EWO's periodic sync), as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.packet import Packet

__all__ = ["Node", "Channel", "Link", "LinkStats"]


class Node:
    """Base class for every packet-handling entity in the network."""

    def __init__(self, name: str) -> None:
        self.name = name
        #: Links attached to this node, keyed by the neighbor's name.
        self.links: Dict[str, "Link"] = {}
        #: Fail-stop flag: a failed node silently drops everything.
        self.failed = False

    def attach_link(self, link: "Link", neighbor: str) -> None:
        self.links[neighbor] = link

    def neighbors(self) -> List[str]:
        return sorted(self.links)

    def handle_packet(self, packet: "Packet", from_node: str) -> None:
        """Process a packet arriving from ``from_node``.  Subclasses override."""
        raise NotImplementedError

    def deliver(self, packet: "Packet", from_node: str) -> None:
        """Entry point used by channels; respects fail-stop semantics."""
        if self.failed:
            return
        self.handle_packet(packet, from_node)

    def send(self, packet: "Packet", to_neighbor: str) -> bool:
        """Transmit ``packet`` to a directly connected neighbor.

        Returns False if this node has failed or has no such link; the
        packet is then dropped, matching fail-stop semantics.  (A missing
        link is a *drop*, not an error: the network layer promises
        at-most-once delivery and nothing else, so callers that need to
        distinguish "no such neighbor" check the return value — see
        ``PisaSwitch.forward_to_node``.)
        """
        if self.failed:
            return False
        link = self.links.get(to_neighbor)
        if link is None:
            return False
        link.transmit(packet, from_node=self.name)
        return True

    def fail(self) -> None:
        """Fail-stop this node (paper section 6.3)."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class LinkStats:
    """Per-channel counters used by bandwidth-overhead experiments."""

    __slots__ = ("packets_sent", "bytes_sent", "packets_dropped", "packets_delivered")

    def __init__(self) -> None:
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_dropped = 0
        self.packets_delivered = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "packets_dropped": self.packets_dropped,
            "packets_delivered": self.packets_delivered,
        }


class Channel:
    """One direction of a link: src -> dst."""

    def __init__(
        self,
        sim: Simulator,
        src: Node,
        dst: Node,
        latency: float,
        bandwidth_bps: float,
        loss_rate: float,
        rng: SeededRng,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self.up = True
        self.stats = LinkStats()
        self._loss_stream = rng.stream(f"loss:{src.name}->{dst.name}")
        self._tracer = tracer
        # Hot-path precomputation: transmit() runs once per packet per
        # hop, so the event labels and the tracer's category decision are
        # resolved here instead of rebuilding f-strings every call.
        self._trace_drops = tracer.enabled("link")
        self._deliver_label = f"link:{src.name}->{dst.name}"
        self._dup_label = f"nemesis-dup:{src.name}->{dst.name}"
        #: Time the transmitter is busy until (FIFO serialization).
        self._busy_until = 0.0
        #: Optional adversarial wrapper (``repro.chaos.nemesis``): consulted
        #: after the loss decision to delay and/or duplicate the packet.
        self.nemesis = None
        self.bind_metrics(NULL_REGISTRY)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """(Re)bind utilization instruments; the deployment calls this.

        The ``node`` label is the directed channel, ``src->dst``.
        ``link.busy_seconds`` accumulates transmitter occupancy, so
        utilization over a window is ``busy_seconds / window``.
        """
        channel = f"{self.src.name}->{self.dst.name}"
        self._metrics_on = metrics.enabled
        self._m_packets = metrics.counter("link.packets_sent", channel)
        self._m_bytes = metrics.counter("link.bytes_sent", channel)
        self._m_drops = metrics.counter("link.drops", channel)
        self._m_busy = metrics.counter("link.busy_seconds", channel)

    def transmit(self, packet: "Packet") -> None:
        """Queue ``packet`` for delivery to ``dst``.

        Serialization delay is ``wire_size * 8 / bandwidth`` and packets
        share the transmitter FIFO; propagation adds ``latency``.  Loss is
        decided at transmit time (the packet occupies the wire either way,
        as a corrupted frame would).
        """
        stats = self.stats
        # wire_size is a computed property walking the header stack;
        # resolve it once per transmit instead of three times.
        wire_size = packet.wire_size
        stats.packets_sent += 1
        stats.bytes_sent += wire_size
        if self._metrics_on:
            self._m_packets.inc()
            self._m_bytes.inc(wire_size)
        if not self.up:
            stats.packets_dropped += 1
            if self._metrics_on:
                self._m_drops.inc()
            return
        sim = self.sim
        now = sim.now
        busy_until = self._busy_until
        start = now if now > busy_until else busy_until
        serialization = wire_size * 8 / self.bandwidth_bps
        self._busy_until = start + serialization
        arrival = start + serialization + self.latency
        if self._metrics_on:
            self._m_busy.inc(serialization)
        if self.loss_rate > 0.0 and self._loss_stream.random() < self.loss_rate:
            stats.packets_dropped += 1
            if self._metrics_on:
                self._m_drops.inc()
            if self._trace_drops:
                self._tracer.emit(
                    now, "link", self.src.name, "drop", to=self.dst.name, pkt=packet.uid
                )
            return
        if self.nemesis is not None:
            extra, duplicate_offsets = self.nemesis.plan(packet, self)
            for offset in duplicate_offsets:
                sim.schedule(
                    arrival + offset - now,
                    self._deliver,
                    packet.clone(),
                    label=self._dup_label,
                )
            arrival += extra
        sim.schedule(arrival - now, self._deliver, packet, label=self._deliver_label)

    def _deliver(self, packet: "Packet") -> None:
        if not self.up:
            self.stats.packets_dropped += 1
            if self._metrics_on:
                self._m_drops.inc()
            return
        self.stats.packets_delivered += 1
        self.dst.deliver(packet, from_node=self.src.name)


class Link:
    """A bidirectional link: two channels with shared parameters."""

    def __init__(
        self,
        sim: Simulator,
        a: Node,
        b: Node,
        latency: float = 5e-6,
        bandwidth_bps: float = 100e9,
        loss_rate: float = 0.0,
        rng: Optional[SeededRng] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        rng = rng if rng is not None else SeededRng(0)
        self.a = a
        self.b = b
        self.ab = Channel(sim, a, b, latency, bandwidth_bps, loss_rate, rng, tracer)
        self.ba = Channel(sim, b, a, latency, bandwidth_bps, loss_rate, rng, tracer)
        a.attach_link(self, b.name)
        b.attach_link(self, a.name)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Bind utilization instruments for both directions."""
        self.ab.bind_metrics(metrics)
        self.ba.bind_metrics(metrics)

    @property
    def up(self) -> bool:
        return self.ab.up and self.ba.up

    def set_up(self, up: bool) -> None:
        """Administratively raise/lower both directions (fault injection)."""
        self.ab.up = up
        self.ba.up = up

    def transmit(self, packet: "Packet", from_node: str) -> None:
        if from_node == self.a.name:
            self.ab.transmit(packet)
        elif from_node == self.b.name:
            self.ba.transmit(packet)
        else:
            raise ValueError(f"{from_node} is not an endpoint of link {self.a.name}<->{self.b.name}")

    def channel_from(self, node_name: str) -> Channel:
        """The unidirectional channel whose transmitter is ``node_name``."""
        if node_name == self.a.name:
            return self.ab
        if node_name == self.b.name:
            return self.ba
        raise ValueError(f"{node_name} is not an endpoint of this link")

    def other_end(self, node_name: str) -> Node:
        if node_name == self.a.name:
            return self.b
        if node_name == self.b.name:
            return self.a
        raise ValueError(f"{node_name} is not an endpoint of this link")
