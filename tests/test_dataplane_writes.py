"""Tests for data-plane write buffering (the section 9 open question)."""

from __future__ import annotations

import pytest

from repro.core.manager import Decision
from repro.core.registers import Consistency, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_tcp_packet
from repro.nf.base import NetworkFunction


def declare_dp(deployment, **kwargs):
    return deployment.declare(
        RegisterSpec("dpreg", Consistency.SRO, dataplane_write_buffering=True, **kwargs)
    )


class TestSpecValidation:
    def test_incompatible_with_control_plane_tables(self):
        with pytest.raises(ValueError):
            RegisterSpec(
                "bad",
                Consistency.SRO,
                dataplane_write_buffering=True,
                control_plane_state=True,
            )


class TestDataplaneWritePath:
    def test_commits_without_cpu(self, make_deployment):
        dep, _, _ = make_deployment(3)
        spec = declare_dp(dep)
        writer = dep.manager("s1")
        writer.register_write(spec, "k", "v")
        dep.sim.run(until=0.01)
        assert writer.sro.stats_for(spec.group_id).writes_committed == 1
        assert writer.switch.control.ops_executed == 0
        assert all(s.get("k") == "v" for s in dep.sro_stores(spec))

    def test_faster_than_control_plane_path(self, make_deployment):
        dep, _, _ = make_deployment(3)
        dp = declare_dp(dep)
        cp = dep.declare(RegisterSpec("cpreg", Consistency.SRO))
        writer = dep.manager("s1")
        writer.register_write(dp, "k", 1)
        writer.register_write(cp, "k", 1)
        dep.sim.run(until=0.05)
        dp_latency = writer.sro.stats_for(dp.group_id).mean_write_latency
        cp_latency = writer.sro.stats_for(cp.group_id).mean_write_latency
        assert dp_latency < cp_latency

    def test_linearizable(self, make_deployment):
        from repro.analysis.linearizability import check_history

        dep, _, _ = make_deployment(3, record_history=True)
        spec = declare_dp(dep)
        for i in range(10):
            dep.sim.schedule(
                i * 30e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_write(spec, "k", i),
            )
        for i in range(20):
            dep.sim.schedule(
                7e-6 + i * 17e-6,
                lambda i=i: dep.manager(f"s{i % 3}").register_read(spec, "k", None),
            )
        dep.sim.run(until=0.05)
        assert check_history(dep.history).ok


class _DpWriterNF(NetworkFunction):
    """Installs a flow record via the data-plane write path."""

    @classmethod
    def build_specs(cls, **kwargs):
        return [
            RegisterSpec(
                "flows", Consistency.SRO, capacity=128, dataplane_write_buffering=True
            )
        ]

    def process(self, ctx):
        flow = ctx.packet.five_tuple()
        handle = self.handles["flows"]
        if flow is not None and handle.read(flow.as_tuple()) is None:
            handle.write(flow.as_tuple(), True)
        return Decision.forward()


class TestRecirculationHold:
    def _world(self, make_deployment):
        dep, topo, switches = make_deployment(3)
        book = dep.address_book
        src = topo.add_node(EndHost("src", dep.sim, "10.0.0.1", book))
        dst = topo.add_node(EndHost("dst", dep.sim, "10.0.0.2", book))
        topo.connect("src", "s0")
        topo.connect("dst", "s2")
        dep.routing.recompute()
        dep.install_nf(_DpWriterNF)
        return dep, src, dst

    def test_output_held_by_recirculation_then_released(self, make_deployment):
        dep, src, dst = self._world(make_deployment)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        dep.sim.run(until=8e-6)
        # the packet reached s0 and is circling the pipeline, not in DRAM
        assert dep.manager("s0").switch.control.buffered_count == 0
        assert len(dep.manager("s0").sro._dp_holds) == 1
        assert dst.received == []
        dep.sim.run(until=0.05)
        assert len(dst.received) == 1
        assert len(dep.manager("s0").sro._dp_holds) == 0
        # recirculation passes were charged to the pipeline
        assert dep.manager("s0").switch.stats.recirculated_packets > 0

    def test_dataplane_resend_recovers_from_loss(self, make_deployment):
        dep, topo, _ = make_deployment(3, loss_rate=0.35)
        spec = declare_dp(dep)
        book = dep.address_book
        src = topo.add_node(EndHost("src", dep.sim, "10.0.0.1", book))
        dst = topo.add_node(EndHost("dst", dep.sim, "10.0.0.2", book))
        topo.connect("src", "s0")
        topo.connect("dst", "s2")
        dep.routing.recompute()
        for i in range(10):
            dep.sim.schedule(
                i * 100e-6,
                lambda i=i: dep.manager("s0").register_write(spec, f"k{i}", i),
            )
        dep.sim.run(until=1.0)
        committed = dep.manager("s0").sro.stats_for(spec.group_id).writes_committed
        assert committed == 10
        stores = dep.sro_stores(spec)
        assert all(store == stores[0] for store in stores)

    def test_hold_dropped_when_chain_unreachable(self, make_deployment):
        dep, src, dst = self._world(make_deployment)
        dep.controller.stop()  # never repair the chain
        for name in ("s1", "s2"):
            dep.fail_switch(name)
        src.inject(make_tcp_packet("10.0.0.1", "10.0.0.2", 1, 2))
        dep.sim.run(until=15.0)  # DP_MAX_RESENDS x 64 x 800ns ~ 10 s
        engine = dep.manager("s0").sro
        assert engine.dp_drops == 1
        assert len(engine._dp_holds) == 0
        assert dst.received == []

    def test_dp_hold_retries_through_repaired_chain(self, make_deployment):
        """Head fails with the write in flight: the data-plane resend
        targets the repaired chain's new head and still commits."""
        dep, _, _ = make_deployment(3)
        spec = declare_dp(dep)
        writer = dep.manager("s1")
        # fail the head a moment before the write, so the first request
        # is lost and the chain is repaired while the hold recirculates
        dep.controller.note_failure_time("s0")
        dep.fail_switch("s0")
        writer.register_write(spec, "k", "v")
        dep.sim.run(until=0.5)
        assert dep.chains[spec.group_id].head == "s1"
        stats = writer.sro.stats_for(spec.group_id)
        assert stats.writes_committed == 1
        live_stores = dep.sro_stores(spec)
        assert all(s.get("k") == "v" for s in live_stores)
        assert writer.sro.dp_resends > 0  # the data plane retried

    def test_mixed_write_set_falls_back_to_cpu(self, make_deployment):
        dep, _, _ = make_deployment(2)
        dp = declare_dp(dep)
        cp = dep.declare(RegisterSpec("cpreg", Consistency.SRO))

        class MixedNF(NetworkFunction):
            @classmethod
            def build_specs(cls, **kwargs):
                return []

            def process(self, ctx):
                ctx.write_set.append((dp, "a", 1))
                ctx.write_set.append((cp, "b", 2))
                return Decision.drop()

        # write sets are engine-level; drive initiate_writes directly
        engine = dep.manager("s0").sro
        engine.initiate_writes([(dp, "a", 1), (cp, "b", 2)], None, None)
        dep.sim.run(until=0.05)
        assert engine.stats_for(dp.group_id).writes_committed == 1
        assert engine.stats_for(cp.group_id).writes_committed == 1
        assert engine.dp_holds_created == 0  # conservative CPU path used
