"""Tests for workload generation: Zipf, flows, attacks, traces."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.endhost import AddressBook, EndHost
from repro.net.headers import PROTO_TCP, TcpFlags
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.workload.attack import AttackScenario
from repro.workload.flows import FlowGenerator, FlowSpec, inject_flow
from repro.workload.trace import PacketTrace, TraceRecord, generate_trace
from repro.workload.zipf import ZipfSampler


class TestZipf:
    def test_rank_zero_most_popular(self):
        sampler = ZipfSampler(100, s=1.2, rng=SeededRng(1).stream("z"))
        draws = sampler.sample_many(5000)
        counts = {}
        for draw in draws:
            counts[draw] = counts.get(draw, 0) + 1
        assert counts.get(0, 0) > counts.get(10, 0)
        assert max(draws) < 100 and min(draws) >= 0

    def test_s_zero_is_uniform(self):
        sampler = ZipfSampler(4, s=0.0, rng=SeededRng(2).stream("z"))
        draws = sampler.sample_many(8000)
        for rank in range(4):
            share = draws.count(rank) / len(draws)
            assert 0.2 < share < 0.3

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(10, s=1.0, rng=SeededRng(4).stream("z"))
        total = sum(sampler.probability(rank) for rank in range(10))
        assert total == pytest.approx(1.0)

    def test_pick_from_items(self):
        sampler = ZipfSampler(3, rng=SeededRng(3).stream("z"))
        assert sampler.pick(["a", "b", "c"]) in ("a", "b", "c")
        with pytest.raises(ValueError):
            sampler.pick(["a"])

    def test_deterministic(self):
        a = ZipfSampler(50, s=1.0, rng=SeededRng(7).stream("z")).sample_many(100)
        b = ZipfSampler(50, s=1.0, rng=SeededRng(7).stream("z")).sample_many(100)
        assert a == b

    def test_missing_rng_deprecated(self):
        """Omitting rng= used to silently share random.Random(0) draws
        between unrelated samplers; now it warns and derives a seed."""
        with pytest.warns(DeprecationWarning, match="SeededRng"):
            sampler = ZipfSampler(10, s=1.0)
        draws = sampler.sample_many(10)
        assert all(0 <= d < 10 for d in draws)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, s=-1)
        with pytest.warns(DeprecationWarning):
            sampler = ZipfSampler(5)
        with pytest.raises(IndexError):
            sampler.probability(9)


def world_with_client():
    sim = Simulator()
    topo = Topology(sim, SeededRng(5))
    book = AddressBook()
    client = topo.add_node(EndHost("client", sim, "10.0.0.1", book))
    server = topo.add_node(EndHost("server", sim, "10.0.0.2", book))
    # direct link: packets flow client -> server without switches
    topo.connect("client", "server")
    return sim, topo, client, server


class TestFlows:
    def test_inject_flow_structure(self):
        sim, topo, client, server = world_with_client()
        flow = FlowSpec(client=client, dst_ip="10.0.0.2", data_packets=3)
        done = []
        inject_flow(sim, flow, on_done=done.append)
        sim.run()
        assert len(server.received) == flow.total_packets == 5
        flags = [r.packet.tcp.flags for r in server.received]
        assert flags[0] & TcpFlags.SYN
        assert flags[-1] & TcpFlags.FIN
        assert all(f & TcpFlags.PSH for f in flags[1:-1])
        assert done == [flow]

    def test_flow_shares_five_tuple(self):
        sim, topo, client, server = world_with_client()
        inject_flow(sim, FlowSpec(client=client, dst_ip="10.0.0.2", data_packets=2))
        sim.run()
        tuples = {r.packet.five_tuple() for r in server.received}
        assert len(tuples) == 1

    def test_payload_digest_propagates(self):
        sim, topo, client, server = world_with_client()
        inject_flow(sim, FlowSpec(client=client, dst_ip="10.0.0.2", payload_digest=42))
        sim.run()
        assert all(r.packet.payload_digest == 42 for r in server.received)

    def test_generator_poisson_arrivals(self):
        sim, topo, client, server = world_with_client()
        generator = FlowGenerator(
            sim, [client], ["10.0.0.2"], SeededRng(9), flow_rate=5000, data_packets=1
        )
        generator.start(duration=0.02)
        sim.run(until=0.1)
        assert generator.flows_completed == len(generator.flows_started) > 0
        # roughly rate * duration flows
        assert 50 < len(generator.flows_started) < 160

    def test_generator_stops_at_deadline(self):
        sim, topo, client, server = world_with_client()
        generator = FlowGenerator(
            sim, [client], ["10.0.0.2"], SeededRng(9), flow_rate=1000
        )
        generator.start(duration=0.01)
        sim.run(until=1.0)
        assert all(f.start_at <= 0.011 for f in generator.flows_started)

    def test_generator_validation(self):
        sim, topo, client, server = world_with_client()
        with pytest.raises(ValueError):
            FlowGenerator(sim, [], ["x"], SeededRng(1))
        with pytest.raises(ValueError):
            FlowGenerator(sim, [client], ["x"], SeededRng(1), flow_rate=0)

    def test_unique_src_ports(self):
        specs = [FlowSpec(client=None, dst_ip="x") for _ in range(10)]
        assert len({s.src_port for s in specs}) == 10


class TestAttack:
    def _scenario(self, sim, client, **kwargs):
        defaults = dict(
            sim=sim,
            clients=[client],
            server_ips=["10.0.0.2", "10.0.0.3"],
            rng=SeededRng(4),
            background_pps=5000,
            attack_pps=50000,
            attack_start=5e-3,
            attack_duration=5e-3,
            bot_count=50,
        )
        defaults.update(kwargs)
        return AttackScenario(**defaults)

    def test_phases_counted(self):
        sim, topo, client, server = world_with_client()
        scenario = self._scenario(sim, client)
        scenario.start(duration=0.02)
        sim.run(until=0.03)
        assert scenario.background_sent > 0
        assert scenario.attack_sent > 0

    def test_attack_targets_victim(self):
        sim, topo, client, server = world_with_client()
        scenario = self._scenario(sim, client, victim_ip="10.0.0.2")
        scenario.start(duration=0.02)
        sim.run(until=0.03)
        attack_packets = [
            r.packet for r in server.received if r.packet.ipv4.src.startswith("203.0.")
        ]
        assert attack_packets
        assert all(p.ipv4.dst == "10.0.0.2" for p in attack_packets)

    def test_attack_window_respected(self):
        sim, topo, client, server = world_with_client()
        scenario = self._scenario(sim, client)
        scenario.start(duration=0.02)
        sim.run(until=0.03)
        attack_times = [
            r.time for r in server.received if r.packet.ipv4.src.startswith("203.0.")
        ]
        assert min(attack_times) >= scenario.attack_start
        # small delivery slack past the end
        assert max(attack_times) <= scenario.attack_end + 1e-3

    def test_in_attack_helper(self):
        sim, topo, client, server = world_with_client()
        scenario = self._scenario(sim, client)
        assert scenario.in_attack(6e-3)
        assert not scenario.in_attack(1e-3)
        assert not scenario.in_attack(20e-3)

    def test_validation(self):
        sim, topo, client, server = world_with_client()
        with pytest.raises(ValueError):
            AttackScenario(sim=sim, clients=[], server_ips=["x"], rng=SeededRng(1))


class TestTrace:
    def test_generate_sorted_and_bounded(self):
        trace = generate_trace(
            SeededRng(6), duration=0.01, pps=10000,
            src_ips=["1.1.1.1"], dst_ips=["2.2.2.2", "3.3.3.3"],
        )
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert all(0 <= t < 0.01 for t in times)
        assert 50 < len(trace) < 200

    def test_roundtrip_through_file(self, tmp_path):
        trace = generate_trace(
            SeededRng(6), duration=0.005, pps=5000,
            src_ips=["1.1.1.1"], dst_ips=["2.2.2.2"],
        )
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = PacketTrace.load(path)
        assert len(loaded) == len(trace)
        assert loaded.records[0] == trace.records[0]

    def test_record_to_packet(self):
        record = TraceRecord(
            time=0.0, src_ip="1.1.1.1", dst_ip="2.2.2.2",
            src_port=10, dst_port=20, protocol=PROTO_TCP,
            payload_size=99, flags=int(TcpFlags.SYN), payload_digest=5,
        )
        packet = record.to_packet()
        assert packet.tcp is not None
        assert packet.tcp.flags & TcpFlags.SYN
        assert packet.payload_size == 99 and packet.payload_digest == 5

    def test_replay_injects_at_hosts(self):
        sim, topo, client, server = world_with_client()
        trace = generate_trace(
            SeededRng(8), duration=0.005, pps=2000,
            src_ips=["10.0.0.1"], dst_ips=["10.0.0.2"],
        )
        scheduled = trace.replay(sim, {"10.0.0.1": client})
        sim.run(until=0.1)
        assert scheduled == len(trace)
        assert len(server.received) == scheduled

    def test_replay_fallback_host(self):
        sim, topo, client, server = world_with_client()
        trace = PacketTrace([
            TraceRecord(time=0.0, src_ip="8.8.8.8", dst_ip="10.0.0.2", src_port=1, dst_port=2)
        ])
        assert trace.replay(sim, {}, fallback_host=client) == 1
        assert trace.replay(sim, {}) == 0

    def test_duration(self):
        assert PacketTrace([]).duration == 0.0
        trace = PacketTrace([
            TraceRecord(time=1.0, src_ip="a", dst_ip="b", src_port=1, dst_port=2),
            TraceRecord(time=3.0, src_ip="a", dst_ip="b", src_port=1, dst_port=2),
        ])
        assert trace.duration == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace(SeededRng(1), duration=0, pps=1, src_ips=["a"], dst_ips=["b"])
