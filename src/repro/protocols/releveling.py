"""Runtime consistency re-leveling: drain -> switch -> unfence.

The paper assigns each NF a static Table 1 consistency class; the
access-pattern profiler (:mod:`repro.obs.accessprof`) and advisor
(:mod:`repro.obs.advisor`) re-derive that table from live traffic and
flag misdeclared groups.  This module closes the loop: a
:class:`RelevelingCoordinator` takes a high-confidence recommendation
and *acts* on it, promoting or demoting a register group between SRO,
ERO, and EWO on a live deployment without losing a committed write.

The handoff is a controller-driven three-phase protocol, every phase an
idempotent epoch-fenced :class:`~repro.protocols.messages.ControllerCommand`
so a takeover leader can blindly re-drive the current phase:

1. **drain** (``relevel_fence``): every switch installs a write fence
   for the group — new writes park in a per-switch overlay instead of
   the protocol engines — and the coordinator polls until the old
   engine quiesces: no pending bit set and no writer state outstanding
   (SRO/ERO source), or queued entries flushed plus a settle window for
   in-flight broadcasts (EWO source).  The fence rides an epoch bump,
   so in-flight commands from a deposed leader cannot land mid-handoff.

2. **switch** (``relevel_switch``): the leader synchronously rewrites
   the global structures — retire the chain / create the multicast
   group (or the reverse), snapshot the drained authoritative value
   (SRO head store, or the LWW merge of every replica), and rewrite
   ``RegisterSpec.consistency`` — then commands every switch to tear
   down its old engine and install + seed the new one.  Seeding uses
   one controller-issued timestamp, so all replicas land byte-identical
   state.  Promotion chain versions continue monotonically from the
   retired chain's version, so stale ``set_chain`` commands stay fenced
   across a demote/promote flap.

3. **unfence** (``relevel_unfence``): each switch pops its fence and
   replays the overlay through the normal write path — now routed to
   the new engine.  Re-levelable groups have overwrite (LWW) semantics,
   so replaying each key's last fenced value is exact.

If a chain member dies mid-drain, or the drain times out, the handoff
**rolls back**: the fences are released without switching, and the
group keeps its original level.  Counter/OR-set EWO groups are refused
outright — their merge state has no overwrite-faithful representation
in a chain store.

The coordinator is deployment-scoped (not per-controller-replica) so an
in-progress handoff survives a leader crash; only command *sending* is
leader-gated.  ``ControllerCluster`` calls :meth:`on_leader_ready` at
the end of every takeover reconstruction, which resumes (or completes)
the current phase under the new leader's epoch.

Every phase is stamped into the flight recorder (``relevel.begin`` /
``.drain`` / ``.switch`` / ``.unfence`` / ``.complete`` / ``.rollback``
/ ``.resume``) for post-mortem timelines; ``phase_listeners`` fire just
after each phase's commands are sent — the seam the chaos nemesis uses
to kill the leader at the worst possible moments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.chain import ChainDescriptor
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.crdt.clock import Timestamp
from repro.obs.causal import CausalClock
from repro.protocols.messages import ControllerCommand

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.manager import SwiShmemDeployment, SwiShmemManager
    from repro.obs.advisor import ConsistencyAdvisor

__all__ = ["Handoff", "RelevelingCoordinator", "RelevelStats"]

#: Drain poll cadence, in units of the cluster's config latency.
_POLL_FACTOR = 2.0


class RelevelStats:
    """Counters over the coordinator's lifetime (chaos digests use them)."""

    __slots__ = (
        "requested",
        "completed",
        "rollbacks",
        "deferred",
        "resumed",
        "refused",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


@dataclass
class Handoff:
    """One in-flight re-level."""

    group_id: int
    spec: RegisterSpec
    source: Consistency
    target: Consistency
    reason: str
    started_at: float
    epoch: int
    #: "drain" | "switch" | "unfence"
    phase: str = "drain"
    #: Bumped on every leader resume; scheduled callbacks carry the gen
    #: they were scheduled under and no-op when it has moved on.
    gen: int = 0
    drain_deadline: float = 0.0
    #: Sim time when every live member was first observed fenced (EWO
    #: sources wait a settle window past this for in-flight broadcasts).
    fenced_all_at: Optional[float] = None
    #: The exact ``relevel_switch`` payload, stored so a takeover leader
    #: re-sends byte-identical (idempotent) commands.
    switch_payload: Optional[Dict[str, Any]] = None
    trace: Any = None
    resumes: int = 0


class RelevelingCoordinator:
    """Executes advisor-recommended consistency transitions live."""

    def __init__(self, deployment: "SwiShmemDeployment") -> None:
        self.deployment = deployment
        self.sim = deployment.sim
        self.stats = RelevelStats()
        self.causal = CausalClock("releveler")
        #: In-flight handoffs by group id.
        self._active: Dict[int, Handoff] = {}
        #: Requests waiting for a leader (or for the group's current
        #: handoff to finish): (spec, target, reason).
        self._queue: List[Tuple[RegisterSpec, Consistency, str]] = []
        #: Chain versions retired by demotions, so a later promotion
        #: continues the version sequence monotonically (epoch fencing
        #: on chain updates depends on versions never reusing a value).
        self._retired_versions: Dict[int, int] = {}
        #: Hooks ``listener(phase, handoff)`` fired right after a
        #: phase's commands are sent (chaos nemeses register here).
        self.phase_listeners: List[Callable[[str, Handoff], None]] = []
        #: Drain-timeout override in seconds (None = derived default).
        #: The timeout is a *backstop* against a wedged engine, not a
        #: liveness bound: in-flight SRO writes may ride long retry
        #: backoffs under loss or duplication, and fencing already
        #: stops new work, so generous is correct — member death is
        #: detected separately and rolls back immediately.
        self.drain_timeout: Optional[float] = None
        #: Completed handoffs: (group name, source, target, duration).
        self.log: List[Tuple[str, str, str, float]] = []
        self._bind_observability()

    def _bind_observability(self) -> None:
        """Capture the deployment's observability hooks (construction
        and ``Deployment.rebind_observability``)."""
        metrics = self.deployment.metrics
        self._metrics_on = metrics.enabled
        self._flightrec = self.deployment.flight_recorder
        self._flightrec_on = self._flightrec.enabled
        self._m_requested = metrics.counter("relevel.requested", "controller")
        self._m_completed = metrics.counter("relevel.completed", "controller")
        self._m_rollbacks = metrics.counter("relevel.rollbacks", "controller")
        self._m_resumed = metrics.counter("relevel.resumed", "controller")
        self._m_duration = metrics.histogram("relevel.handoff_seconds", "controller")

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def request(
        self, spec: RegisterSpec, target: Any, reason: str = ""
    ) -> bool:
        """Ask for ``spec`` to be re-leveled to ``target``.

        Returns True when a handoff started immediately; False when the
        request was queued (no active leader, or the group is already
        mid-handoff).  Raises for transitions that cannot be executed
        safely (non-LWW EWO groups, unknown groups, no-op targets).
        """
        target = Consistency(target)
        if spec.group_id not in self.deployment.specs:
            raise ValueError(f"group {spec.name!r} is not declared here")
        if spec.ewo_mode is not EwoMode.LWW:
            self.stats.refused += 1
            raise ValueError(
                f"cannot re-level {spec.name!r}: {spec.ewo_mode.value} merge "
                f"state has no overwrite-faithful chain representation"
            )
        if target is spec.consistency and spec.group_id not in self._active:
            raise ValueError(
                f"{spec.name!r} is already {target.value}; nothing to do"
            )
        leader = self.deployment.controller.active_leader()
        if leader is None or spec.group_id in self._active:
            self.stats.deferred += 1
            self._queue.append((spec, target, reason))
            return False
        self._begin(spec, target, reason, leader)
        return True

    def apply_advice(self, advisor: "ConsistencyAdvisor") -> List[str]:
        """Act on every high-confidence mismatch the advisor reports.

        Non-LWW groups are skipped (logged via ``stats.refused``) rather
        than raised: the advisor legitimately recommends levels for
        groups this protocol cannot carry.  Returns the names of groups
        whose re-level was started or queued.
        """
        acted: List[str] = []
        for advice in advisor.mismatches():
            spec = self.deployment.specs.get(advice.group_id)
            if spec is None:
                continue
            if spec.ewo_mode is not EwoMode.LWW:
                self.stats.refused += 1
                continue
            if Consistency(advice.recommended) is spec.consistency:
                continue
            self.request(spec, advice.recommended, reason=advice.rationale)
            acted.append(spec.name)
        return acted

    def active_handoff(self, group_id: int) -> Optional[Handoff]:
        return self._active.get(group_id)

    @property
    def queued(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Leader takeover
    # ------------------------------------------------------------------
    def on_leader_ready(self, leader: Any) -> None:
        """A (new) leader finished reconstruction: re-drive the current
        phase of every in-flight handoff under its epoch, then drain
        queued requests.  Every phase's commands are idempotent, so
        re-sending is always safe — including commands the dead leader
        already delivered."""
        for group_id in sorted(self._active):
            handoff = self._active[group_id]
            handoff.gen += 1
            handoff.resumes += 1
            handoff.epoch = leader.epoch
            self.stats.resumed += 1
            if self._metrics_on:
                self._m_resumed.inc()
            self._record(handoff, "relevel.resume", phase=handoff.phase)
            if handoff.phase == "drain":
                # Give the drain a fresh window: the dead leader's
                # outage ate into the old deadline.
                handoff.drain_deadline = max(
                    handoff.drain_deadline, self.sim.now + self._drain_timeout()
                )
                self._send_fences(handoff, leader)
                self._schedule_poll(handoff)
            elif handoff.phase == "switch":
                # Global structures were rewritten atomically with the
                # phase transition; only command delivery is in doubt.
                self._send_switch(handoff, leader)
                self._schedule_unfence(handoff)
            else:
                self._send_unfence(handoff, leader)
                self._schedule_finish(handoff)
        self._drain_queue()

    def reconcile_recovery(self, leader: Any, manager: "SwiShmemManager") -> None:
        """A recovered switch may have missed a re-level while failed:
        its live level disagrees with the (already rewritten) spec.
        Re-send it the switch step so it tears down the stale engine.

        A demoted group's recovered replica joins the multicast group
        with empty seed state and converges via sync gossip.  A promoted
        group's recovered replica installs the chain engine but rejoins
        the chain itself through the normal excision/readmission path.
        """
        for group_id in sorted(self.deployment.specs):
            if group_id in self._active:
                continue
            spec = self.deployment.specs[group_id]
            if manager.relevel_fence_for(group_id) is not None:
                # The switch died holding a fence from a handoff that
                # has since completed or rolled back: release it (the
                # overlay replays through whatever engine is live).
                leader._send_command(
                    manager,
                    ControllerCommand(
                        epoch=leader.epoch,
                        kind="relevel_unfence",
                        group=group_id,
                    ),
                )
            current = manager.level_of(spec)
            target = spec.consistency
            if current is target:
                continue
            if target is Consistency.EWO:
                if not self.deployment.multicast.has(group_id):
                    continue
                group = self.deployment.multicast.get(group_id)
                group.add(manager.switch.name)
                payload: Dict[str, Any] = {
                    "target": target.value,
                    "members": group.members,
                    "seed": [],
                    "stamp": Timestamp(self.sim.now, 0, 0),
                }
            elif current is Consistency.EWO:
                chain = self.deployment.chains.get(group_id)
                if chain is None:
                    continue
                payload = {"target": target.value, "chain": chain, "seed": []}
            else:
                payload = {"target": target.value}
            leader._send_command(
                manager,
                ControllerCommand(
                    epoch=leader.epoch,
                    kind="relevel_switch",
                    group=group_id,
                    payload=payload,
                ),
            )

    # ------------------------------------------------------------------
    # Phase 1: drain
    # ------------------------------------------------------------------
    def _begin(
        self, spec: RegisterSpec, target: Consistency, reason: str, leader: Any
    ) -> None:
        cluster = self.deployment.controller
        # Epoch bump (a CAS in the management config store): the fence
        # commands carry a fresh epoch, so anything in flight from a
        # deposed leader is fenced at every switch the drain touches.
        cluster.max_epoch += 1
        leader.epoch = cluster.max_epoch
        leader._seen_epoch = cluster.max_epoch
        handoff = Handoff(
            group_id=spec.group_id,
            spec=spec,
            source=spec.consistency,
            target=target,
            reason=reason,
            started_at=self.sim.now,
            epoch=leader.epoch,
        )
        handoff.trace = self.causal.root()
        handoff.drain_deadline = self.sim.now + self._drain_timeout()
        self._active[spec.group_id] = handoff
        self.stats.requested += 1
        if self._metrics_on:
            self._m_requested.inc()
        self._record(
            handoff,
            "relevel.begin",
            source=handoff.source.value,
            target=target.value,
            epoch=handoff.epoch,
            reason=reason[:120],
        )
        self._send_fences(handoff, leader)
        self._schedule_poll(handoff)

    def _drain_timeout(self) -> float:
        if self.drain_timeout is not None:
            return self.drain_timeout
        cluster = self.deployment.controller
        return max(200 * cluster.config_latency, 40 * cluster.drain_delay)

    def _poll_period(self) -> float:
        return _POLL_FACTOR * self.deployment.controller.config_latency

    def _send_fences(self, handoff: Handoff, leader: Any) -> None:
        self._broadcast(leader, "relevel_fence", handoff)
        self._record(handoff, "relevel.drain", epoch=handoff.epoch)
        self._notify("drain", handoff)

    def _schedule_poll(self, handoff: Handoff) -> None:
        self.sim.schedule(
            self._poll_period(),
            self._poll_drain,
            handoff.group_id,
            handoff.gen,
            label="relevel:poll-drain",
        )

    def _poll_drain(self, group_id: int, gen: int) -> None:
        handoff = self._active.get(group_id)
        if handoff is None or handoff.gen != gen or handoff.phase != "drain":
            return
        leader = self.deployment.controller.active_leader()
        if leader is None:
            # Leaderless: freeze here; on_leader_ready re-drives drain
            # under the successor (with a new gen).
            return
        members = self._live_members(group_id)
        if self._member_lost(handoff):
            self._rollback(handoff, leader, "member-died-mid-drain")
            return
        if self.sim.now > handoff.drain_deadline:
            self._rollback(handoff, leader, "drain-timeout")
            return
        if self._drained(handoff, members):
            self._do_switch(handoff, leader)
            return
        self._schedule_poll(handoff)

    def _live_members(self, group_id: int) -> List["SwiShmemManager"]:
        """Live managers still running an engine for the group."""
        return [
            manager
            for manager in self.deployment.managers.values()
            if not manager.switch.failed
            and (
                group_id in manager.sro.groups or group_id in manager.ewo.groups
            )
        ]

    def _member_lost(self, handoff: Handoff) -> bool:
        """Did a replica holding the group fail since the drain began?

        For an SRO/ERO source, ask the chain descriptor; for EWO, the
        multicast group.  Failover trims failed members from both, but
        only after detection — mid-drain we must notice immediately, or
        the drained snapshot could silently exclude committed writes
        (SRO) that only the dead head had sequenced.
        """
        group_id = handoff.group_id
        if handoff.source is Consistency.EWO:
            if not self.deployment.multicast.has(group_id):
                return True
            names = self.deployment.multicast.get(group_id).members
        else:
            chain = self.deployment.chains.get(group_id)
            if chain is None:
                return True
            names = chain.members
        return any(
            self.deployment.managers[name].switch.failed for name in names
        )

    def _drained(self, handoff: Handoff, members: List["SwiShmemManager"]) -> bool:
        group_id = handoff.group_id
        fenced = all(
            manager.relevel_fence_for(group_id) is not None for manager in members
        )
        if not fenced:
            handoff.fenced_all_at = None
            return False
        if handoff.fenced_all_at is None:
            handoff.fenced_all_at = self.sim.now
        if handoff.source is Consistency.EWO:
            # Fences flushed the queues; wait the settle window so
            # in-flight broadcast/sync packets land everywhere.
            settle = self.deployment.controller.drain_delay
            return self.sim.now >= handoff.fenced_all_at + settle
        return all(manager.sro.quiesced(group_id) for manager in members)

    # ------------------------------------------------------------------
    # Phase 2: switch
    # ------------------------------------------------------------------
    def _do_switch(self, handoff: Handoff, leader: Any) -> None:
        """Atomically (single sim event, no yields) rewrite the global
        structures, build the idempotent per-switch payload, and command
        the engine swap."""
        deployment = self.deployment
        group_id = handoff.group_id
        spec = handoff.spec
        target = handoff.target
        if target is Consistency.EWO:
            # Demotion: snapshot the head's drained store — the chain's
            # authoritative value — then retire the chain and stand up
            # the broadcast fan-out over the surviving members.
            chain = deployment.chains.pop(group_id)
            self._retired_versions[group_id] = chain.version
            members = [
                name
                for name in chain.members
                if not deployment.managers[name].switch.failed
            ]
            head_mgr = deployment.managers[chain.head]
            seed = [
                (key, value)
                for key, value, _slot, _seq in head_mgr.sro.snapshot(group_id)
            ]
            if not deployment.multicast.has(group_id):
                deployment.multicast.create(group_id, members=members)
            handoff.switch_payload = {
                "target": target.value,
                "members": members,
                "seed": seed,
                "stamp": Timestamp(self.sim.now, 0, 0),
            }
        elif handoff.source is Consistency.EWO:
            # Promotion: LWW-merge every live replica's cells — the
            # group's convergent value — then delete the fan-out and
            # install a chain whose version continues past anything the
            # group has ever seen.
            members = [
                name
                for name in deployment.multicast.get(group_id).members
                if not deployment.managers[name].switch.failed
            ]
            best: Dict[Any, Tuple[Any, Timestamp]] = {}
            for name in members:
                state = deployment.managers[name].ewo.groups.get(group_id)
                if state is None or state.cells is None:
                    continue
                for key, cell in state.cells.items():
                    if cell.version.node_id < 0:
                        continue  # never written
                    kept = best.get(key)
                    if kept is None or cell.version > kept[1]:
                        best[key] = (cell.value, cell.version)
            seed = [(key, best[key][0]) for key in sorted(best, key=repr)]
            version = self._retired_versions.get(group_id, 0) + 1
            chain = ChainDescriptor(
                chain_id=group_id, members=tuple(members), version=version
            )
            deployment.multicast.delete(group_id)
            deployment.chains[group_id] = chain
            handoff.switch_payload = {
                "target": target.value,
                "chain": chain,
                "seed": seed,
            }
        else:
            # SRO <-> ERO: the chain stays; only pending-bit tracking
            # flips at every member.
            handoff.switch_payload = {"target": target.value}
        # The one place the shared spec mutates: per-switch routing went
        # through live-level maps the moment the group was declared, so
        # this rewrite only retargets *future* construction and advice.
        spec.consistency = target
        handoff.phase = "switch"
        self._send_switch(handoff, leader)
        self._schedule_unfence(handoff)

    def _send_switch(self, handoff: Handoff, leader: Any) -> None:
        self._broadcast(leader, "relevel_switch", handoff, handoff.switch_payload)
        self._record(
            handoff,
            "relevel.switch",
            target=handoff.target.value,
            seeded=len(handoff.switch_payload.get("seed", ())),
            epoch=handoff.epoch,
        )
        self._notify("switch", handoff)

    def _schedule_unfence(self, handoff: Handoff) -> None:
        # One config latency after the switch commands: unfence commands
        # sent then arrive strictly after every switch command landed.
        self.sim.schedule(
            self.deployment.controller.config_latency,
            self._do_unfence,
            handoff.group_id,
            handoff.gen,
            label="relevel:unfence",
        )

    # ------------------------------------------------------------------
    # Phase 3: unfence
    # ------------------------------------------------------------------
    def _do_unfence(self, group_id: int, gen: int) -> None:
        handoff = self._active.get(group_id)
        if handoff is None or handoff.gen != gen:
            return
        leader = self.deployment.controller.active_leader()
        if leader is None:
            return  # on_leader_ready re-drives the switch phase
        handoff.phase = "unfence"
        self._send_unfence(handoff, leader)
        self._schedule_finish(handoff)

    def _send_unfence(self, handoff: Handoff, leader: Any) -> None:
        self._broadcast(leader, "relevel_unfence", handoff)
        self._record(handoff, "relevel.unfence", epoch=handoff.epoch)
        self._notify("unfence", handoff)

    def _schedule_finish(self, handoff: Handoff) -> None:
        self.sim.schedule(
            2 * self.deployment.controller.config_latency,
            self._finish,
            handoff.group_id,
            handoff.gen,
            label="relevel:finish",
        )

    def _finish(self, group_id: int, gen: int) -> None:
        handoff = self._active.get(group_id)
        if handoff is None or handoff.gen != gen or handoff.phase != "unfence":
            return
        del self._active[group_id]
        duration = self.sim.now - handoff.started_at
        self.stats.completed += 1
        if self._metrics_on:
            self._m_completed.inc()
            self._m_duration.observe(duration)
        self.log.append(
            (
                handoff.spec.name,
                handoff.source.value,
                handoff.target.value,
                duration,
            )
        )
        self._record(
            handoff,
            "relevel.complete",
            source=handoff.source.value,
            target=handoff.target.value,
            duration_us=round(duration * 1e6, 3),
            resumes=handoff.resumes,
        )
        profiler = self.deployment.access_profiler
        if profiler.enabled:
            # Future advice compares against the new declared level.
            profiler.describe_group(handoff.spec)
        self._drain_queue()

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def _rollback(self, handoff: Handoff, leader: Any, why: str) -> None:
        """Abandon a drain: release the fences without switching.  The
        overlay replays through the *original* engines, so the group
        simply kept its level."""
        del self._active[handoff.group_id]
        self.stats.rollbacks += 1
        if self._metrics_on:
            self._m_rollbacks.inc()
        self._broadcast(leader, "relevel_unfence", handoff)
        self._record(
            handoff,
            "relevel.rollback",
            why=why,
            source=handoff.source.value,
            target=handoff.target.value,
        )
        self._drain_queue()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _broadcast(
        self,
        leader: Any,
        kind: str,
        handoff: Handoff,
        payload: Any = None,
    ) -> int:
        sent = 0
        for name in self.deployment.switch_names:
            manager = self.deployment.managers[name]
            if manager.switch.failed:
                continue
            leader._send_command(
                manager,
                ControllerCommand(
                    epoch=handoff.epoch,
                    kind=kind,
                    group=handoff.group_id,
                    payload=payload,
                ),
            )
            sent += 1
        return sent

    def _drain_queue(self) -> None:
        while self._queue:
            leader = self.deployment.controller.active_leader()
            if leader is None:
                return
            spec, target, reason = self._queue[0]
            if spec.group_id in self._active:
                return  # still mid-handoff; _finish drains again
            self._queue.pop(0)
            if target is spec.consistency:
                continue  # a flap already took it there
            self._begin(spec, target, reason, leader)

    def _notify(self, phase: str, handoff: Handoff) -> None:
        for listener in list(self.phase_listeners):
            listener(phase, handoff)

    def _record(self, handoff: Handoff, what: str, **fields: Any) -> None:
        if not self._flightrec_on or handoff.trace is None:
            return
        ctx = self.causal.child(handoff.trace)
        self._flightrec.record(
            ctx,
            what,
            "releveler",
            self.sim.now,
            group=handoff.group_id,
            name=handoff.spec.name,
            **fields,
        )
