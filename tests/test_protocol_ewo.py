"""Tests for the EWO protocol: broadcast, merge, periodic sync (section 6.2)."""

from __future__ import annotations

import pytest

from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.analysis.metrics import convergence_time, replica_divergence


def declare_counter(deployment, name="ctr", **kwargs):
    return deployment.declare(
        RegisterSpec(name, Consistency.EWO, ewo_mode=EwoMode.COUNTER, **kwargs)
    )


def declare_lww(deployment, name="lww", **kwargs):
    return deployment.declare(
        RegisterSpec(name, Consistency.EWO, ewo_mode=EwoMode.LWW, **kwargs)
    )


class TestCounterMode:
    def test_increment_returns_global_sum(self, deployment):
        spec = declare_counter(deployment)
        m0 = deployment.manager("s0")
        assert m0.register_increment(spec, "k", 5) == 5
        assert m0.register_increment(spec, "k", 2) == 7

    def test_broadcast_merges_on_all_replicas(self, deployment):
        spec = declare_counter(deployment)
        deployment.manager("s0").register_increment(spec, "k", 5)
        deployment.manager("s1").register_increment(spec, "k", 3)
        deployment.sim.run(until=0.01)
        assert all(state["k"] == 8 for state in deployment.ewo_states(spec))

    def test_concurrent_increments_never_lost(self, deployment):
        """The CRDT guarantee: concurrent increments all count."""
        spec = declare_counter(deployment)
        for i in range(60):
            deployment.manager(f"s{i % 3}").register_increment(spec, "k", 1)
        deployment.sim.run(until=0.05)
        assert all(state["k"] == 60 for state in deployment.ewo_states(spec))

    def test_read_local_and_cheap(self, deployment):
        spec = declare_counter(deployment)
        m0 = deployment.manager("s0")
        m0.register_increment(spec, "k", 1)
        assert m0.register_read(spec, "k", None) == 1  # immediately visible
        assert m0.register_read(spec, "missing", None) == 0

    def test_write_rejected_on_counter_group(self, deployment):
        spec = declare_counter(deployment)
        with pytest.raises(TypeError):
            deployment.manager("s0").ewo.write(spec, "k", 5)

    def test_increment_rejected_on_lww_group(self, deployment):
        spec = declare_lww(deployment)
        with pytest.raises(TypeError):
            deployment.manager("s0").register_increment(spec, "k", 1)

    def test_increment_rejected_on_sro_group(self, deployment):
        spec = deployment.declare(RegisterSpec("strong", Consistency.SRO))
        with pytest.raises(TypeError):
            deployment.manager("s0").register_increment(spec, "k", 1)


class TestLwwMode:
    def test_write_visible_locally_at_once(self, deployment):
        spec = declare_lww(deployment)
        m0 = deployment.manager("s0")
        m0.register_write(spec, "k", "v")
        assert m0.register_read(spec, "k", None) == "v"

    def test_write_propagates(self, deployment):
        spec = declare_lww(deployment)
        deployment.manager("s0").register_write(spec, "k", "v")
        deployment.sim.run(until=0.01)
        assert all(state.get("k") == "v" for state in deployment.ewo_states(spec))

    def test_concurrent_writes_converge_to_one_winner(self, deployment):
        spec = declare_lww(deployment)
        deployment.manager("s0").register_write(spec, "k", "a")
        deployment.manager("s1").register_write(spec, "k", "b")
        deployment.manager("s2").register_write(spec, "k", "c")
        deployment.sim.run(until=0.02)
        states = deployment.ewo_states(spec)
        assert replica_divergence(states) == 0
        assert states[0]["k"] in ("a", "b", "c")

    def test_later_write_wins(self, deployment):
        spec = declare_lww(deployment)
        deployment.manager("s0").register_write(spec, "k", "first")
        deployment.sim.run(until=0.005)
        deployment.manager("s1").register_write(spec, "k", "second")
        deployment.sim.run(until=0.02)
        assert all(state["k"] == "second" for state in deployment.ewo_states(spec))

    def test_default_returned_before_any_write(self, deployment):
        spec = deployment.declare(
            RegisterSpec("flags", Consistency.EWO, ewo_mode=EwoMode.LWW, default=False)
        )
        assert deployment.manager("s0").register_read(spec, "k", None) is False


class TestPeriodicSync:
    def test_sync_heals_lost_updates(self, make_deployment):
        dep, _, _ = make_deployment(3, loss_rate=0.5, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        for i in range(40):
            dep.manager(f"s{i % 3}").register_increment(spec, "k", 1)
        elapsed = convergence_time(
            dep.sim,
            probe=lambda: all(s.get("k") == 40 for s in dep.ewo_states(spec)),
            interval=1e-3,
            timeout=2.0,
        )
        assert elapsed is not None, "replicas never converged despite sync"

    def test_sync_packets_flow(self, make_deployment):
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.manager("s0").register_increment(spec, "k", 1)
        dep.sim.run(until=0.02)
        stats = dep.manager("s0").ewo.stats_for(spec.group_id)
        assert stats.sync_packets_sent > 0
        received = sum(
            dep.manager(name).ewo.stats_for(spec.group_id).sync_packets_received
            for name in dep.switch_names
        )
        assert received > 0

    def test_sync_carries_full_state_not_just_own(self, make_deployment):
        """Gossip robustness: a switch relays state it learned from others."""
        dep, _, _ = make_deployment(3, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.manager("s0").register_increment(spec, "k", 5)
        dep.sim.run(until=0.005)
        entries = dep.manager("s1").ewo._full_state_entries(
            dep.manager("s1").ewo.groups[spec.group_id]
        )
        # s1 never wrote, yet its sync payload includes s0's slot
        assert any(entry.value == 5 for entry in entries)

    def test_empty_state_sends_no_sync_entries(self, make_deployment):
        dep, _, _ = make_deployment(2, sync_period=1e-3)
        spec = dep.declare(
            RegisterSpec("ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER)
        )
        dep.sim.run(until=0.01)
        stats = dep.manager("s0").ewo.stats_for(spec.group_id)
        assert stats.sync_entries_sent == 0


class TestBatching:
    def test_batched_updates_flush_at_threshold(self, make_deployment):
        dep, _, _ = make_deployment(2, sync_period=10.0)
        spec = dep.declare(
            RegisterSpec(
                "ctr", Consistency.EWO, ewo_mode=EwoMode.COUNTER, ewo_batch_size=4
            )
        )
        m0 = dep.manager("s0")
        for _ in range(3):
            m0.register_increment(spec, "k", 1)
        dep.sim.run(until=0.005)
        # below threshold: nothing broadcast yet
        assert dep.manager("s1").ewo.local_state(spec.group_id).get("k") is None
        m0.register_increment(spec, "k", 1)  # 4th write triggers the flush
        dep.sim.run(until=0.01)
        assert dep.manager("s1").ewo.local_state(spec.group_id)["k"] == 4

    def test_batching_reduces_update_packets(self, make_deployment):
        dep, _, _ = make_deployment(2, sync_period=10.0)
        unbatched = dep.declare(
            RegisterSpec("u", Consistency.EWO, ewo_mode=EwoMode.COUNTER, ewo_batch_size=1)
        )
        batched = dep.declare(
            RegisterSpec("b", Consistency.EWO, ewo_mode=EwoMode.COUNTER, ewo_batch_size=8)
        )
        m0 = dep.manager("s0")
        for _ in range(16):
            m0.register_increment(unbatched, "k", 1)
            m0.register_increment(batched, "k", 1)
        dep.sim.run(until=0.01)
        sent_u = m0.ewo.stats_for(unbatched.group_id).update_packets_sent
        sent_b = m0.ewo.stats_for(batched.group_id).update_packets_sent
        assert sent_u == 16 and sent_b == 2

    def test_manual_flush(self, make_deployment):
        dep, _, _ = make_deployment(2, sync_period=10.0)
        spec = dep.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER, ewo_batch_size=100)
        )
        m0 = dep.manager("s0")
        m0.register_increment(spec, "k", 1)
        m0.ewo.flush(spec.group_id)
        dep.sim.run(until=0.005)
        assert dep.manager("s1").ewo.local_state(spec.group_id)["k"] == 1


class TestStats:
    def test_merge_counters(self, deployment):
        spec = declare_counter(deployment)
        deployment.manager("s0").register_increment(spec, "k", 1)
        deployment.sim.run(until=0.01)
        s1 = deployment.manager("s1").ewo.stats_for(spec.group_id)
        assert s1.updates_received >= 1
        assert s1.merges_applied >= 1

    def test_stale_merges_counted(self, deployment):
        spec = declare_counter(deployment)
        deployment.manager("s0").register_increment(spec, "k", 1)
        deployment.sim.run(until=0.05)  # several sync rounds re-deliver
        totals = sum(
            deployment.manager(n).ewo.stats_for(spec.group_id).merges_stale
            for n in deployment.switch_names
        )
        assert totals > 0

    def test_memory_charged_per_replica_slot(self, make_deployment):
        dep, _, switches = make_deployment(4)
        before = switches[0].memory.used_bytes
        dep.declare(
            RegisterSpec(
                "ctr",
                Consistency.EWO,
                ewo_mode=EwoMode.COUNTER,
                capacity=100,
                value_bytes=4,
            )
        )
        used = switches[0].memory.used_bytes - before
        assert used == 100 * 4 * (4 + 4)  # capacity * replicas * (ver+val)
