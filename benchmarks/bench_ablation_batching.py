"""[A2] Ablation: EWO write batching (paper section 7).

"Generating write requests for replication consumes available bandwidth
which may be substantial especially in write-intensive workloads.
Batching write requests may alleviate this issue at the expense of
reduced availability and consistency."

The experiment drives a fixed increment workload at several batch sizes
and measures replication bandwidth (update packets and bytes on the
wire) against staleness — the mean lag between a local write and all
replicas reflecting it.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import List

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

from benchmarks.common import fmt_us, print_header, print_table

WRITES = 300
WRITE_GAP = 20e-6


@dataclass
class BatchingResult:
    batch_size: int
    update_packets: int
    replication_bytes: int
    mean_staleness: float
    max_staleness: float


def run_point(batch_size: int, seed: int = 33) -> BatchingResult:
    sim = Simulator()
    topo = Topology(sim, SeededRng(seed))
    switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
    deployment = SwiShmemDeployment(sim, topo, switches, sync_period=50e-3)
    spec = deployment.declare(
        RegisterSpec(
            "ctr",
            Consistency.EWO,
            ewo_mode=EwoMode.COUNTER,
            capacity=16,
            ewo_batch_size=batch_size,
        )
    )
    staleness_samples: List[float] = []
    write_times: dict = {}

    def write(i: int) -> None:
        deployment.manager("s0").register_increment(spec, "k", 1)
        write_times[i + 1] = sim.now  # running total after this write

    def probe() -> None:
        # watch s1's view; when its value advances to v, every write up
        # to v has propagated: staleness(v) = now - write_time(v)
        value = deployment.manager("s1").ewo.local_state(spec.group_id).get("k", 0)
        while probe.seen < value:
            probe.seen += 1
            staleness_samples.append(sim.now - write_times[probe.seen])
        if sim.now < WRITES * WRITE_GAP + 60e-3:
            sim.schedule(5e-6, probe)

    probe.seen = 0
    for i in range(WRITES):
        sim.schedule(i * WRITE_GAP, write, i)
    sim.schedule(0.0, probe)
    start_bytes = topo.total_bytes_sent()
    sim.run(until=WRITES * WRITE_GAP + 70e-3)
    replication_bytes = topo.total_bytes_sent() - start_bytes
    stats = deployment.manager("s0").ewo.stats_for(spec.group_id)
    return BatchingResult(
        batch_size=batch_size,
        update_packets=stats.update_packets_sent,
        replication_bytes=replication_bytes,
        mean_staleness=sum(staleness_samples) / len(staleness_samples) if staleness_samples else float("inf"),
        max_staleness=max(staleness_samples) if staleness_samples else float("inf"),
    )


def run_experiment() -> List[BatchingResult]:
    return [run_point(b) for b in (1, 4, 16, 64)]


def report(results: List[BatchingResult]) -> None:
    print_header(
        "A2",
        "Ablation: EWO update batching — bandwidth vs staleness",
        "batching reduces replication bandwidth at the expense of "
        "consistency (staleness grows with batch size)",
    )
    print_table(
        ["batch", "update packets", "replication bytes", "mean staleness", "max staleness"],
        [
            (
                r.batch_size,
                r.update_packets,
                r.replication_bytes,
                fmt_us(r.mean_staleness),
                fmt_us(r.max_staleness),
            )
            for r in results
        ],
    )


@pytest.mark.benchmark(group="experiment")
def test_batching_tradeoff(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    # packets fall ~linearly with batch size
    packets = [r.update_packets for r in results]
    assert packets[0] == WRITES
    assert packets == sorted(packets, reverse=True)
    assert packets[0] / packets[-1] >= 32
    # bytes fall too (headers amortized), though less than packet count
    byte_counts = [r.replication_bytes for r in results]
    assert byte_counts[0] > byte_counts[-1]
    # staleness grows with batch size
    staleness = [r.mean_staleness for r in results]
    assert staleness == sorted(staleness)
    assert staleness[-1] > 5 * staleness[0]


@pytest.mark.benchmark(group="ablation")
def test_benchmark_batching(benchmark):
    benchmark.pedantic(lambda: run_point(16), rounds=1, iterations=1)
