"""[S1] Simulator performance: events/sec and packets/sec of the harness.

Not a paper experiment — this benchmarks the *reproduction substrate*
itself, so regressions in the simulation kernel or the switch pipeline
show up in CI.  Three scenarios:

* **kernel** — raw event dispatch: schedule + run trivial events, the
  floor every other component builds on;
* **forwarding** — packets through a 3-switch mesh with plain L3
  forwarding, the per-packet hot path (Channel.transmit -> pipeline
  pass -> next hop);
* **cancel-heavy** — an SRO-like retransmission-timer churn where every
  armed timer is cancelled by its ack; exercises the kernel's
  lazy-deletion compactor and proves the heap stays bounded.

Each scenario reports a *deterministic* half (event counts, peak heap
occupancy, compactions — gated exactly by ``tools/check_bench.py``) and
a *host wall-clock* half (events/packets per second — recorded for the
perf trajectory, exempted from the gate because CI hardware varies).
The pytest-benchmark hooks remain for interactive ``--benchmark-only``
runs.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import List, Optional

import pytest

# Resolve imports relative to this file, not the caller's CWD.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for _p in (_REPO_ROOT, os.path.join(_REPO_ROOT, "src")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from benchmarks.common import emit_json, fmt_rate, print_header, print_table

from repro.core.manager import SwiShmemDeployment
from repro.core.registers import Consistency, EwoMode, RegisterSpec
from repro.net.endhost import AddressBook, EndHost
from repro.net.packet import make_udp_packet
from repro.net.topology import Topology, build_full_mesh
from repro.sim.engine import Simulator
from repro.sim.random import SeededRng
from repro.switch.pisa import PisaSwitch

KERNEL_EVENTS = 200_000
FORWARD_PACKETS = 5_000
CANCEL_STEPS = 50_000


@dataclass
class S1Result:
    """One scenario's numbers.

    ``host_seconds`` and the ``*_per_host_sec`` rates are wall-clock and
    machine-dependent; everything else is simulation-deterministic and
    must reproduce exactly on the same code.
    """

    scenario: str
    events_processed: int
    peak_queue_len: int
    events_cancelled: int
    compactions: int
    final_queue_len: int
    packets_delivered: Optional[int]
    host_seconds: float
    events_per_host_sec: float
    packets_per_host_sec: Optional[float]


def _result(scenario: str, sim: Simulator, elapsed: float, packets: Optional[int]) -> S1Result:
    return S1Result(
        scenario=scenario,
        events_processed=sim.events_processed,
        peak_queue_len=sim.peak_queue_len,
        events_cancelled=sim.events_cancelled,
        compactions=sim.compactions,
        final_queue_len=sim.queue_len(),
        packets_delivered=packets,
        host_seconds=elapsed,
        events_per_host_sec=sim.events_processed / elapsed if elapsed > 0 else 0.0,
        packets_per_host_sec=(packets / elapsed if elapsed > 0 else 0.0)
        if packets is not None
        else None,
    )


def run_kernel(n: int = KERNEL_EVENTS) -> S1Result:
    """Raw kernel: schedule + dispatch ``n`` trivial events."""
    sim = Simulator()
    counter = [0]

    def bump() -> None:
        counter[0] += 1

    start = time.perf_counter()
    for i in range(n):
        sim.schedule(i * 1e-7, bump)
    sim.run()
    elapsed = time.perf_counter() - start
    assert counter[0] == n
    return _result("kernel", sim, elapsed, None)


def run_forwarding(n: int = FORWARD_PACKETS) -> S1Result:
    """Packets through a 3-switch mesh with plain L3 forwarding."""
    sim = Simulator()
    topo = Topology(sim, SeededRng(1))
    book = AddressBook()
    switches = build_full_mesh(topo, lambda name: PisaSwitch(name, sim), 3)
    src = topo.add_node(EndHost("src", sim, "10.0.0.1", book))
    dst = topo.add_node(EndHost("dst", sim, "10.0.0.2", book))
    topo.connect("src", "s0")
    topo.connect("dst", "s2")
    SwiShmemDeployment(sim, topo, switches, address_book=book)
    start = time.perf_counter()
    for i in range(n):
        sim.schedule(
            i * 1e-6,
            lambda: src.inject(make_udp_packet("10.0.0.1", "10.0.0.2", 1, 2)),
        )
    sim.run(until=n * 1e-6 + 1e-3)
    elapsed = time.perf_counter() - start
    assert len(dst.received) == n
    return _result("forwarding", sim, elapsed, len(dst.received))


def run_cancel_heavy(n: int = CANCEL_STEPS) -> S1Result:
    """SRO-like timer churn: every armed timer is cancelled by its ack.

    Without lazy-deletion compaction the heap accumulates one dead timer
    per step (peak ~n); with it the peak stays bounded by a small
    multiple of the live event count.
    """
    sim = Simulator()

    def timer_fired() -> None:  # pragma: no cover - timers never fire
        raise AssertionError("retransmission timer fired despite ack")

    pending = [None]

    def step(i: int) -> None:
        if pending[0] is not None:
            pending[0].cancel()  # the "ack" for the previous write
        pending[0] = sim.schedule(10.0, timer_fired, label="retx-timer")
        if i + 1 < n:
            sim.schedule(1e-6, step, i + 1)

    start = time.perf_counter()
    sim.schedule(0.0, step, 0)
    sim.run(until=n * 1e-6 + 1.0)
    elapsed = time.perf_counter() - start
    return _result("cancel_heavy", sim, elapsed, None)


def run_experiment() -> List[S1Result]:
    return [run_kernel(), run_forwarding(), run_cancel_heavy()]


def report(results: List[S1Result]) -> None:
    print_header(
        "S1",
        "Simulation-kernel and packet hot-path throughput",
        "substrate regression watch: the harness, not the protocols, "
        "must never be the bottleneck",
    )
    print_table(
        ["scenario", "events", "events/sec", "packets/sec", "peak heap", "cancelled", "compactions"],
        [
            (
                r.scenario,
                r.events_processed,
                fmt_rate(r.events_per_host_sec),
                fmt_rate(r.packets_per_host_sec) if r.packets_per_host_sec else "-",
                r.peak_queue_len,
                r.events_cancelled,
                r.compactions,
            )
            for r in results
        ],
    )
    emit_json(
        "S1",
        "Simulation-kernel and packet hot-path throughput",
        results,
    )


def test_s1_shape():
    """Deterministic half of every scenario must hold on any machine."""
    results = run_experiment()
    by_name = {r.scenario: r for r in results}
    kernel = by_name["kernel"]
    assert kernel.events_processed == KERNEL_EVENTS
    assert kernel.events_cancelled == 0 and kernel.compactions == 0
    forwarding = by_name["forwarding"]
    assert forwarding.packets_delivered == FORWARD_PACKETS
    cancel = by_name["cancel_heavy"]
    assert cancel.events_cancelled == CANCEL_STEPS - 1
    # The whole point of lazy deletion + compaction: the heap never
    # grows with the number of cancelled timers.
    assert cancel.peak_queue_len < 300
    assert cancel.compactions > 0
    assert cancel.final_queue_len < 64  # last live timer + sub-floor residue


@pytest.mark.benchmark(group="simulator")
def test_benchmark_event_throughput(benchmark):
    """Raw kernel: schedule+dispatch 20k trivial events."""
    assert benchmark(lambda: run_kernel(20_000).events_processed) == 20_000


@pytest.mark.benchmark(group="simulator")
def test_benchmark_forwarding_throughput(benchmark):
    """Packets through a 3-switch mesh with plain L3 forwarding."""
    assert benchmark(lambda: run_forwarding(2_000).packets_delivered) == 2_000


@pytest.mark.benchmark(group="simulator")
def test_benchmark_cancel_heavy(benchmark):
    """Timer-churn workload (arm + cancel per step)."""
    assert benchmark(lambda: run_cancel_heavy(10_000).events_cancelled) == 9_999


@pytest.mark.benchmark(group="simulator")
def test_benchmark_ewo_replication_throughput(benchmark):
    """Counter increments with per-write broadcast on a 3-switch group."""

    def run():
        sim = Simulator()
        topo = Topology(sim, SeededRng(2))
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
        deployment = SwiShmemDeployment(sim, topo, switches, sync_period=10.0)
        spec = deployment.declare(
            RegisterSpec("c", Consistency.EWO, ewo_mode=EwoMode.COUNTER, capacity=64)
        )
        for i in range(1_000):
            sim.schedule(
                i * 1e-6,
                lambda i=i: deployment.manager(f"s{i % 3}").register_increment(
                    spec, f"k{i % 16}", 1
                ),
            )
        sim.run(until=5e-3)
        return sum(deployment.ewo_states(spec)[0].values())

    assert benchmark(run) == 1_000


@pytest.mark.benchmark(group="simulator")
def test_benchmark_sro_chain_throughput(benchmark):
    """Chain-replicated writes end to end (request, 2 hops, acks)."""

    def run():
        sim = Simulator()
        topo = Topology(sim, SeededRng(3))
        switches = build_full_mesh(topo, lambda n: PisaSwitch(n, sim), 3)
        deployment = SwiShmemDeployment(sim, topo, switches, sync_period=10.0)
        spec = deployment.declare(RegisterSpec("r", Consistency.SRO, capacity=64))
        for i in range(300):
            sim.schedule(
                i * 30e-6,
                lambda i=i: deployment.manager("s0").register_write(spec, f"k{i % 16}", i),
            )
        sim.run(until=0.05)
        return deployment.manager("s0").sro.stats_for(spec.group_id).writes_committed

    assert benchmark(run) == 300


if __name__ == "__main__":
    report(run_experiment())
