"""Stateful firewall (Table 1, row 2).

"Stateful firewalls monitor connection states to enforce context-based
rules.  These states are stored in a shared table, updated as
connections are opened and closed, and accessed for each packet to make
filtering decisions.  Like the NAT, the firewall NF requires strong
consistency to avoid incorrect forwarding behavior." (paper section 4.1)

Policy: connections may only be *initiated* from the internal side.

Shared state:
  * ``fw_conntrack`` — **SRO**, ``control_plane_state=True``: five-tuple
    (canonicalized to the initiator's direction) -> connection state,
    one of ``SYN_SENT`` / ``ESTABLISHED`` / ``CLOSED``.

State machine (per connection, driven by TCP flags):
  outbound SYN        -> SYN_SENT   (write; output buffered until commit)
  inbound  SYN|ACK    -> ESTABLISHED (write) when SYN_SENT
  either   FIN or RST -> CLOSED      (write)
  inbound packet with no entry, or entry CLOSED -> drop

Every packet reads the table; only connection-opening and -closing
packets write — exactly Table 1's "write on new connection, read on
every packet" profile.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.manager import Decision, PacketContext
from repro.core.registers import Consistency, RegisterSpec
from repro.net.headers import FiveTuple, TcpFlags
from repro.nf.base import NetworkFunction

__all__ = ["FirewallNF", "ConnState"]


class ConnState:
    """Connection-tracking states stored in the shared table."""

    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    CLOSED = "closed"


class FirewallNF(NetworkFunction):
    """Distributed stateful firewall on SwiShmem SRO registers."""

    NAME = "firewall"

    def __init__(self, manager, handles, *, internal_prefix: str = "10.",
                 capacity: int = 4096, pending_slots: Optional[int] = None) -> None:
        super().__init__(manager, handles)
        self.internal_prefix = internal_prefix
        self.conntrack = handles["fw_conntrack"]

    @classmethod
    def build_specs(cls, *, internal_prefix: str = "10.", capacity: int = 4096,
                    pending_slots: Optional[int] = None) -> List[RegisterSpec]:
        return [
            RegisterSpec(
                name="fw_conntrack",
                consistency=Consistency.SRO,
                capacity=capacity,
                key_bytes=13,
                value_bytes=1,
                pending_slots=pending_slots,
                control_plane_state=True,
            )
        ]

    # ------------------------------------------------------------------
    def process(self, ctx: PacketContext) -> Decision:
        self.stats.processed += 1
        packet = ctx.packet
        flow = packet.five_tuple()
        if flow is None or packet.tcp is None:
            return self.forward()  # non-TCP traffic is not policed here
        outbound = flow.src_ip.startswith(self.internal_prefix)
        key = flow if outbound else flow.reverse()
        state = self.conntrack.read(key.as_tuple())
        flags = packet.tcp.flags
        if outbound:
            return self._outbound(key, state, flags)
        return self._inbound(key, state, flags)

    def _outbound(self, key: FiveTuple, state: Optional[str], flags: TcpFlags) -> Decision:
        if flags & TcpFlags.SYN and not flags & TcpFlags.ACK:
            if state in (None, ConnState.CLOSED):
                self.stats.state_misses += 1
                self.conntrack.write(key.as_tuple(), ConnState.SYN_SENT)
                return self.forward()
            # SYN retransmission on a live connection: pass through.
            self.stats.state_hits += 1
            return self.forward()
        if state is None:
            # Non-SYN without state: stray packet; internal side is
            # trusted to send (e.g. stale FINs), forward without entry.
            self.stats.state_misses += 1
            return self.forward()
        self.stats.state_hits += 1
        if flags & (TcpFlags.FIN | TcpFlags.RST) and state != ConnState.CLOSED:
            self.conntrack.write(key.as_tuple(), ConnState.CLOSED)
        return self.forward()

    def _inbound(self, key: FiveTuple, state: Optional[str], flags: TcpFlags) -> Decision:
        if state is None or state == ConnState.CLOSED:
            # Context says no live connection: block (the strong-
            # consistency failure mode is exactly a wrong drop here).
            self.stats.state_misses += 1
            return self.drop()
        self.stats.state_hits += 1
        if state == ConnState.SYN_SENT and flags & TcpFlags.SYN and flags & TcpFlags.ACK:
            self.conntrack.write(key.as_tuple(), ConnState.ESTABLISHED)
            return self.forward()
        if flags & (TcpFlags.FIN | TcpFlags.RST):
            self.conntrack.write(key.as_tuple(), ConnState.CLOSED)
            return self.forward()
        return self.forward()
