"""Grow-only counter (G-Counter) CRDT.

Paper section 6.2: "An increment-only counter can be implemented by
maintaining a vector of counter values, one per switch.  To update a
counter, a switch increments its own element; to read the result, it
sums all elements.  To merge updates from another switch, a switch
simply takes the larger of the local and received value for each
element."

The representation matches the paper's in-switch layout: a dense vector
indexed by replica slot (one register array per switch in the replica
group, section 7), not a sparse map.  ``slot_width_bytes`` sizes each
element for memory and message accounting.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["GCounter"]


class GCounter:
    """State-based grow-only counter over a fixed replica group."""

    def __init__(self, num_replicas: int, my_slot: int, slot_width_bytes: int = 8) -> None:
        if num_replicas <= 0:
            raise ValueError("replica group must be non-empty")
        if not 0 <= my_slot < num_replicas:
            raise ValueError(f"slot {my_slot} out of range for group of {num_replicas}")
        self.num_replicas = num_replicas
        self.my_slot = my_slot
        self.slot_width_bytes = slot_width_bytes
        self._vector: List[int] = [0] * num_replicas

    # ------------------------------------------------------------------
    def increment(self, amount: int = 1) -> None:
        """Add to this replica's own element.  Negative amounts are illegal."""
        if amount < 0:
            raise ValueError("G-Counter cannot decrement; use PNCounter")
        self._vector[self.my_slot] += amount

    def value(self) -> int:
        """The counter's value: the sum of all elements."""
        return sum(self._vector)

    def local_value(self) -> int:
        """This replica's own contribution."""
        return self._vector[self.my_slot]

    # ------------------------------------------------------------------
    def merge(self, other_vector: Iterable[int]) -> bool:
        """Element-wise max merge.  Returns True if any element advanced."""
        changed = False
        for index, remote in enumerate(other_vector):
            if index >= self.num_replicas:
                raise ValueError("merge vector longer than replica group")
            if remote > self._vector[index]:
                self._vector[index] = remote
                changed = True
        return changed

    def vector(self) -> List[int]:
        """A copy of the state vector (what goes on the wire)."""
        return list(self._vector)

    def slot_entry(self) -> int:
        """This replica's element alone — the EWO incremental update."""
        return self._vector[self.my_slot]

    def apply_slot(self, slot: int, value: int) -> bool:
        """Merge a single remote element (incremental EWO_UPDATE)."""
        if not 0 <= slot < self.num_replicas:
            raise ValueError(f"slot {slot} out of range")
        if value > self._vector[slot]:
            self._vector[slot] = value
            return True
        return False

    # ------------------------------------------------------------------
    @property
    def state_bytes(self) -> int:
        """In-switch footprint of the full vector."""
        return self.num_replicas * self.slot_width_bytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GCounter):
            return NotImplemented
        return self._vector == other._vector

    def __repr__(self) -> str:
        return f"<GCounter slot={self.my_slot} value={self.value()} vec={self._vector}>"
